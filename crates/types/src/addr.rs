//! Address newtypes and the arithmetic between them.
//!
//! Three address spaces coexist in SPUR:
//!
//! 1. **Process virtual addresses** ([`ProcAddr`], 32 bits). The top two
//!    bits select one of four per-process segment registers.
//! 2. **Global virtual addresses** ([`GlobalAddr`], 38 bits). The cache and
//!    page tables operate entirely in this space; the operating system
//!    prevents synonyms by giving shared memory a single global address.
//! 3. **Physical addresses** ([`PhysAddr`], 32 bits), produced by the
//!    in-cache translation mechanism on cache misses.
//!
//! Derived quantities get their own newtypes: [`Vpn`] (global virtual page
//! number), [`Pfn`] (physical frame number), and [`BlockNum`] (global
//! virtual block number). Keeping them distinct prevents a whole class of
//! unit errors (indexing a page table with a block number, for example).

use core::fmt;

use crate::{BLOCKS_PER_PAGE, BLOCK_SHIFT, GLOBAL_ADDR_BITS, PAGE_SHIFT, SEGMENT_SHIFT};

/// A 32-bit per-process virtual address.
///
/// The top [`crate::SEGMENTS_PER_PROCESS`]-selecting two bits name a segment
/// register; the low 30 bits are the offset within that segment.
///
/// # Example
///
/// ```
/// use spur_types::addr::{ProcAddr, SegmentId};
///
/// let a = ProcAddr::new(0xC000_0010);
/// assert_eq!(a.segment(), SegmentId::new(3));
/// assert_eq!(a.segment_offset(), 0x10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcAddr(u32);

impl ProcAddr {
    /// Creates a process address from its raw 32-bit value.
    pub const fn new(raw: u32) -> Self {
        ProcAddr(raw)
    }

    /// Returns the raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns which of the four segment registers this address selects.
    pub const fn segment(self) -> SegmentId {
        SegmentId((self.0 >> SEGMENT_SHIFT) as u8)
    }

    /// Returns the 30-bit offset within the selected segment.
    pub const fn segment_offset(self) -> u64 {
        (self.0 as u64) & ((1 << SEGMENT_SHIFT) - 1)
    }
}

impl fmt::Display for ProcAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#010x}", self.0)
    }
}

impl From<u32> for ProcAddr {
    fn from(raw: u32) -> Self {
        ProcAddr(raw)
    }
}

/// Identifies one of a process's four segment registers (0..=3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SegmentId(u8);

impl SegmentId {
    /// Creates a segment id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 4`; a process has exactly four segment registers.
    pub const fn new(id: u8) -> Self {
        assert!(id < 4, "a process has exactly 4 segment registers");
        SegmentId(id)
    }

    /// Returns the register index (0..=3).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A 38-bit global virtual address.
///
/// The cache is indexed and tagged with global virtual addresses, so cache
/// hits never consult translation information. All page-table indexing also
/// happens in this space.
///
/// # Example
///
/// ```
/// use spur_types::addr::GlobalAddr;
///
/// let ga = GlobalAddr::from_parts(5, 0x1234);
/// assert_eq!(ga.global_segment(), 5);
/// assert_eq!(ga.page_offset(), 0x234);
/// assert_eq!(ga.vpn().index(), (5 << 18) | 1); // segment 5 starts at page 5 << 18
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalAddr(u64);

impl GlobalAddr {
    /// Bit mask covering the 38-bit global space.
    pub const MASK: u64 = (1 << GLOBAL_ADDR_BITS) - 1;

    /// Creates a global address from a raw value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 38 bits.
    pub const fn new(raw: u64) -> Self {
        assert!(raw <= Self::MASK, "global address exceeds 38 bits");
        GlobalAddr(raw)
    }

    /// Creates a global address from a global segment number and an offset
    /// within the segment.
    ///
    /// # Panics
    ///
    /// Panics if `segment >= 256` or `offset >= 1 GB`.
    pub const fn from_parts(segment: u64, offset: u64) -> Self {
        assert!(segment < (1 << (GLOBAL_ADDR_BITS - SEGMENT_SHIFT)));
        assert!(offset < (1 << SEGMENT_SHIFT));
        GlobalAddr((segment << SEGMENT_SHIFT) | offset)
    }

    /// Returns the raw 38-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the global segment number (top 8 bits).
    pub const fn global_segment(self) -> u64 {
        self.0 >> SEGMENT_SHIFT
    }

    /// Returns the offset within the global segment (low 30 bits).
    pub const fn segment_offset(self) -> u64 {
        self.0 & ((1 << SEGMENT_SHIFT) - 1)
    }

    /// Returns the global virtual page number.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset within the page.
    pub const fn page_offset(self) -> u64 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }

    /// Returns the global virtual block number (address / 32).
    pub const fn block(self) -> BlockNum {
        BlockNum(self.0 >> BLOCK_SHIFT)
    }

    /// Returns the byte offset within the cache block.
    pub const fn block_offset(self) -> u64 {
        self.0 & ((1 << BLOCK_SHIFT) - 1)
    }

    /// Returns the address rounded down to its block boundary.
    pub const fn block_aligned(self) -> GlobalAddr {
        GlobalAddr(self.0 & !((1 << BLOCK_SHIFT) - 1))
    }

    /// Returns the address rounded down to its page boundary.
    pub const fn page_aligned(self) -> GlobalAddr {
        GlobalAddr(self.0 & !((1 << PAGE_SHIFT) - 1))
    }

    /// Returns the address `bytes` later in the global space, wrapping at
    /// the 38-bit boundary.
    pub const fn wrapping_add(self, bytes: u64) -> GlobalAddr {
        GlobalAddr(self.0.wrapping_add(bytes) & Self::MASK)
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g:{:#012x}", self.0)
    }
}

/// A global virtual page number (38 − 12 = 26 significant bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a VPN from its raw index.
    pub const fn new(index: u64) -> Self {
        Vpn(index)
    }

    /// Returns the raw page index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the global address of the first byte of the page.
    pub const fn base_addr(self) -> GlobalAddr {
        GlobalAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the global block number of the `i`-th block of this page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128` (there are 128 blocks per page).
    pub const fn block(self, i: u64) -> BlockNum {
        assert!(i < BLOCKS_PER_PAGE);
        BlockNum(self.0 * BLOCKS_PER_PAGE + i)
    }

    /// Returns the VPN `n` pages later.
    pub const fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A global virtual block number (address / 32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockNum(u64);

impl BlockNum {
    /// Creates a block number from its raw index.
    pub const fn new(index: u64) -> Self {
        BlockNum(index)
    }

    /// Returns the raw block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the page this block belongs to.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 / BLOCKS_PER_PAGE)
    }

    /// Returns the block's position within its page (0..128).
    pub const fn within_page(self) -> u64 {
        self.0 % BLOCKS_PER_PAGE
    }

    /// Returns the global address of the first byte of the block.
    pub const fn base_addr(self) -> GlobalAddr {
        GlobalAddr(self.0 << BLOCK_SHIFT)
    }
}

impl fmt::Display for BlockNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// A 32-bit physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u32);

impl PhysAddr {
    /// Creates a physical address from its raw value.
    pub const fn new(raw: u32) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the physical frame number.
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset within the frame.
    pub const fn page_offset(self) -> u32 {
        self.0 & ((1 << PAGE_SHIFT) - 1)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phys:{:#010x}", self.0)
    }
}

/// A physical page-frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(u32);

impl Pfn {
    /// Creates a frame number from its raw index.
    pub const fn new(index: u32) -> Self {
        Pfn(index)
    }

    /// Returns the raw frame index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the physical address of the first byte of the frame.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn proc_addr_segment_decode() {
        assert_eq!(ProcAddr::new(0x0000_0000).segment().index(), 0);
        assert_eq!(ProcAddr::new(0x3fff_ffff).segment().index(), 0);
        assert_eq!(ProcAddr::new(0x4000_0000).segment().index(), 1);
        assert_eq!(ProcAddr::new(0x8000_0000).segment().index(), 2);
        assert_eq!(ProcAddr::new(0xffff_ffff).segment().index(), 3);
        assert_eq!(ProcAddr::new(0xffff_ffff).segment_offset(), 0x3fff_ffff);
    }

    #[test]
    #[should_panic(expected = "4 segment registers")]
    fn segment_id_rejects_out_of_range() {
        let _ = SegmentId::new(4);
    }

    #[test]
    fn global_addr_decomposition() {
        let ga = GlobalAddr::from_parts(3, (7 * PAGE_SIZE) + 45);
        assert_eq!(ga.global_segment(), 3);
        assert_eq!(ga.page_offset(), 45);
        assert_eq!(ga.block_offset(), 45 % 32);
        assert_eq!(ga.vpn().base_addr().page_offset(), 0);
        assert_eq!(ga.block().vpn(), ga.vpn());
        assert_eq!(ga.block().within_page(), 45 / 32);
    }

    #[test]
    fn global_addr_alignment() {
        let ga = GlobalAddr::new(0x12345);
        assert_eq!(ga.block_aligned().raw(), 0x12340);
        assert_eq!(ga.page_aligned().raw(), 0x12000);
    }

    #[test]
    #[should_panic(expected = "38 bits")]
    fn global_addr_rejects_wide_values() {
        let _ = GlobalAddr::new(1 << 38);
    }

    #[test]
    fn wrapping_add_wraps_at_38_bits() {
        let ga = GlobalAddr::new(GlobalAddr::MASK);
        assert_eq!(ga.wrapping_add(1).raw(), 0);
    }

    #[test]
    fn vpn_block_enumeration() {
        let vpn = Vpn::new(10);
        assert_eq!(vpn.block(0).index(), 1280);
        assert_eq!(vpn.block(127).index(), 1280 + 127);
        assert_eq!(vpn.block(127).vpn(), vpn);
        assert_eq!(vpn.block(5).within_page(), 5);
    }

    #[test]
    #[should_panic]
    fn vpn_block_rejects_out_of_page_index() {
        let _ = Vpn::new(0).block(128);
    }

    #[test]
    fn phys_addr_round_trips_through_pfn() {
        let pa = PhysAddr::new(0x8765_4321);
        assert_eq!(pa.pfn().base_addr().raw() + pa.page_offset(), pa.raw());
    }

    #[test]
    fn display_formats_are_nonempty_and_distinct() {
        let texts = [
            format!("{}", ProcAddr::new(1)),
            format!("{}", GlobalAddr::new(1)),
            format!("{}", PhysAddr::new(1)),
            format!("{}", Vpn::new(1)),
            format!("{}", BlockNum::new(1)),
            format!("{}", Pfn::new(1)),
            format!("{}", SegmentId::new(1)),
        ];
        for (i, a) in texts.iter().enumerate() {
            assert!(!a.is_empty());
            for b in texts.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
