//! A cycle-count newtype and its conversion to wall-clock time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A count of processor cycles.
///
/// All of the simulator's time accounting is in processor cycles; the
/// conversion to seconds (at the prototype's 150 ns cycle time) happens only
/// at the reporting boundary.
///
/// ```
/// use spur_types::Cycles;
///
/// let c = Cycles::new(2_000_000) + Cycles::new(500_000);
/// assert_eq!(c.raw(), 2_500_000);
/// assert_eq!(c.millions(), 2.5);
/// // 2.5M cycles at 150ns/cycle = 0.375 s
/// assert!((c.seconds(150) - 0.375).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw count.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the count in millions of cycles, as reported in Table 3.4.
    pub fn millions(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Converts to seconds given a cycle time in nanoseconds.
    pub fn seconds(self, cycle_ns: u32) -> f64 {
        self.0 as f64 * cycle_ns as f64 * 1.0e-9
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// Ratio of this count to another, as used by Table 3.4's
    /// "(relative to MIN)" rows.
    ///
    /// Returns `f64::NAN` if `baseline` is zero.
    pub fn relative_to(self, baseline: Cycles) -> f64 {
        if baseline.0 == 0 {
            f64::NAN
        } else {
            self.0 as f64 / baseline.0 as f64
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycles::new(100);
        c += Cycles::new(50);
        assert_eq!(c, Cycles::new(150));
        c -= Cycles::new(25);
        assert_eq!(c.raw(), 125);
        assert_eq!((c * 2).raw(), 250);
        assert_eq!(Cycles::new(10) - Cycles::new(4), Cycles::new(6));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(10)), Cycles::ZERO);
        assert_eq!(Cycles::new(u64::MAX).checked_add(Cycles::new(1)), None);
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(2)),
            Some(Cycles::new(3))
        );
    }

    #[test]
    fn sum_over_iterator() {
        let total: Cycles = (1..=4u64).map(Cycles::new).sum();
        assert_eq!(total.raw(), 10);
    }

    #[test]
    fn relative_to_baseline() {
        let min = Cycles::new(1_000_000);
        let fault = Cycles::new(1_160_000);
        assert!((fault.relative_to(min) - 1.16).abs() < 1e-12);
        assert!(fault.relative_to(Cycles::ZERO).is_nan());
    }

    #[test]
    fn seconds_at_prototype_clock() {
        // 1.5 MIPS-ish machine: 10^9 cycles at 150 ns = 150 s.
        assert!((Cycles::new(1_000_000_000).seconds(150) - 150.0).abs() < 1e-9);
    }
}
