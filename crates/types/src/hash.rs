//! A fast, deterministic hasher for the simulator's hot maps.
//!
//! The standard library's default `SipHash 1-3` is keyed and
//! DoS-resistant, which the simulator does not need: every map here is
//! keyed by trusted internal values (block numbers, VPNs), and lookups
//! sit on the miss path of the reference loop. This is the classic
//! multiply-rotate scheme (as popularized by rustc's FxHash): one
//! wrapping multiply and a rotate per word, ~5× faster than SipHash on
//! `u64` keys.
//!
//! Determinism note: iteration order of a `HashMap` is still
//! unspecified — as with the default hasher, anything that reaches an
//! artifact must be explicitly sorted. All simulator outputs already
//! obey that rule.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Knuth's multiplicative constant, 2^64 / φ.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// One-multiply-per-word hasher for trusted integer-ish keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 0x1_0001, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 0x1_0001)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn set_round_trips() {
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::BuildHasher;
        let a = FastBuildHasher::default();
        let b = FastBuildHasher::default();
        for v in [0u64, 1, 42, u64::MAX, 0x9e37_79b9] {
            assert_eq!(a.hash_one(v), b.hash_one(v));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let bh = FastBuildHasher::default();
        let mut seen = std::collections::HashSet::new();
        for v in 0..100_000u64 {
            seen.insert(bh.hash_one(v));
        }
        assert_eq!(seen.len(), 100_000, "sequential u64 keys must not collide");
    }

    #[test]
    fn byte_writes_cover_tail_lengths() {
        // The generic `write` path handles non-multiple-of-8 inputs.
        let mut h1 = FastHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FastHasher::default();
        h2.write(&[1, 2, 3, 0]);
        // Zero-padded tails of different lengths may collide, but the
        // hasher must at least distinguish clearly different content.
        let mut h3 = FastHasher::default();
        h3.write(&[9, 9, 9]);
        assert_ne!(h1.finish(), h3.finish());
    }
}
