//! Reference kinds and the two-bit protection field.

use core::fmt;

/// The kind of a processor memory reference.
///
/// SPUR's cache controller counts instruction fetches, processor reads, and
/// processor writes separately (and the misses of each), so the simulator
/// carries the distinction on every reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// An instruction fetch (always a read; never sets dirty state).
    InstrFetch,
    /// A processor data read.
    Read,
    /// A processor data write.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }

    /// All three reference kinds, in counter order.
    pub const ALL: [AccessKind; 3] = [AccessKind::InstrFetch, AccessKind::Read, AccessKind::Write];
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        };
        f.write_str(s)
    }
}

/// The two-bit protection field stored in each PTE and cached with each
/// cache line (the `PR` field of Figure 3.2).
///
/// Ordering is meaningful: a higher variant grants strictly more access, so
/// "increase the protection level to read-write" (Section 3.1) is
/// `Protection::ReadWrite > Protection::ReadOnly`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Protection {
    /// No access permitted; any reference faults.
    #[default]
    None = 0,
    /// Execute-only (instruction fetch permitted, data access faults).
    Execute = 1,
    /// Read (and execute) permitted, writes fault.
    ReadOnly = 2,
    /// Full read/write access.
    ReadWrite = 3,
}

impl Protection {
    /// Decodes the two-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 4`.
    pub const fn from_bits(bits: u8) -> Self {
        match bits {
            0 => Protection::None,
            1 => Protection::Execute,
            2 => Protection::ReadOnly,
            3 => Protection::ReadWrite,
            _ => panic!("protection field is two bits"),
        }
    }

    /// Encodes to the two-bit field.
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Does this protection level permit the given access kind?
    ///
    /// ```
    /// use spur_types::{AccessKind, Protection};
    ///
    /// assert!(Protection::ReadOnly.permits(AccessKind::Read));
    /// assert!(!Protection::ReadOnly.permits(AccessKind::Write));
    /// assert!(Protection::Execute.permits(AccessKind::InstrFetch));
    /// assert!(!Protection::None.permits(AccessKind::InstrFetch));
    /// ```
    pub const fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::InstrFetch => (self as u8) >= Protection::Execute as u8,
            AccessKind::Read => (self as u8) >= Protection::ReadOnly as u8,
            AccessKind::Write => (self as u8) >= Protection::ReadWrite as u8,
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protection::None => "--",
            Protection::Execute => "x-",
            Protection::ReadOnly => "r-",
            Protection::ReadWrite => "rw",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protection_bits_round_trip() {
        for bits in 0..4u8 {
            assert_eq!(Protection::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    #[should_panic(expected = "two bits")]
    fn protection_rejects_wide_bits() {
        let _ = Protection::from_bits(4);
    }

    #[test]
    fn protection_ordering_matches_access_strength() {
        assert!(Protection::ReadWrite > Protection::ReadOnly);
        assert!(Protection::ReadOnly > Protection::Execute);
        assert!(Protection::Execute > Protection::None);
    }

    #[test]
    fn permits_matrix() {
        use AccessKind::*;
        use Protection::*;
        let cases = [
            (None, InstrFetch, false),
            (None, Read, false),
            (None, Write, false),
            (Execute, InstrFetch, true),
            (Execute, Read, false),
            (Execute, Write, false),
            (ReadOnly, InstrFetch, true),
            (ReadOnly, Read, true),
            (ReadOnly, Write, false),
            (ReadWrite, InstrFetch, true),
            (ReadWrite, Read, true),
            (ReadWrite, Write, true),
        ];
        for (prot, kind, expect) in cases {
            assert_eq!(prot.permits(kind), expect, "{prot} {kind}");
        }
    }

    #[test]
    fn write_detection() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(!AccessKind::InstrFetch.is_write());
    }
}
