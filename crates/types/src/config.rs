//! System configuration (Table 2.1) and memory sizing.

use core::fmt;

use crate::error::{Error, Result};
use crate::{BLOCK_SIZE, CACHE_SIZE, PAGE_SIZE};

/// Main-memory size in megabytes.
///
/// The paper evaluates 5, 6, and 8 MB configurations for the synthetic
/// workloads, and observes 8/12/16 MB development machines in Table 3.5.
///
/// ```
/// use spur_types::MemSize;
///
/// assert_eq!(MemSize::MB5.frames(), 1280);
/// assert_eq!(MemSize::new(8).bytes(), 8 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemSize(u32);

impl MemSize {
    /// 5 MB, the smallest configuration in Tables 3.3/3.4/4.1.
    pub const MB5: MemSize = MemSize(5);
    /// 6 MB, the middle configuration.
    pub const MB6: MemSize = MemSize(6);
    /// 8 MB, the largest synthetic-workload configuration.
    pub const MB8: MemSize = MemSize(8);
    /// 12 MB, seen on development machines in Table 3.5.
    pub const MB12: MemSize = MemSize(12);
    /// 16 MB, the largest machine in Table 3.5.
    pub const MB16: MemSize = MemSize(16);

    /// The three memory sizes used throughout the synthetic-workload
    /// experiments (Tables 3.3, 3.4 and 4.1).
    pub const STUDY_SIZES: [MemSize; 3] = [Self::MB5, Self::MB6, Self::MB8];

    /// Creates a memory size.
    ///
    /// # Panics
    ///
    /// Panics if `megabytes` is zero.
    pub const fn new(megabytes: u32) -> Self {
        assert!(megabytes > 0, "memory size must be positive");
        MemSize(megabytes)
    }

    /// Size in megabytes.
    pub const fn megabytes(self) -> u32 {
        self.0
    }

    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0 as u64 * 1024 * 1024
    }

    /// Number of 4 KB page frames.
    pub const fn frames(self) -> u32 {
        (self.bytes() / PAGE_SIZE) as u32
    }
}

impl fmt::Display for MemSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

/// The SPUR prototype configuration (Table 2.1) plus the simulator's
/// paging-cost knobs.
///
/// Construct with [`SystemConfig::prototype`] for the exact Table 2.1
/// machine, or via [`SystemConfig::builder`] to vary parameters for
/// sensitivity studies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    cache_bytes: u64,
    block_bytes: u64,
    page_bytes: u64,
    instruction_buffer: bool,
    processor_cycle_ns: u32,
    backplane_cycle_ns: u32,
    mem_first_word_cycles: u32,
    mem_next_word_cycles: u32,
}

impl SystemConfig {
    /// The exact prototype configuration from Table 2.1.
    ///
    /// ```
    /// use spur_types::SystemConfig;
    ///
    /// let cfg = SystemConfig::prototype();
    /// assert_eq!(cfg.cache_bytes(), 128 * 1024);
    /// assert_eq!(cfg.processor_cycle_ns(), 150);
    /// assert!(!cfg.instruction_buffer());
    /// ```
    pub fn prototype() -> Self {
        SystemConfig {
            cache_bytes: CACHE_SIZE,
            block_bytes: BLOCK_SIZE,
            page_bytes: PAGE_SIZE,
            instruction_buffer: false,
            processor_cycle_ns: 150,
            backplane_cycle_ns: 125,
            mem_first_word_cycles: 3,
            mem_next_word_cycles: 1,
        }
    }

    /// Starts building a configuration from the prototype values.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            inner: Self::prototype(),
        }
    }

    /// Cache capacity in bytes.
    pub fn cache_bytes(&self) -> u64 {
        self.cache_bytes
    }

    /// Cache block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Virtual-memory page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of lines in the direct-mapped cache.
    pub fn cache_lines(&self) -> u64 {
        self.cache_bytes / self.block_bytes
    }

    /// Number of cache blocks per page.
    pub fn blocks_per_page(&self) -> u64 {
        self.page_bytes / self.block_bytes
    }

    /// Whether the CPU's instruction buffer is enabled (disabled on the
    /// measured prototype).
    pub fn instruction_buffer(&self) -> bool {
        self.instruction_buffer
    }

    /// Processor cycle time in nanoseconds (150 ns on the prototype).
    pub fn processor_cycle_ns(&self) -> u32 {
        self.processor_cycle_ns
    }

    /// Backplane (bus) cycle time in nanoseconds.
    pub fn backplane_cycle_ns(&self) -> u32 {
        self.backplane_cycle_ns
    }

    /// Memory latency to the first word, in backplane cycles.
    pub fn mem_first_word_cycles(&self) -> u32 {
        self.mem_first_word_cycles
    }

    /// Memory latency per subsequent word, in backplane cycles.
    pub fn mem_next_word_cycles(&self) -> u32 {
        self.mem_next_word_cycles
    }

    /// Processor cycles needed to transfer one block from memory:
    /// first-word latency plus one cycle per remaining 32-bit word,
    /// converted from backplane to processor cycles (rounded up).
    pub fn block_fill_cycles(&self) -> u64 {
        let words = self.block_bytes / 4;
        let backplane =
            self.mem_first_word_cycles as u64 + (words - 1) * self.mem_next_word_cycles as u64;
        // Scale by the clock ratio, rounding up: the processor stalls for
        // an integral number of its own cycles.
        let num = backplane * self.backplane_cycle_ns as u64;
        num.div_ceil(self.processor_cycle_ns as u64)
    }

    /// Validates internal consistency (powers of two, block divides page,
    /// page divides cache).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        fn pow2(name: &str, v: u64) -> Result<()> {
            if v.is_power_of_two() {
                Ok(())
            } else {
                Err(Error::InvalidConfig(format!(
                    "{name} must be a power of two, got {v}"
                )))
            }
        }
        pow2("cache size", self.cache_bytes)?;
        pow2("block size", self.block_bytes)?;
        pow2("page size", self.page_bytes)?;
        if self.block_bytes > self.page_bytes {
            return Err(Error::InvalidConfig(
                "block size must not exceed page size".to_string(),
            ));
        }
        if self.page_bytes > self.cache_bytes {
            return Err(Error::InvalidConfig(
                "page size must not exceed cache size".to_string(),
            ));
        }
        if self.processor_cycle_ns == 0 || self.backplane_cycle_ns == 0 {
            return Err(Error::InvalidConfig(
                "cycle times must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

impl fmt::Display for SystemConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cache Size            {} Kbytes",
            self.cache_bytes / 1024
        )?;
        writeln!(f, "Associativity         Direct Mapped")?;
        writeln!(f, "Block Size            {} bytes", self.block_bytes)?;
        writeln!(f, "Page Size             {} Kbytes", self.page_bytes / 1024)?;
        writeln!(
            f,
            "Instruction Buffer    {}",
            if self.instruction_buffer {
                "Enabled"
            } else {
                "Disabled"
            }
        )?;
        writeln!(f, "Processor cycle time  {}ns", self.processor_cycle_ns)?;
        writeln!(f, "Backplane cycle time  {}ns", self.backplane_cycle_ns)?;
        writeln!(
            f,
            "Time to first word    {} cycles",
            self.mem_first_word_cycles
        )?;
        write!(
            f,
            "Time to next word     {} cycles",
            self.mem_next_word_cycles
        )
    }
}

/// Builder for [`SystemConfig`], seeded with the prototype values.
///
/// ```
/// use spur_types::SystemConfig;
///
/// let cfg = SystemConfig::builder()
///     .cache_bytes(256 * 1024)
///     .instruction_buffer(true)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.cache_lines(), 8192);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    inner: SystemConfig,
}

impl SystemConfigBuilder {
    /// Sets the cache capacity in bytes.
    pub fn cache_bytes(mut self, v: u64) -> Self {
        self.inner.cache_bytes = v;
        self
    }

    /// Sets the cache block size in bytes.
    pub fn block_bytes(mut self, v: u64) -> Self {
        self.inner.block_bytes = v;
        self
    }

    /// Sets the page size in bytes.
    pub fn page_bytes(mut self, v: u64) -> Self {
        self.inner.page_bytes = v;
        self
    }

    /// Enables or disables the instruction buffer.
    pub fn instruction_buffer(mut self, v: bool) -> Self {
        self.inner.instruction_buffer = v;
        self
    }

    /// Sets the processor cycle time in nanoseconds.
    pub fn processor_cycle_ns(mut self, v: u32) -> Self {
        self.inner.processor_cycle_ns = v;
        self
    }

    /// Sets the backplane cycle time in nanoseconds.
    pub fn backplane_cycle_ns(mut self, v: u32) -> Self {
        self.inner.backplane_cycle_ns = v;
        self
    }

    /// Sets memory first-word latency in backplane cycles.
    pub fn mem_first_word_cycles(mut self, v: u32) -> Self {
        self.inner.mem_first_word_cycles = v;
        self
    }

    /// Sets memory per-word latency in backplane cycles.
    pub fn mem_next_word_cycles(mut self, v: u32) -> Self {
        self.inner.mem_next_word_cycles = v;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if any constraint is violated; see
    /// [`SystemConfig::validate`].
    pub fn build(self) -> Result<SystemConfig> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_table_2_1() {
        let cfg = SystemConfig::prototype();
        assert_eq!(cfg.cache_bytes(), 128 * 1024);
        assert_eq!(cfg.block_bytes(), 32);
        assert_eq!(cfg.page_bytes(), 4096);
        assert!(!cfg.instruction_buffer());
        assert_eq!(cfg.processor_cycle_ns(), 150);
        assert_eq!(cfg.backplane_cycle_ns(), 125);
        assert_eq!(cfg.mem_first_word_cycles(), 3);
        assert_eq!(cfg.mem_next_word_cycles(), 1);
        cfg.validate().expect("prototype config is valid");
    }

    #[test]
    fn block_fill_cycles_reflects_word_count() {
        let cfg = SystemConfig::prototype();
        // 8 words: 3 + 7 = 10 backplane cycles at 125ns = 1250ns
        // = 8.33 processor cycles at 150ns, rounded up to 9.
        assert_eq!(cfg.block_fill_cycles(), 9);
    }

    #[test]
    fn mem_size_frame_counts() {
        assert_eq!(MemSize::MB5.frames(), 1280);
        assert_eq!(MemSize::MB6.frames(), 1536);
        assert_eq!(MemSize::MB8.frames(), 2048);
        assert_eq!(MemSize::MB12.frames(), 3072);
        assert_eq!(MemSize::MB16.frames(), 4096);
    }

    #[test]
    fn builder_rejects_non_power_of_two() {
        let err = SystemConfig::builder()
            .cache_bytes(100_000)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("power of two"));
    }

    #[test]
    fn builder_rejects_block_larger_than_page() {
        let err = SystemConfig::builder()
            .block_bytes(8192)
            .page_bytes(4096)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("block size"));
    }

    #[test]
    fn display_includes_table_rows() {
        let text = SystemConfig::prototype().to_string();
        assert!(text.contains("128 Kbytes"));
        assert!(text.contains("Direct Mapped"));
        assert!(text.contains("Disabled"));
        assert!(text.contains("150ns"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mem_size_panics() {
        let _ = MemSize::new(0);
    }
}
