//! The page table entry format of Figure 3.2(a).
//!
//! A SPUR PTE is one 32-bit word:
//!
//! ```text
//!  31                      12 11 10  9   8   7   6   5
//! +--------------------------+------+---+---+---+---+---+-----+
//! |   Physical Page Number   |  PR  | C | K | D | R | V | ... |
//! +--------------------------+------+---+---+---+---+---+-----+
//! PR = Protection (2 bits)    C = Coherency     K = Cacheable
//! D  = Page Dirty Bit         R = Page Referenced Bit
//! V  = Page Valid Bit
//! ```
//!
//! The `D` and `R` bits here are the *page*-level bits that the paper's
//! policies maintain; they are distinct from the cache's per-line block
//! dirty bit (Figure 3.2(b), implemented in `spur-cache`).

use core::fmt;

use spur_types::{Pfn, Protection};

const PR_SHIFT: u32 = 10;
const C_BIT: u32 = 1 << 9;
const K_BIT: u32 = 1 << 8;
const D_BIT: u32 = 1 << 7;
const R_BIT: u32 = 1 << 6;
const V_BIT: u32 = 1 << 5;
const PFN_SHIFT: u32 = 12;

/// A page table entry.
///
/// ```
/// use spur_mem::pte::Pte;
/// use spur_types::{Pfn, Protection};
///
/// let mut pte = Pte::resident(Pfn::new(0x123), Protection::ReadOnly);
/// assert!(pte.valid());
/// assert!(!pte.dirty());
/// pte.set_dirty(true);
/// assert!(pte.dirty());
///
/// // The format round-trips through the raw 32-bit word:
/// let same = Pte::from_raw(pte.raw());
/// assert_eq!(same, pte);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte {
    raw: u32,
}

impl Pte {
    /// An invalid (all-zero) entry.
    pub const INVALID: Pte = Pte { raw: 0 };

    /// Creates a valid, resident, cacheable, coherent entry for `pfn` with
    /// the given protection; dirty and referenced start clear.
    pub fn resident(pfn: Pfn, prot: Protection) -> Self {
        let mut pte = Pte { raw: 0 };
        pte.set_pfn(pfn);
        pte.set_protection(prot);
        pte.set_cacheable(true);
        pte.set_coherent(true);
        pte.set_valid(true);
        pte
    }

    /// Reconstructs an entry from its raw 32-bit word.
    pub const fn from_raw(raw: u32) -> Self {
        Pte { raw }
    }

    /// Returns the raw 32-bit word.
    pub const fn raw(self) -> u32 {
        self.raw
    }

    /// The physical frame this page maps to (meaningful only when valid).
    pub const fn pfn(self) -> Pfn {
        Pfn::new(self.raw >> PFN_SHIFT)
    }

    /// Sets the physical frame number.
    ///
    /// # Panics
    ///
    /// Panics if the frame number needs more than 20 bits.
    pub fn set_pfn(&mut self, pfn: Pfn) {
        let idx = pfn.index() as u32;
        assert!(idx < (1 << 20), "frame number exceeds 20 bits");
        self.raw = (self.raw & ((1 << PFN_SHIFT) - 1)) | (idx << PFN_SHIFT);
    }

    /// The two-bit protection field (`PR`).
    pub const fn protection(self) -> Protection {
        Protection::from_bits(((self.raw >> PR_SHIFT) & 0b11) as u8)
    }

    /// Sets the protection field.
    pub fn set_protection(&mut self, prot: Protection) {
        self.raw = (self.raw & !(0b11 << PR_SHIFT)) | ((prot.bits() as u32) << PR_SHIFT);
    }

    /// The coherency bit (`C`): participate in the bus coherence protocol.
    pub const fn coherent(self) -> bool {
        self.raw & C_BIT != 0
    }

    /// Sets the coherency bit.
    pub fn set_coherent(&mut self, on: bool) {
        self.set_bit(C_BIT, on);
    }

    /// The cacheable bit (`K`).
    pub const fn cacheable(self) -> bool {
        self.raw & K_BIT != 0
    }

    /// Sets the cacheable bit.
    pub fn set_cacheable(&mut self, on: bool) {
        self.set_bit(K_BIT, on);
    }

    /// The page dirty bit (`D`).
    pub const fn dirty(self) -> bool {
        self.raw & D_BIT != 0
    }

    /// Sets or clears the page dirty bit.
    pub fn set_dirty(&mut self, on: bool) {
        self.set_bit(D_BIT, on);
    }

    /// The page referenced bit (`R`).
    pub const fn referenced(self) -> bool {
        self.raw & R_BIT != 0
    }

    /// Sets or clears the page referenced bit.
    pub fn set_referenced(&mut self, on: bool) {
        self.set_bit(R_BIT, on);
    }

    /// The valid bit (`V`).
    pub const fn valid(self) -> bool {
        self.raw & V_BIT != 0
    }

    /// Sets or clears the valid bit.
    pub fn set_valid(&mut self, on: bool) {
        self.set_bit(V_BIT, on);
    }

    fn set_bit(&mut self, mask: u32, on: bool) {
        if on {
            self.raw |= mask;
        } else {
            self.raw &= !mask;
        }
    }

    /// Renders the bit layout of this entry, used by the Figure 3.2
    /// regenerator.
    pub fn render_layout(self) -> String {
        format!(
            " 31        12 11-10  9   8   7   6   5\n\
             +-------------+----+---+---+---+---+---+\n\
             | PFN {:#07x} | {} | {} | {} | {} | {} | {} |\n\
             +-------------+----+---+---+---+---+---+\n\
             PR=Protection C=Coherency K=Cacheable D=PageDirty R=Referenced V=Valid",
            self.pfn().index(),
            self.protection(),
            u8::from(self.coherent()),
            u8::from(self.cacheable()),
            u8::from(self.dirty()),
            u8::from(self.referenced()),
            u8::from(self.valid()),
        )
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pte[pfn={:#x} pr={} c={} k={} d={} r={} v={}]",
            self.pfn().index(),
            self.protection(),
            u8::from(self.coherent()),
            u8::from(self.cacheable()),
            u8::from(self.dirty()),
            u8::from(self.referenced()),
            u8::from(self.valid()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_is_all_zero() {
        assert_eq!(Pte::INVALID.raw(), 0);
        assert!(!Pte::INVALID.valid());
        assert!(!Pte::INVALID.dirty());
        assert!(!Pte::INVALID.referenced());
    }

    #[test]
    fn resident_sets_expected_bits() {
        let pte = Pte::resident(Pfn::new(5), Protection::ReadWrite);
        assert!(pte.valid());
        assert!(pte.cacheable());
        assert!(pte.coherent());
        assert!(!pte.dirty());
        assert!(!pte.referenced());
        assert_eq!(pte.pfn(), Pfn::new(5));
        assert_eq!(pte.protection(), Protection::ReadWrite);
    }

    #[test]
    fn bits_are_independent() {
        let mut pte = Pte::resident(Pfn::new(0xfffff), Protection::ReadOnly);
        pte.set_dirty(true);
        pte.set_referenced(true);
        assert_eq!(pte.pfn(), Pfn::new(0xfffff));
        assert_eq!(pte.protection(), Protection::ReadOnly);
        pte.set_dirty(false);
        assert!(pte.referenced(), "clearing D must not clear R");
        pte.set_referenced(false);
        assert!(pte.valid(), "clearing R must not clear V");
        pte.set_protection(Protection::ReadWrite);
        assert_eq!(
            pte.pfn(),
            Pfn::new(0xfffff),
            "PR update must not clobber PFN"
        );
    }

    #[test]
    fn raw_round_trip() {
        let mut pte = Pte::resident(Pfn::new(0x3_1415 & 0xfffff), Protection::Execute);
        pte.set_dirty(true);
        assert_eq!(Pte::from_raw(pte.raw()), pte);
    }

    #[test]
    #[should_panic(expected = "20 bits")]
    fn pfn_overflow_panics() {
        let mut pte = Pte::INVALID;
        pte.set_pfn(Pfn::new(1 << 20));
    }

    #[test]
    fn layout_render_mentions_every_field() {
        let text = Pte::resident(Pfn::new(1), Protection::ReadWrite).render_layout();
        for field in ["PR", "C=", "K=", "D=", "R=", "V="] {
            assert!(text.contains(field), "missing {field} in layout");
        }
    }
}
