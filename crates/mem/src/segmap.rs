//! Per-process segment registers: the synonym-prevention mechanism.
//!
//! SPUR avoids the virtual-address-synonym problem by forcing processes
//! that share memory to use the *same global virtual address* for it. The
//! hardware support is four segment registers per process: the top two bits
//! of a 32-bit process address select a register, whose contents name one of
//! 256 one-gigabyte global segments. Sharing is arranged by loading the same
//! global segment number into two processes' registers.

use core::fmt;

use spur_types::{Error, GlobalAddr, ProcAddr, Result, SegmentId, GLOBAL_SEGMENTS};

use crate::pagetable::PT_GLOBAL_SEGMENT;

/// The global segment shared by every process for the kernel.
pub const KERNEL_GLOBAL_SEGMENT: u64 = 0;

/// Identifies a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// One process's four segment registers.
///
/// ```
/// use spur_mem::segmap::SegmentMap;
/// use spur_types::{ProcAddr, SegmentId};
///
/// let mut map = SegmentMap::new();
/// map.load(SegmentId::new(1), 42).unwrap();
/// let ga = map.translate(ProcAddr::new(0x4000_0123)).unwrap();
/// assert_eq!(ga.global_segment(), 42);
/// assert_eq!(ga.segment_offset(), 0x123);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentMap {
    registers: [Option<u64>; 4],
}

impl SegmentMap {
    /// Creates a map with all registers unloaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads global segment `global` into register `seg`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSegment`] if `global` is out of range or names
    /// the reserved page-table segment.
    pub fn load(&mut self, seg: SegmentId, global: u64) -> Result<()> {
        if global >= GLOBAL_SEGMENTS {
            return Err(Error::BadSegment(format!(
                "global segment {global} out of range"
            )));
        }
        if global == PT_GLOBAL_SEGMENT {
            return Err(Error::BadSegment(
                "the page-table segment cannot be mapped by user code".to_string(),
            ));
        }
        self.registers[seg.index()] = Some(global);
        Ok(())
    }

    /// Unloads register `seg`.
    pub fn unload(&mut self, seg: SegmentId) {
        self.registers[seg.index()] = None;
    }

    /// Returns the global segment loaded in register `seg`, if any.
    pub fn global_segment(&self, seg: SegmentId) -> Option<u64> {
        self.registers[seg.index()]
    }

    /// Translates a process address to its global virtual address.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSegment`] if the selected register is unloaded.
    pub fn translate(&self, addr: ProcAddr) -> Result<GlobalAddr> {
        let seg = addr.segment();
        let global = self.registers[seg.index()]
            .ok_or_else(|| Error::BadSegment(format!("register {seg} is not loaded")))?;
        Ok(GlobalAddr::from_parts(global, addr.segment_offset()))
    }
}

/// Hands out global segments to address-space regions, keeping the kernel
/// and page-table segments reserved.
///
/// Sharing is expressed by handing the same allocation to two processes;
/// the allocator never reissues a segment.
#[derive(Debug, Clone)]
pub struct GlobalSegmentAllocator {
    next: u64,
}

impl GlobalSegmentAllocator {
    /// Creates an allocator; segment 0 (kernel) and 255 (page table) are
    /// reserved and never allocated.
    pub fn new() -> Self {
        GlobalSegmentAllocator { next: 1 }
    }

    /// Allocates a fresh global segment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadSegment`] when all 254 allocatable segments are
    /// taken.
    pub fn allocate(&mut self) -> Result<u64> {
        if self.next >= PT_GLOBAL_SEGMENT {
            return Err(Error::BadSegment(
                "global segment space exhausted".to_string(),
            ));
        }
        let seg = self.next;
        self.next += 1;
        Ok(seg)
    }

    /// Number of segments still available.
    pub fn remaining(&self) -> u64 {
        PT_GLOBAL_SEGMENT - self.next
    }
}

impl Default for GlobalSegmentAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_through_loaded_register() {
        let mut map = SegmentMap::new();
        map.load(SegmentId::new(0), KERNEL_GLOBAL_SEGMENT).unwrap();
        map.load(SegmentId::new(2), 17).unwrap();
        let ga = map.translate(ProcAddr::new(0x8000_0040)).unwrap();
        assert_eq!(ga.global_segment(), 17);
        assert_eq!(ga.segment_offset(), 0x40);
        let k = map.translate(ProcAddr::new(0x0000_1000)).unwrap();
        assert_eq!(k.global_segment(), KERNEL_GLOBAL_SEGMENT);
    }

    #[test]
    fn unloaded_register_faults() {
        let map = SegmentMap::new();
        assert!(map.translate(ProcAddr::new(0)).is_err());
    }

    #[test]
    fn unload_clears_register() {
        let mut map = SegmentMap::new();
        map.load(SegmentId::new(1), 5).unwrap();
        assert_eq!(map.global_segment(SegmentId::new(1)), Some(5));
        map.unload(SegmentId::new(1));
        assert_eq!(map.global_segment(SegmentId::new(1)), None);
    }

    #[test]
    fn page_table_segment_is_unmappable() {
        let mut map = SegmentMap::new();
        assert!(map.load(SegmentId::new(0), PT_GLOBAL_SEGMENT).is_err());
        assert!(map.load(SegmentId::new(0), 256).is_err());
    }

    #[test]
    fn shared_segment_gives_identical_global_addresses() {
        // The synonym-prevention property: two processes mapping the same
        // global segment translate a shared offset to the same global
        // address, even through different registers.
        let mut a = SegmentMap::new();
        let mut b = SegmentMap::new();
        a.load(SegmentId::new(1), 9).unwrap();
        b.load(SegmentId::new(3), 9).unwrap();
        let ga = a.translate(ProcAddr::new(0x4000_0888)).unwrap();
        let gb = b.translate(ProcAddr::new(0xC000_0888)).unwrap();
        assert_eq!(ga, gb);
    }

    #[test]
    fn allocator_skips_reserved_segments() {
        let mut alloc = GlobalSegmentAllocator::new();
        let first = alloc.allocate().unwrap();
        assert_eq!(first, 1);
        let mut last = first;
        while let Ok(seg) = alloc.allocate() {
            assert_ne!(seg, KERNEL_GLOBAL_SEGMENT);
            assert_ne!(seg, PT_GLOBAL_SEGMENT);
            last = seg;
        }
        assert_eq!(last, 254);
        assert_eq!(alloc.remaining(), 0);
    }
}
