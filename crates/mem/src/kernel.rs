//! The kernel's memory footprint.
//!
//! Sprite's kernel occupies a fixed chunk of every machine: its text and
//! static data are wired at boot, and the file system's block cache takes
//! a further slice. The paper's memory ladder ("5, 6, and 8 megabytes")
//! is *total* memory — what the workloads actually compete for is what
//! remains. This module makes that arithmetic explicit instead of a bare
//! `kernel_reserved_frames` number.

use core::fmt;

use spur_types::{Error, MemSize, Result, PAGE_SIZE};

use crate::phys::PhysMemory;

/// The kernel's wired footprint, in pages.
///
/// ```
/// use spur_mem::kernel::KernelLayout;
/// use spur_types::MemSize;
///
/// let k = KernelLayout::sprite_1989();
/// assert_eq!(k.total_pages(), 256); // ~1 MB, the era's Sprite kernel
/// assert_eq!(k.usable_frames(MemSize::MB5), 1280 - 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelLayout {
    /// Kernel text (instructions).
    pub text_pages: u32,
    /// Kernel static data and dynamic structures (process table, PCBs).
    pub data_pages: u32,
    /// The file system's wired block-cache headroom. (Sprite's FS cache
    /// was dynamically sized; this is its wired floor.)
    pub fs_cache_pages: u32,
}

impl KernelLayout {
    /// A 1989-vintage Sprite kernel: roughly a megabyte wired.
    pub const fn sprite_1989() -> Self {
        KernelLayout {
            text_pages: 96,     // ~384 KB of kernel text
            data_pages: 96,     // ~384 KB of static data + tables
            fs_cache_pages: 64, // ~256 KB wired FS cache floor
        }
    }

    /// Total wired pages.
    pub const fn total_pages(&self) -> u32 {
        self.text_pages + self.data_pages + self.fs_cache_pages
    }

    /// Wired footprint in bytes.
    pub const fn bytes(&self) -> u64 {
        self.total_pages() as u64 * PAGE_SIZE
    }

    /// Frames left for user pages on a machine of `mem`.
    pub const fn usable_frames(&self, mem: MemSize) -> u32 {
        mem.frames() - self.total_pages()
    }

    /// Validates that the kernel fits in `mem` with room to spare.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidConfig`] if the kernel would consume half
    /// of memory or more.
    pub fn validate_for(&self, mem: MemSize) -> Result<()> {
        if u64::from(self.total_pages()) * 2 >= u64::from(mem.frames()) {
            return Err(Error::InvalidConfig(format!(
                "kernel ({} pages) consumes half of {mem}",
                self.total_pages()
            )));
        }
        Ok(())
    }

    /// Wires the kernel's pages out of `phys` at boot.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoFreeFrames`] if memory cannot hold the kernel.
    pub fn wire(&self, phys: &mut PhysMemory) -> Result<()> {
        for _ in 0..self.total_pages() {
            phys.allocate_wired()?;
        }
        Ok(())
    }
}

impl Default for KernelLayout {
    fn default() -> Self {
        Self::sprite_1989()
    }
}

impl fmt::Display for KernelLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel[text {} + data {} + fs-cache {} = {} pages ({} KB)]",
            self.text_pages,
            self.data_pages,
            self.fs_cache_pages,
            self.total_pages(),
            self.bytes() / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprite_kernel_is_about_a_megabyte() {
        let k = KernelLayout::sprite_1989();
        assert_eq!(k.total_pages(), 256);
        assert_eq!(k.bytes(), 1024 * 1024);
    }

    #[test]
    fn usable_frames_subtract_the_kernel() {
        let k = KernelLayout::sprite_1989();
        assert_eq!(k.usable_frames(MemSize::MB5), 1024);
        assert_eq!(k.usable_frames(MemSize::MB8), 1792);
    }

    #[test]
    fn oversized_kernel_is_rejected() {
        let k = KernelLayout {
            text_pages: 200,
            data_pages: 200,
            fs_cache_pages: 200,
        };
        assert!(k.validate_for(MemSize::new(2)).is_err());
        assert!(k.validate_for(MemSize::MB8).is_ok());
    }

    #[test]
    fn wiring_consumes_exactly_the_footprint() {
        let k = KernelLayout::sprite_1989();
        let mut phys = PhysMemory::new(MemSize::MB5);
        k.wire(&mut phys).unwrap();
        assert_eq!(phys.wired_frames(), 256);
        assert_eq!(phys.free_frames(), 1024);
    }

    #[test]
    fn wiring_fails_cleanly_when_memory_is_too_small() {
        let k = KernelLayout::sprite_1989();
        // A sub-megabyte machine: wiring must error, not panic.
        let mut phys = PhysMemory::new(MemSize::new(1));
        // 1 MB has exactly 256 frames; kernel takes all of them — fits.
        k.wire(&mut phys).unwrap();
        assert_eq!(phys.free_frames(), 0);
        let mut phys_tiny = PhysMemory::new(MemSize::new(1));
        for _ in 0..10 {
            phys_tiny.allocate_wired().unwrap();
        }
        assert!(k.wire(&mut phys_tiny).is_err());
    }

    #[test]
    fn display_shows_the_breakdown() {
        let text = KernelLayout::sprite_1989().to_string();
        assert!(text.contains("text"));
        assert!(text.contains("fs-cache"));
        assert!(text.contains("1024 KB"));
    }
}
