//! SPUR's two-level page table, resident in the global virtual address
//! space.
//!
//! In-cache translation (Wood et al., ISCA 1986) has no TLB. Instead:
//!
//! * The **first-level** page table is a linear array of 4-byte PTEs in
//!   global virtual space, one per global virtual page. Being virtual data,
//!   first-level PTEs are fetched *through the cache* and compete with
//!   instructions and data for cache lines.
//! * The **second-level** page table maps the pages of the first-level
//!   table. It is wired down in physical memory at well-known addresses, so
//!   the cache controller can fetch a missing first-level PTE directly from
//!   memory without recursion.
//!
//! This module stores the logical PTE contents (the single source of truth
//! the OS updates) and exposes the *address geometry* the cache needs: the
//! global virtual address of any PTE and the inverse mapping.

use spur_types::{Error, FastMap, GlobalAddr, Pfn, Result, Vpn, PAGE_SHIFT, PAGE_SIZE};

use crate::phys::PhysMemory;
use crate::pte::Pte;

/// The global segment reserved for the first-level page table.
pub const PT_GLOBAL_SEGMENT: u64 = 255;

/// Size of one PTE in bytes.
pub const PTE_SIZE: u64 = 4;

/// Number of PTEs per page of the first-level table.
pub const PTES_PER_PAGE: u64 = PAGE_SIZE / PTE_SIZE;

/// The two-level page table.
///
/// ```
/// use spur_mem::pagetable::{PageTable, PT_GLOBAL_SEGMENT};
/// use spur_mem::pte::Pte;
/// use spur_types::{Pfn, Protection, Vpn};
///
/// let mut pt = PageTable::new();
/// let vpn = Vpn::new(100);
/// pt.insert(vpn, Pte::resident(Pfn::new(3), Protection::ReadWrite));
///
/// // PTE addresses live in the reserved page-table segment:
/// assert_eq!(pt.pte_vaddr(vpn).global_segment(), PT_GLOBAL_SEGMENT);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    /// Logical first-level contents, stored one page-table page (1024
    /// PTEs) per dense leaf, keyed by `vpn >> LEAF_SHIFT`. Missing
    /// entries read as [`Pte::INVALID`]. The leaf layout mirrors the
    /// machine's own geometry — a leaf *is* a page of the first-level
    /// table — and turns the translation path's PTE read into one
    /// small-map hash plus an array index instead of a per-VPN hash
    /// over every entry.
    leaves: FastMap<u64, Box<PteLeaf>>,
    /// Explicitly present first-level entries (maintains `len`).
    entries: usize,
    /// Second level: page of the first-level table → wired frame.
    second_level: FastMap<Vpn, Pfn>,
}

/// Base-2 logarithm of [`PTES_PER_PAGE`]: the split between leaf key
/// and slot index.
const LEAF_SHIFT: u32 = PTES_PER_PAGE.trailing_zeros();
const LEAF_SIZE: usize = PTES_PER_PAGE as usize;
const LEAF_MASK: u64 = PTES_PER_PAGE - 1;

/// One page of the first-level table: a dense PTE array plus a
/// presence bitmap distinguishing explicit entries (including
/// explicitly inserted invalid ones) from the implicit invalid
/// default. Absent slots always hold [`Pte::INVALID`], so the read
/// path never consults the bitmap.
#[derive(Clone)]
struct PteLeaf {
    ptes: [Pte; LEAF_SIZE],
    present: [u64; LEAF_SIZE / 64],
}

impl PteLeaf {
    fn new() -> Box<Self> {
        Box::new(PteLeaf {
            ptes: [Pte::INVALID; LEAF_SIZE],
            present: [0; LEAF_SIZE / 64],
        })
    }

    #[inline]
    fn is_present(&self, slot: usize) -> bool {
        self.present[slot / 64] >> (slot % 64) & 1 != 0
    }

    fn mark(&mut self, slot: usize) {
        self.present[slot / 64] |= 1 << (slot % 64);
    }

    fn clear(&mut self, slot: usize) {
        self.present[slot / 64] &= !(1 << (slot % 64));
    }

    fn is_empty(&self) -> bool {
        self.present.iter().all(|&w| w == 0)
    }
}

impl std::fmt::Debug for PteLeaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let present: u32 = self.present.iter().map(|w| w.count_ones()).sum();
        f.debug_struct("PteLeaf")
            .field("present", &present)
            .finish()
    }
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The global virtual address of the PTE for `vpn`.
    pub fn pte_vaddr(&self, vpn: Vpn) -> GlobalAddr {
        GlobalAddr::from_parts(PT_GLOBAL_SEGMENT, vpn.index() * PTE_SIZE)
    }

    /// The inverse of [`PageTable::pte_vaddr`]: which page's PTE lives at
    /// this global address? Returns `None` for addresses outside the
    /// page-table segment or not 4-byte aligned.
    pub fn vpn_for_pte_vaddr(&self, addr: GlobalAddr) -> Option<Vpn> {
        if addr.global_segment() != PT_GLOBAL_SEGMENT {
            return None;
        }
        let off = addr.segment_offset();
        if !off.is_multiple_of(PTE_SIZE) {
            return None;
        }
        let vpn = off / PTE_SIZE;
        if vpn >= (1 << 26) {
            return None;
        }
        Some(Vpn::new(vpn))
    }

    /// The virtual page of the *first-level table* that holds `vpn`'s PTE.
    pub fn pte_page_vpn(&self, vpn: Vpn) -> Vpn {
        self.pte_vaddr(vpn).vpn()
    }

    /// Reads the PTE for `vpn`; absent entries read as invalid.
    #[inline]
    pub fn pte(&self, vpn: Vpn) -> Pte {
        match self.leaves.get(&(vpn.index() >> LEAF_SHIFT)) {
            Some(leaf) => leaf.ptes[(vpn.index() & LEAF_MASK) as usize],
            None => Pte::INVALID,
        }
    }

    /// Inserts or replaces the PTE for `vpn`, returning the previous entry.
    pub fn insert(&mut self, vpn: Vpn, pte: Pte) -> Pte {
        let leaf = self
            .leaves
            .entry(vpn.index() >> LEAF_SHIFT)
            .or_insert_with(PteLeaf::new);
        let slot = (vpn.index() & LEAF_MASK) as usize;
        let prev = if leaf.is_present(slot) {
            leaf.ptes[slot]
        } else {
            leaf.mark(slot);
            self.entries += 1;
            Pte::INVALID
        };
        leaf.ptes[slot] = pte;
        prev
    }

    /// Applies `f` to the PTE for `vpn` in place (creating an invalid entry
    /// to mutate if none exists) and returns the updated value.
    pub fn update<F: FnOnce(&mut Pte)>(&mut self, vpn: Vpn, f: F) -> Pte {
        let leaf = self
            .leaves
            .entry(vpn.index() >> LEAF_SHIFT)
            .or_insert_with(PteLeaf::new);
        let slot = (vpn.index() & LEAF_MASK) as usize;
        if !leaf.is_present(slot) {
            leaf.mark(slot);
            self.entries += 1;
        }
        f(&mut leaf.ptes[slot]);
        leaf.ptes[slot]
    }

    /// Removes the PTE for `vpn`, returning it if present.
    pub fn remove(&mut self, vpn: Vpn) -> Option<Pte> {
        let key = vpn.index() >> LEAF_SHIFT;
        let leaf = self.leaves.get_mut(&key)?;
        let slot = (vpn.index() & LEAF_MASK) as usize;
        if !leaf.is_present(slot) {
            return None;
        }
        let prev = std::mem::replace(&mut leaf.ptes[slot], Pte::INVALID);
        leaf.clear(slot);
        self.entries -= 1;
        if leaf.is_empty() {
            self.leaves.remove(&key);
        }
        Some(prev)
    }

    /// Number of (explicitly present) first-level entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Iterates over `(vpn, pte)` pairs for explicit entries.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Pte)> + '_ {
        self.leaves.iter().flat_map(|(&base, leaf)| {
            (0..LEAF_SIZE)
                .filter(move |&slot| leaf.is_present(slot))
                .map(move |slot| {
                    (
                        Vpn::new((base << LEAF_SHIFT) + slot as u64),
                        leaf.ptes[slot],
                    )
                })
        })
    }

    /// Ensures the second-level mapping for the page-table page that holds
    /// `vpn`'s PTE exists, wiring a frame for it on first use.
    ///
    /// Returns the frame holding the page-table page and whether it was
    /// newly wired.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoFreeFrames`] if a frame must be wired and memory
    /// is exhausted.
    pub fn ensure_second_level(&mut self, vpn: Vpn, phys: &mut PhysMemory) -> Result<(Pfn, bool)> {
        let pt_page = self.pte_page_vpn(vpn);
        if let Some(&pfn) = self.second_level.get(&pt_page) {
            return Ok((pfn, false));
        }
        let pfn = phys.allocate_wired()?;
        self.second_level.insert(pt_page, pfn);
        Ok((pfn, true))
    }

    /// Looks up the wired frame for a page of the first-level table, as the
    /// cache controller does when a first-level PTE misses in the cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotResident`] if the page-table page was never
    /// wired (the OS has not touched any PTE in it).
    pub fn second_level_lookup(&self, pt_page: Vpn) -> Result<Pfn> {
        self.second_level
            .get(&pt_page)
            .copied()
            .ok_or(Error::NotResident(pt_page))
    }

    /// Number of wired second-level (page-table) pages.
    pub fn wired_pt_pages(&self) -> usize {
        self.second_level.len()
    }

    /// Translates a global address to a physical address using the logical
    /// table contents (no cache interaction, no cycle accounting) — the
    /// "architectural" translation used by tests and by the simulator's
    /// correctness cross-checks.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotResident`] if the page's PTE is invalid.
    pub fn translate(&self, addr: GlobalAddr) -> Result<spur_types::PhysAddr> {
        let pte = self.pte(addr.vpn());
        if !pte.valid() {
            return Err(Error::NotResident(addr.vpn()));
        }
        let frame_base = (pte.pfn().index() as u64) << PAGE_SHIFT;
        Ok(spur_types::PhysAddr::new(
            (frame_base + addr.page_offset()) as u32,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_types::{MemSize, Protection};

    #[test]
    fn pte_vaddr_geometry() {
        let pt = PageTable::new();
        let v0 = pt.pte_vaddr(Vpn::new(0));
        let v1 = pt.pte_vaddr(Vpn::new(1));
        assert_eq!(v0.global_segment(), PT_GLOBAL_SEGMENT);
        assert_eq!(v1.raw() - v0.raw(), PTE_SIZE);
        // 1024 PTEs fit in one page of the table.
        assert_eq!(
            pt.pte_page_vpn(Vpn::new(0)),
            pt.pte_page_vpn(Vpn::new(PTES_PER_PAGE - 1))
        );
        assert_ne!(
            pt.pte_page_vpn(Vpn::new(0)),
            pt.pte_page_vpn(Vpn::new(PTES_PER_PAGE))
        );
    }

    #[test]
    fn vpn_for_pte_vaddr_inverts() {
        let pt = PageTable::new();
        for vpn in [0u64, 1, 1023, 1024, (1 << 26) - 1] {
            let vpn = Vpn::new(vpn);
            assert_eq!(pt.vpn_for_pte_vaddr(pt.pte_vaddr(vpn)), Some(vpn));
        }
        // Outside the PT segment:
        assert_eq!(pt.vpn_for_pte_vaddr(GlobalAddr::from_parts(1, 0)), None);
        // Misaligned:
        assert_eq!(
            pt.vpn_for_pte_vaddr(GlobalAddr::from_parts(PT_GLOBAL_SEGMENT, 2)),
            None
        );
    }

    #[test]
    fn absent_entries_read_invalid() {
        let pt = PageTable::new();
        assert!(!pt.pte(Vpn::new(77)).valid());
        assert!(pt.is_empty());
    }

    #[test]
    fn insert_update_remove() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(5);
        let prev = pt.insert(vpn, Pte::resident(Pfn::new(1), Protection::ReadOnly));
        assert!(!prev.valid());
        let updated = pt.update(vpn, |p| p.set_dirty(true));
        assert!(updated.dirty());
        assert!(pt.pte(vpn).dirty());
        let removed = pt.remove(vpn).unwrap();
        assert!(removed.dirty());
        assert!(!pt.pte(vpn).valid());
    }

    #[test]
    fn explicit_invalid_entries_are_tracked() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(2048);
        pt.insert(vpn, Pte::INVALID);
        assert_eq!(pt.len(), 1, "an explicitly inserted invalid PTE counts");
        assert!(!pt.pte(vpn).valid());
        assert_eq!(pt.iter().count(), 1);
        assert_eq!(pt.remove(vpn), Some(Pte::INVALID));
        assert_eq!(pt.len(), 0);
        assert_eq!(pt.remove(vpn), None, "second remove finds nothing");
        // Entries one leaf apart don't interfere.
        pt.insert(
            Vpn::new(5),
            Pte::resident(Pfn::new(1), Protection::ReadOnly),
        );
        pt.insert(
            Vpn::new(5 + PTES_PER_PAGE),
            Pte::resident(Pfn::new(2), Protection::ReadOnly),
        );
        assert_eq!(pt.len(), 2);
        assert_eq!(pt.pte(Vpn::new(5)).pfn(), Pfn::new(1));
        assert_eq!(pt.pte(Vpn::new(5 + PTES_PER_PAGE)).pfn(), Pfn::new(2));
    }

    #[test]
    fn second_level_wires_once_per_pt_page() {
        let mut pt = PageTable::new();
        let mut pm = PhysMemory::new(MemSize::new(1));
        let (f1, new1) = pt.ensure_second_level(Vpn::new(0), &mut pm).unwrap();
        let (f2, new2) = pt.ensure_second_level(Vpn::new(1023), &mut pm).unwrap();
        assert!(new1);
        assert!(!new2, "same page-table page must not wire twice");
        assert_eq!(f1, f2);
        let (_, new3) = pt.ensure_second_level(Vpn::new(1024), &mut pm).unwrap();
        assert!(new3, "next page-table page wires a new frame");
        assert_eq!(pt.wired_pt_pages(), 2);
        assert_eq!(pm.wired_frames(), 2);
    }

    #[test]
    fn second_level_lookup_errors_when_missing() {
        let pt = PageTable::new();
        assert!(matches!(
            pt.second_level_lookup(Vpn::new(42)),
            Err(Error::NotResident(_))
        ));
    }

    #[test]
    fn architectural_translate() {
        let mut pt = PageTable::new();
        let vpn = Vpn::new(0x42);
        pt.insert(vpn, Pte::resident(Pfn::new(7), Protection::ReadWrite));
        let ga = GlobalAddr::new(vpn.base_addr().raw() + 0x123);
        let pa = pt.translate(ga).unwrap();
        assert_eq!(pa.pfn(), Pfn::new(7));
        assert_eq!(pa.page_offset(), 0x123);
        assert!(pt.translate(GlobalAddr::new(0)).is_err());
    }

    #[test]
    fn iter_yields_explicit_entries() {
        let mut pt = PageTable::new();
        pt.insert(
            Vpn::new(1),
            Pte::resident(Pfn::new(1), Protection::ReadOnly),
        );
        pt.insert(
            Vpn::new(2),
            Pte::resident(Pfn::new(2), Protection::ReadOnly),
        );
        let mut vpns: Vec<_> = pt.iter().map(|(v, _)| v.index()).collect();
        vpns.sort_unstable();
        assert_eq!(vpns, vec![1, 2]);
        assert_eq!(pt.len(), 2);
    }
}
