//! Physical memory, page tables, and segment mapping for the SPUR
//! simulator.
//!
//! This crate provides the memory-management substrate beneath the
//! virtual-address cache:
//!
//! * [`pte`] — the page table entry format of Figure 3.2(a): physical frame
//!   number plus protection (`PR`), coherency (`C`), cacheable (`K`), page
//!   dirty (`D`), page referenced (`R`), and valid (`V`) bits;
//! * [`phys`] — the physical frame pool with free-list allocation and wired
//!   (unreplaceable) frames;
//! * [`pagetable`] — SPUR's two-level page table living in the global
//!   virtual address space, whose first level is itself cacheable data (the
//!   heart of in-cache translation) and whose second level is wired down at
//!   well-known addresses;
//! * [`segmap`] — per-process segment registers mapping 32-bit process
//!   addresses onto the 38-bit global space, the mechanism Sprite uses to
//!   prevent virtual-address synonyms.
//!
//! # Example
//!
//! ```
//! use spur_mem::pagetable::PageTable;
//! use spur_mem::pte::Pte;
//! use spur_types::{Pfn, Protection, Vpn};
//!
//! let mut pt = PageTable::new();
//! let vpn = Vpn::new(0x42);
//! pt.insert(vpn, Pte::resident(Pfn::new(7), Protection::ReadWrite));
//! assert!(pt.pte(vpn).valid());
//!
//! // The PTE itself has a global virtual address, so it can be cached:
//! let pte_va = pt.pte_vaddr(vpn);
//! assert_eq!(pt.vpn_for_pte_vaddr(pte_va), Some(vpn));
//! ```

pub mod kernel;
pub mod pagetable;
pub mod phys;
pub mod pte;
pub mod segmap;

pub use kernel::KernelLayout;
pub use pagetable::PageTable;
pub use phys::{FrameState, PhysMemory};
pub use pte::Pte;
pub use segmap::{GlobalSegmentAllocator, ProcessId, SegmentMap};
