//! The physical page-frame pool.
//!
//! Main memory is a fixed array of 4 KB frames. The VM system allocates
//! frames for pages being faulted in, wires frames that must never be
//! replaced (second-level page tables, kernel text), and returns frames to
//! the free list when pages are reclaimed.

use core::fmt;

use spur_types::{Error, MemSize, Pfn, Result, Vpn};

/// The state of one physical frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// On the free list.
    Free,
    /// Permanently allocated; never a replacement candidate (kernel,
    /// second-level page tables).
    Wired,
    /// Holding the given virtual page.
    InUse(Vpn),
}

/// A pool of physical page frames with free-list allocation.
///
/// ```
/// use spur_mem::phys::PhysMemory;
/// use spur_types::{MemSize, Vpn};
///
/// let mut pm = PhysMemory::new(MemSize::MB5);
/// assert_eq!(pm.total_frames(), 1280);
///
/// let f = pm.allocate(Vpn::new(9)).unwrap();
/// assert_eq!(pm.owner(f), Some(Vpn::new(9)));
/// pm.free(f);
/// assert_eq!(pm.owner(f), None);
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    frames: Vec<FrameState>,
    free: Vec<Pfn>,
    wired_count: usize,
}

impl PhysMemory {
    /// Creates a pool with every frame free.
    pub fn new(size: MemSize) -> Self {
        let n = size.frames() as usize;
        PhysMemory {
            frames: vec![FrameState::Free; n],
            // LIFO free list: pop from the high end first so wired kernel
            // pages cluster at high addresses like Sprite's.
            free: (0..n as u32).map(Pfn::new).collect(),
            wired_count: 0,
        }
    }

    /// Total number of frames in the machine.
    pub fn total_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of frames currently on the free list.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Number of wired frames.
    pub fn wired_frames(&self) -> usize {
        self.wired_count
    }

    /// Number of frames holding replaceable virtual pages.
    pub fn in_use_frames(&self) -> usize {
        self.frames.len() - self.free.len() - self.wired_count
    }

    /// Allocates a frame for virtual page `vpn`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoFreeFrames`] when the free list is empty; the
    /// caller (the page daemon) must reclaim a page first.
    pub fn allocate(&mut self, vpn: Vpn) -> Result<Pfn> {
        let pfn = self.free.pop().ok_or(Error::NoFreeFrames)?;
        self.frames[pfn.index()] = FrameState::InUse(vpn);
        Ok(pfn)
    }

    /// Allocates a wired frame that will never be reclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoFreeFrames`] when memory is exhausted.
    pub fn allocate_wired(&mut self) -> Result<Pfn> {
        let pfn = self.free.pop().ok_or(Error::NoFreeFrames)?;
        self.frames[pfn.index()] = FrameState::Wired;
        self.wired_count += 1;
        Ok(pfn)
    }

    /// Returns a frame to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the frame is wired or already free — both indicate a VM
    /// accounting bug, not a recoverable condition.
    pub fn free(&mut self, pfn: Pfn) {
        match self.frames[pfn.index()] {
            FrameState::InUse(_) => {
                self.frames[pfn.index()] = FrameState::Free;
                self.free.push(pfn);
            }
            FrameState::Wired => panic!("cannot free wired frame {pfn}"),
            FrameState::Free => panic!("double free of frame {pfn}"),
        }
    }

    /// Reassigns an in-use frame to a new virtual page (free-list reuse:
    /// the previous page's data is overwritten).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not in use.
    pub fn reassign(&mut self, pfn: Pfn, vpn: Vpn) {
        match self.frames[pfn.index()] {
            FrameState::InUse(_) => self.frames[pfn.index()] = FrameState::InUse(vpn),
            other => panic!("cannot reassign frame {pfn} in state {other:?}"),
        }
    }

    /// Returns the virtual page held by a frame, if it holds one.
    pub fn owner(&self, pfn: Pfn) -> Option<Vpn> {
        match self.frames[pfn.index()] {
            FrameState::InUse(vpn) => Some(vpn),
            _ => None,
        }
    }

    /// Returns the state of a frame.
    pub fn state(&self, pfn: Pfn) -> FrameState {
        self.frames[pfn.index()]
    }

    /// Iterates over `(pfn, vpn)` pairs for all in-use frames.
    pub fn iter_in_use(&self) -> impl Iterator<Item = (Pfn, Vpn)> + '_ {
        self.frames.iter().enumerate().filter_map(|(i, s)| match s {
            FrameState::InUse(vpn) => Some((Pfn::new(i as u32), *vpn)),
            _ => None,
        })
    }
}

impl fmt::Display for PhysMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phys: {} frames ({} free, {} wired, {} in use)",
            self.total_frames(),
            self.free_frames(),
            self.wired_frames(),
            self.in_use_frames()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_pool_is_all_free() {
        let pm = PhysMemory::new(MemSize::MB6);
        assert_eq!(pm.total_frames(), 1536);
        assert_eq!(pm.free_frames(), 1536);
        assert_eq!(pm.wired_frames(), 0);
        assert_eq!(pm.in_use_frames(), 0);
    }

    #[test]
    fn allocate_and_free_cycle() {
        let mut pm = PhysMemory::new(MemSize::MB5);
        let a = pm.allocate(Vpn::new(1)).unwrap();
        let b = pm.allocate(Vpn::new(2)).unwrap();
        assert_ne!(a, b);
        assert_eq!(pm.in_use_frames(), 2);
        pm.free(a);
        assert_eq!(pm.free_frames(), 1279);
        // LIFO: the freed frame comes back first.
        let c = pm.allocate(Vpn::new(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn exhaustion_returns_error() {
        let mut pm = PhysMemory::new(MemSize::new(1));
        for i in 0..pm.total_frames() {
            pm.allocate(Vpn::new(i as u64)).unwrap();
        }
        assert_eq!(pm.allocate(Vpn::new(999)), Err(Error::NoFreeFrames));
    }

    #[test]
    fn wired_frames_are_tracked() {
        let mut pm = PhysMemory::new(MemSize::new(1));
        let w = pm.allocate_wired().unwrap();
        assert_eq!(pm.state(w), FrameState::Wired);
        assert_eq!(pm.wired_frames(), 1);
        assert_eq!(pm.owner(w), None);
    }

    #[test]
    #[should_panic(expected = "wired")]
    fn freeing_wired_frame_panics() {
        let mut pm = PhysMemory::new(MemSize::new(1));
        let w = pm.allocate_wired().unwrap();
        pm.free(w);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMemory::new(MemSize::new(1));
        let a = pm.allocate(Vpn::new(1)).unwrap();
        pm.free(a);
        pm.free(a);
    }

    #[test]
    fn iter_in_use_lists_owners() {
        let mut pm = PhysMemory::new(MemSize::new(1));
        let a = pm.allocate(Vpn::new(10)).unwrap();
        let _w = pm.allocate_wired().unwrap();
        let b = pm.allocate(Vpn::new(20)).unwrap();
        let mut pairs: Vec<_> = pm.iter_in_use().collect();
        pairs.sort_by_key(|(_, v)| v.index());
        assert_eq!(pairs, vec![(a, Vpn::new(10)), (b, Vpn::new(20))]);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut pm = PhysMemory::new(MemSize::new(2));
        let total = pm.total_frames();
        let mut held = Vec::new();
        for i in 0..100 {
            held.push(pm.allocate(Vpn::new(i)).unwrap());
        }
        for _ in 0..10 {
            pm.allocate_wired().unwrap();
        }
        for pfn in held.drain(..50) {
            pm.free(pfn);
        }
        assert_eq!(
            pm.free_frames() + pm.wired_frames() + pm.in_use_frames(),
            total
        );
        assert_eq!(pm.in_use_frames(), 50);
        assert_eq!(pm.wired_frames(), 10);
    }
}
