//! Randomized tests for the memory substrate, driven by the
//! repository's deterministic [`SmallRng`] instead of an external
//! property-testing framework.

use spur_mem::pagetable::{PageTable, PTES_PER_PAGE};
use spur_mem::phys::PhysMemory;
use spur_mem::pte::Pte;
use spur_types::rng::SmallRng;
use spur_types::{MemSize, Pfn, Protection, Vpn};

/// The raw PTE word is a faithful round-trip encoding of all fields.
#[test]
fn pte_raw_round_trip() {
    let mut rng = SmallRng::seed_from_u64(0x4e40_0001);
    for _ in 0..512 {
        let pfn = rng.random_range(0u32..(1 << 20));
        let prot = rng.random_range(0u8..4);
        let c: bool = rng.random();
        let k: bool = rng.random();
        let d: bool = rng.random();
        let r: bool = rng.random();
        let v: bool = rng.random();

        let mut pte = Pte::INVALID;
        pte.set_pfn(Pfn::new(pfn));
        pte.set_protection(Protection::from_bits(prot));
        pte.set_coherent(c);
        pte.set_cacheable(k);
        pte.set_dirty(d);
        pte.set_referenced(r);
        pte.set_valid(v);

        let back = Pte::from_raw(pte.raw());
        assert_eq!(back.pfn(), Pfn::new(pfn));
        assert_eq!(back.protection().bits(), prot);
        assert_eq!(back.coherent(), c);
        assert_eq!(back.cacheable(), k);
        assert_eq!(back.dirty(), d);
        assert_eq!(back.referenced(), r);
        assert_eq!(back.valid(), v);
    }
}

/// PTE virtual addresses are unique and invertible.
#[test]
fn pte_vaddr_is_injective() {
    let mut rng = SmallRng::seed_from_u64(0x4e40_0002);
    let pt = PageTable::new();
    for _ in 0..512 {
        let a = rng.random_range(0u64..(1 << 26));
        let b = rng.random_range(0u64..(1 << 26));
        let va = pt.pte_vaddr(Vpn::new(a));
        let vb = pt.pte_vaddr(Vpn::new(b));
        assert_eq!(va == vb, a == b);
        assert_eq!(pt.vpn_for_pte_vaddr(va), Some(Vpn::new(a)));
    }
}

/// Consecutive VPNs share a page-table page exactly when they fall in
/// the same 1024-entry chunk.
#[test]
fn pte_page_grouping() {
    let mut rng = SmallRng::seed_from_u64(0x4e40_0003);
    let pt = PageTable::new();
    for _ in 0..512 {
        let vpn = rng.random_range(0u64..(1 << 26) - 1);
        let same = pt.pte_page_vpn(Vpn::new(vpn)) == pt.pte_page_vpn(Vpn::new(vpn + 1));
        assert_eq!(same, !(vpn + 1).is_multiple_of(PTES_PER_PAGE));
    }
    // The chunk boundary itself, exactly.
    let edge = PTES_PER_PAGE - 1;
    assert_ne!(
        pt.pte_page_vpn(Vpn::new(edge)),
        pt.pte_page_vpn(Vpn::new(edge + 1))
    );
}

/// Frame accounting is conserved under arbitrary allocate/free
/// sequences.
#[test]
fn frame_accounting_conserved() {
    let mut rng = SmallRng::seed_from_u64(0x4e40_0004);
    for _ in 0..32 {
        let n_ops = rng.random_range(1usize..200);
        let mut pm = PhysMemory::new(MemSize::new(1));
        let total = pm.total_frames();
        let mut held: Vec<Pfn> = Vec::new();
        let mut next_vpn = 0u64;
        for _ in 0..n_ops {
            let alloc: bool = rng.random();
            if alloc {
                if let Ok(pfn) = pm.allocate(Vpn::new(next_vpn)) {
                    held.push(pfn);
                    next_vpn += 1;
                }
            } else if let Some(pfn) = held.pop() {
                pm.free(pfn);
            }
            assert_eq!(
                pm.free_frames() + pm.in_use_frames() + pm.wired_frames(),
                total
            );
            assert_eq!(pm.in_use_frames(), held.len());
        }
        // Every held frame still knows its owner.
        for pfn in &held {
            assert!(pm.owner(*pfn).is_some());
        }
    }
}
