//! Property-based tests for the memory substrate.

use proptest::prelude::*;
use spur_mem::pagetable::{PageTable, PTES_PER_PAGE};
use spur_mem::phys::PhysMemory;
use spur_mem::pte::Pte;
use spur_types::{MemSize, Pfn, Protection, Vpn};

proptest! {
    /// The raw PTE word is a faithful round-trip encoding of all fields.
    #[test]
    fn pte_raw_round_trip(
        pfn in 0u32..(1 << 20),
        prot in 0u8..4,
        c in any::<bool>(),
        k in any::<bool>(),
        d in any::<bool>(),
        r in any::<bool>(),
        v in any::<bool>(),
    ) {
        let mut pte = Pte::INVALID;
        pte.set_pfn(Pfn::new(pfn));
        pte.set_protection(Protection::from_bits(prot));
        pte.set_coherent(c);
        pte.set_cacheable(k);
        pte.set_dirty(d);
        pte.set_referenced(r);
        pte.set_valid(v);

        let back = Pte::from_raw(pte.raw());
        prop_assert_eq!(back.pfn(), Pfn::new(pfn));
        prop_assert_eq!(back.protection().bits(), prot);
        prop_assert_eq!(back.coherent(), c);
        prop_assert_eq!(back.cacheable(), k);
        prop_assert_eq!(back.dirty(), d);
        prop_assert_eq!(back.referenced(), r);
        prop_assert_eq!(back.valid(), v);
    }

    /// PTE virtual addresses are unique and invertible.
    #[test]
    fn pte_vaddr_is_injective(a in 0u64..(1 << 26), b in 0u64..(1 << 26)) {
        let pt = PageTable::new();
        let va = pt.pte_vaddr(Vpn::new(a));
        let vb = pt.pte_vaddr(Vpn::new(b));
        prop_assert_eq!(va == vb, a == b);
        prop_assert_eq!(pt.vpn_for_pte_vaddr(va), Some(Vpn::new(a)));
    }

    /// Consecutive VPNs share a page-table page exactly when they fall in
    /// the same 1024-entry chunk.
    #[test]
    fn pte_page_grouping(vpn in 0u64..(1 << 26) - 1) {
        let pt = PageTable::new();
        let same = pt.pte_page_vpn(Vpn::new(vpn)) == pt.pte_page_vpn(Vpn::new(vpn + 1));
        prop_assert_eq!(same, (vpn + 1) % PTES_PER_PAGE != 0);
    }

    /// Frame accounting is conserved under arbitrary allocate/free
    /// sequences.
    #[test]
    fn frame_accounting_conserved(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut pm = PhysMemory::new(MemSize::new(1));
        let total = pm.total_frames();
        let mut held: Vec<Pfn> = Vec::new();
        let mut next_vpn = 0u64;
        for alloc in ops {
            if alloc {
                if let Ok(pfn) = pm.allocate(Vpn::new(next_vpn)) {
                    held.push(pfn);
                    next_vpn += 1;
                }
            } else if let Some(pfn) = held.pop() {
                pm.free(pfn);
            }
            prop_assert_eq!(
                pm.free_frames() + pm.in_use_frames() + pm.wired_frames(),
                total
            );
            prop_assert_eq!(pm.in_use_frames(), held.len());
        }
        // Every held frame still knows its owner.
        for pfn in &held {
            prop_assert!(pm.owner(*pfn).is_some());
        }
    }
}
