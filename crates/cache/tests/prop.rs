//! Randomized tests: direct-mapping laws and coherence safety, driven
//! by the repository's deterministic [`SmallRng`] instead of an
//! external property-testing framework.

use spur_cache::cache::VirtualCache;
use spur_cache::coherence::Bus;
use spur_types::rng::SmallRng;
use spur_types::{BlockNum, GlobalAddr, Protection, Vpn, CACHE_LINES};

/// Two blocks conflict exactly when their indices agree modulo the
/// line count.
#[test]
fn direct_map_index_law() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_0001);
    let c = VirtualCache::prototype();
    for _ in 0..512 {
        let a = rng.random_range(0u64..(1 << 33));
        let b = rng.random_range(0u64..(1 << 33));
        let ia = c.index_of(BlockNum::new(a));
        let ib = c.index_of(BlockNum::new(b));
        assert_eq!(ia == ib, a % CACHE_LINES == b % CACHE_LINES);
    }
}

/// After filling any block, probing it hits, and probing any other
/// block mapping to the same line misses.
#[test]
fn fill_probe_law() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_0002);
    for _ in 0..256 {
        let raw = rng.random_range(0u64..(1 << 38));
        let delta = rng.random_range(1u64..32);
        let mut c = VirtualCache::prototype();
        let a = GlobalAddr::new(raw).block_aligned();
        c.fill_for_read(a, Protection::ReadWrite, false);
        assert!(c.probe(a).hit);
        // An address one cache-size away maps to the same line but a
        // different tag.
        let conflict = a.wrapping_add(delta * 128 * 1024);
        if conflict.block() != a.block() {
            assert!(!c.probe(conflict).hit);
            assert_eq!(c.index_of(conflict.block()), c.index_of(a.block()));
        }
    }
}

/// Occupancy never exceeds capacity, and equals the number of distinct
/// lines filled.
#[test]
fn occupancy_bounds() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_0003);
    for _ in 0..32 {
        let n = rng.random_range(1usize..300);
        let mut c = VirtualCache::prototype();
        let mut lines = std::collections::HashSet::new();
        for _ in 0..n {
            let raw = rng.random_range(0u64..(1 << 30));
            let a = GlobalAddr::new(raw).block_aligned();
            if !c.probe(a).hit {
                c.fill_for_read(a, Protection::ReadWrite, false);
            }
            lines.insert(c.index_of(a.block()));
            assert!(c.occupancy() <= c.num_lines());
        }
        assert_eq!(c.occupancy(), lines.len());
    }
}

/// Tag-checked page flush removes exactly the page's blocks; no block
/// of any other page is disturbed.
#[test]
fn tag_checked_flush_is_precise() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_0004);
    for _ in 0..32 {
        let page = rng.random_range(0u64..(1 << 20));
        let n_fills = rng.random_range(1usize..100);
        let mut c = VirtualCache::prototype();
        let target = Vpn::new(page);
        for _ in 0..n_fills {
            let p = rng.random_range(0u64..(1 << 22));
            let b = rng.random_range(0u64..128);
            let addr = Vpn::new(p).block(b).base_addr();
            if !c.probe(addr).hit {
                c.fill_for_read(addr, Protection::ReadWrite, false);
            }
        }
        let others: Vec<_> = c
            .iter_valid()
            .filter(|(_, l)| l.block.vpn() != target)
            .map(|(_, l)| l.block)
            .collect();
        c.flush_page_tag_checked(target);
        assert_eq!(c.resident_blocks_of_page(target), 0);
        for b in others {
            assert!(c.find(b).is_some(), "non-target block {b} was flushed");
        }
    }
}

/// The Berkeley protocol safety invariant holds under arbitrary
/// interleavings of reads and writes from multiple processors.
#[test]
fn coherence_safety_under_random_ops() {
    let mut rng = SmallRng::seed_from_u64(0xcac4_0005);
    for _ in 0..32 {
        let n_ops = rng.random_range(1usize..200);
        let mut bus = Bus::new(3);
        for _ in 0..n_ops {
            let cpu = rng.random_range(0usize..3);
            let block = rng.random_range(0u64..64);
            let is_write: bool = rng.random();
            let addr = GlobalAddr::new(block * 32);
            if is_write {
                bus.processor_write(cpu, addr, Protection::ReadWrite, false);
            } else {
                bus.processor_read(cpu, addr, Protection::ReadWrite, false);
            }
            if let Err(msg) = bus.check_invariants() {
                panic!("{msg}");
            }
        }
    }
}

mod assoc_props {
    use spur_cache::assoc::SetAssocCache;
    use spur_cache::cache::VirtualCache;
    use spur_types::rng::SmallRng;
    use spur_types::{GlobalAddr, Protection};

    /// A 1-way set-associative cache and the direct-mapped cache make
    /// identical hit/miss decisions on any block-aligned stream.
    #[test]
    fn one_way_equals_direct_map() {
        let mut rng = SmallRng::seed_from_u64(0xcac4_0006);
        for _ in 0..16 {
            let n = rng.random_range(1usize..300);
            let mut direct = VirtualCache::prototype();
            let mut assoc = SetAssocCache::new(4096, 1);
            for _ in 0..n {
                let raw = rng.random_range(0u64..(1 << 26));
                let a = GlobalAddr::new(raw << 5);
                let hit_d = direct.probe(a).hit;
                let hit_a = assoc.probe(a);
                assert_eq!(hit_d, hit_a, "divergence at {a}");
                if !hit_d {
                    direct.fill_for_read(a, Protection::ReadWrite, false);
                    assoc.fill(a, Protection::ReadWrite, false, false);
                }
            }
        }
    }

    /// Occupancy invariants hold for any associativity: never exceeds
    /// capacity, and a fill after a miss makes the block resident.
    #[test]
    fn assoc_fill_probe_law() {
        let mut rng = SmallRng::seed_from_u64(0xcac4_0007);
        for _ in 0..16 {
            let n = rng.random_range(1usize..200);
            let ways = 1usize << rng.random_range(0u32..4);
            let mut cache = SetAssocCache::new(1024, ways);
            for _ in 0..n {
                let raw = rng.random_range(0u64..(1 << 20));
                let a = GlobalAddr::new(raw << 5);
                if !cache.probe(a) {
                    cache.fill(a, Protection::ReadWrite, false, false);
                }
                assert!(cache.probe(a), "block vanished after fill");
                assert!(cache.occupancy() <= cache.num_lines());
            }
        }
    }
}

mod tlb_props {
    use spur_cache::tlb::Tlb;
    use spur_types::rng::SmallRng;
    use spur_types::{Pfn, Protection, Vpn};

    /// The TLB never exceeds capacity, never loses a just-inserted
    /// entry, and hit/miss counters add up to probes.
    #[test]
    fn tlb_capacity_and_counter_laws() {
        let mut rng = SmallRng::seed_from_u64(0xcac4_0008);
        for _ in 0..32 {
            let n = rng.random_range(1usize..300);
            let cap = 1usize << rng.random_range(0u32..6);
            let mut tlb = Tlb::new(cap);
            let mut probes = 0u64;
            for _ in 0..n {
                let v = rng.random_range(0u64..64);
                let vpn = Vpn::new(v);
                probes += 1;
                if tlb.probe(vpn).is_none() {
                    tlb.insert(vpn, Pfn::new(v as u32), Protection::ReadWrite);
                    probes += 1;
                    assert!(tlb.probe(vpn).is_some(), "lost fresh entry");
                }
                assert!(tlb.len() <= cap);
                assert_eq!(tlb.hits() + tlb.misses(), probes);
            }
        }
    }
}
