//! Property-based tests: direct-mapping laws and coherence safety.

use proptest::prelude::*;
use spur_cache::cache::VirtualCache;
use spur_cache::coherence::Bus;
use spur_types::{BlockNum, GlobalAddr, Protection, Vpn, CACHE_LINES};

proptest! {
    /// Two blocks conflict exactly when their indices agree modulo the
    /// line count.
    #[test]
    fn direct_map_index_law(a in 0u64..(1 << 33), b in 0u64..(1 << 33)) {
        let c = VirtualCache::prototype();
        let ia = c.index_of(BlockNum::new(a));
        let ib = c.index_of(BlockNum::new(b));
        prop_assert_eq!(ia == ib, a % CACHE_LINES == b % CACHE_LINES);
    }

    /// After filling any block, probing it hits, and probing any other
    /// block mapping to the same line misses.
    #[test]
    fn fill_probe_law(raw in 0u64..(1 << 38), delta in 1u64..32) {
        let mut c = VirtualCache::prototype();
        let a = GlobalAddr::new(raw).block_aligned();
        c.fill_for_read(a, Protection::ReadWrite, false);
        prop_assert!(c.probe(a).hit);
        // An address one cache-size away maps to the same line but a
        // different tag.
        let conflict = a.wrapping_add(delta * 128 * 1024);
        if conflict.block() != a.block() {
            prop_assert!(!c.probe(conflict).hit);
            prop_assert_eq!(c.index_of(conflict.block()), c.index_of(a.block()));
        }
    }

    /// Occupancy never exceeds capacity, and equals the number of distinct
    /// lines filled.
    #[test]
    fn occupancy_bounds(addrs in prop::collection::vec(0u64..(1 << 30), 1..300)) {
        let mut c = VirtualCache::prototype();
        let mut lines = std::collections::HashSet::new();
        for raw in addrs {
            let a = GlobalAddr::new(raw).block_aligned();
            if !c.probe(a).hit {
                c.fill_for_read(a, Protection::ReadWrite, false);
            }
            lines.insert(c.index_of(a.block()));
            prop_assert!(c.occupancy() <= c.num_lines());
        }
        prop_assert_eq!(c.occupancy(), lines.len());
    }

    /// Tag-checked page flush removes exactly the page's blocks; no block
    /// of any other page is disturbed.
    #[test]
    fn tag_checked_flush_is_precise(
        page in 0u64..(1 << 20),
        fills in prop::collection::vec((0u64..(1 << 22), 0u64..128), 1..100),
    ) {
        let mut c = VirtualCache::prototype();
        let target = Vpn::new(page);
        for (p, b) in fills {
            let addr = Vpn::new(p).block(b).base_addr();
            if !c.probe(addr).hit {
                c.fill_for_read(addr, Protection::ReadWrite, false);
            }
        }
        let others: Vec<_> = c
            .iter_valid()
            .filter(|(_, l)| l.block.vpn() != target)
            .map(|(_, l)| l.block)
            .collect();
        c.flush_page_tag_checked(target);
        prop_assert_eq!(c.resident_blocks_of_page(target), 0);
        for b in others {
            prop_assert!(c.find(b).is_some(), "non-target block {b} was flushed");
        }
    }

    /// The Berkeley protocol safety invariant holds under arbitrary
    /// interleavings of reads and writes from multiple processors.
    #[test]
    fn coherence_safety_under_random_ops(
        ops in prop::collection::vec((0usize..3, 0u64..64, any::<bool>()), 1..200),
    ) {
        let mut bus = Bus::new(3);
        for (cpu, block, is_write) in ops {
            let addr = GlobalAddr::new(block * 32);
            if is_write {
                bus.processor_write(cpu, addr, Protection::ReadWrite, false);
            } else {
                bus.processor_read(cpu, addr, Protection::ReadWrite, false);
            }
            if let Err(msg) = bus.check_invariants() {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}

mod assoc_props {
    use proptest::prelude::*;
    use spur_cache::assoc::SetAssocCache;
    use spur_cache::cache::VirtualCache;
    use spur_types::{GlobalAddr, Protection};

    proptest! {
        /// A 1-way set-associative cache and the direct-mapped cache make
        /// identical hit/miss decisions on any block-aligned stream.
        #[test]
        fn one_way_equals_direct_map(
            addrs in prop::collection::vec(0u64..(1 << 26), 1..300),
        ) {
            let mut direct = VirtualCache::prototype();
            let mut assoc = SetAssocCache::new(4096, 1);
            for raw in addrs {
                let a = GlobalAddr::new(raw << 5);
                let hit_d = direct.probe(a).hit;
                let hit_a = assoc.probe(a);
                prop_assert_eq!(hit_d, hit_a, "divergence at {}", a);
                if !hit_d {
                    direct.fill_for_read(a, Protection::ReadWrite, false);
                    assoc.fill(a, Protection::ReadWrite, false, false);
                }
            }
        }

        /// Associativity never *hurts* on an inclusion-friendly stream:
        /// total misses with n ways <= misses with 1 way for LRU within
        /// fixed total capacity... is NOT generally true (Belady), but
        /// occupancy invariants are: never exceeds capacity, and a fill
        /// after a miss makes the block resident.
        #[test]
        fn assoc_fill_probe_law(
            addrs in prop::collection::vec(0u64..(1 << 20), 1..200),
            ways_pow in 0u32..4,
        ) {
            let ways = 1usize << ways_pow;
            let mut cache = SetAssocCache::new(1024, ways);
            for raw in addrs {
                let a = GlobalAddr::new(raw << 5);
                if !cache.probe(a) {
                    cache.fill(a, Protection::ReadWrite, false, false);
                }
                prop_assert!(cache.probe(a), "block vanished after fill");
                prop_assert!(cache.occupancy() <= cache.num_lines());
            }
        }
    }
}

mod tlb_props {
    use proptest::prelude::*;
    use spur_cache::tlb::Tlb;
    use spur_types::{Pfn, Protection, Vpn};

    proptest! {
        /// The TLB never exceeds capacity, never loses a just-inserted
        /// entry, and hit/miss counters add up to probes.
        #[test]
        fn tlb_capacity_and_counter_laws(
            vpns in prop::collection::vec(0u64..64, 1..300),
            cap_pow in 0u32..6,
        ) {
            let cap = 1usize << cap_pow;
            let mut tlb = Tlb::new(cap);
            let mut probes = 0u64;
            for v in vpns {
                let vpn = Vpn::new(v);
                probes += 1;
                if tlb.probe(vpn).is_none() {
                    tlb.insert(vpn, Pfn::new(v as u32), Protection::ReadWrite);
                    probes += 1;
                    prop_assert!(tlb.probe(vpn).is_some(), "lost fresh entry");
                }
                prop_assert!(tlb.len() <= cap);
                prop_assert_eq!(tlb.hits() + tlb.misses(), probes);
            }
        }
    }
}
