//! A set-associative variant of the virtual cache, for the road not
//! taken.
//!
//! Section 1 notes that "the Sun-3 architecture prevents synonyms by
//! restricting the cache to be direct-mapped, and restricting virtual
//! address synonyms (aliases) to be equal modulo the cache size" — in a
//! direct-mapped cache two synonymous addresses then collide on the same
//! line and can never coexist. SPUR instead prevents synonyms in
//! *software* (one global address per datum), which frees the hardware
//! to use associativity. This module provides that hypothetical n-way
//! SPUR cache so the choice can be studied, and a demonstration of why
//! the Sun-3 could not have done the same (see
//! [`synonym_hazard_demo`]).

use spur_types::{BlockNum, GlobalAddr, Protection, Vpn, BLOCKS_PER_PAGE};

use crate::cache::{EvictedBlock, FlushStats};
use crate::coherence::CoherencyState;
use crate::line::CacheLine;

/// An n-way set-associative virtually-addressed cache with LRU
/// replacement within each set.
///
/// ```
/// use spur_cache::assoc::SetAssocCache;
/// use spur_types::{GlobalAddr, Protection};
///
/// let mut c = SetAssocCache::new(4096, 2); // 128 KB, 2-way
/// let a = GlobalAddr::new(0x0_0040);
/// let b = GlobalAddr::new(0x2_0040); // conflicts in a direct map
/// c.fill(a, Protection::ReadWrite, false, false);
/// c.fill(b, Protection::ReadWrite, false, false);
/// // Both survive: associativity absorbs the conflict.
/// assert!(c.probe(a));
/// assert!(c.probe(b));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets × ways` lines, row-major by set.
    lines: Vec<CacheLine>,
    /// Per-line LRU stamps, same layout.
    stamps: Vec<u64>,
    sets: u64,
    ways: usize,
    clock: u64,
}

impl SetAssocCache {
    /// Creates a cache with `total_lines` lines organized `ways`-wide.
    ///
    /// # Panics
    ///
    /// Panics unless `total_lines` is a power of two divisible by `ways`
    /// (itself a nonzero power of two).
    pub fn new(total_lines: usize, ways: usize) -> Self {
        assert!(
            total_lines.is_power_of_two(),
            "line count must be a power of two"
        );
        assert!(
            ways.is_power_of_two() && ways > 0,
            "ways must be a nonzero power of two"
        );
        assert!(total_lines.is_multiple_of(ways) && total_lines >= ways);
        SetAssocCache {
            lines: vec![CacheLine::empty(); total_lines],
            stamps: vec![0; total_lines],
            sets: (total_lines / ways) as u64,
            ways,
            clock: 0,
        }
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_of(&self, block: BlockNum) -> usize {
        (block.index() % self.sets) as usize
    }

    fn slot_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.ways..(set + 1) * self.ways
    }

    /// Is `addr`'s block cached? Updates LRU recency on a hit.
    pub fn probe(&mut self, addr: GlobalAddr) -> bool {
        let block = addr.block();
        let set = self.set_of(block);
        self.clock += 1;
        for i in self.slot_range(set) {
            if self.lines[i].matches(block) {
                self.stamps[i] = self.clock;
                return true;
            }
        }
        false
    }

    /// Read-only lookup of a cached line.
    pub fn peek(&self, addr: GlobalAddr) -> Option<&CacheLine> {
        let block = addr.block();
        let set = self.set_of(block);
        self.lines[self.slot_range(set)]
            .iter()
            .find(|l| l.matches(block))
    }

    /// Fills `addr`'s block, evicting the set's LRU line if full.
    pub fn fill(
        &mut self,
        addr: GlobalAddr,
        prot: Protection,
        page_dirty: bool,
        by_write: bool,
    ) -> Option<EvictedBlock> {
        let block = addr.block();
        let set = self.set_of(block);
        self.clock += 1;
        debug_assert!(
            !self.lines[self.slot_range(set)]
                .iter()
                .any(|l| l.matches(block)),
            "filling an already-cached block"
        );
        // Choose an invalid slot, else the LRU one.
        let slot = self
            .slot_range(set)
            .find(|&i| !self.lines[i].valid)
            .unwrap_or_else(|| {
                self.slot_range(set)
                    .min_by_key(|&i| self.stamps[i])
                    .expect("sets are nonempty")
            });
        let evicted = self.lines[slot].valid.then(|| EvictedBlock {
            block: self.lines[slot].block,
            block_dirty: self.lines[slot].block_dirty,
        });
        self.lines[slot] = CacheLine {
            valid: true,
            block,
            prot,
            page_dirty,
            block_dirty: by_write,
            state: if by_write {
                CoherencyState::OwnedExclusive
            } else {
                CoherencyState::UnOwned
            },
            filled_by_write: by_write,
        };
        self.stamps[slot] = self.clock;
        evicted
    }

    /// Tag-checked page flush (cost structure as in the direct map: one
    /// probe per block of the page, per way).
    pub fn flush_page(&mut self, vpn: Vpn) -> FlushStats {
        let mut stats = FlushStats::default();
        for i in 0..BLOCKS_PER_PAGE {
            let block = vpn.block(i);
            let set = self.set_of(block);
            for slot in self.slot_range(set) {
                stats.probed += 1;
                if self.lines[slot].matches(block) {
                    stats.flushed += 1;
                    stats.written_back += u64::from(self.lines[slot].block_dirty);
                    self.lines[slot] = CacheLine::empty();
                }
            }
        }
        stats
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

/// Demonstrates the synonym hazard that forced the Sun-3's hand.
///
/// Sun-3 rule: aliases must be equal modulo the cache size, so that in a
/// *direct-mapped* cache both names map to the same line and can never
/// coexist. Under associativity the same two names land in the same
/// *set* but different *ways* — two copies of one datum, and a write to
/// one leaves the other stale. SPUR is immune because its OS gives the
/// datum a single global address.
///
/// Returns `(copies_in_direct_map, copies_in_two_way)` for one synonym
/// pair; the caller (tests, the ablation binary) asserts `(1, 2)`.
pub fn synonym_hazard_demo() -> (usize, usize) {
    use crate::cache::VirtualCache;

    // Two virtual names for the same datum, equal modulo the 128 KB
    // cache size — legal aliases under the Sun-3 rule.
    let name_a = GlobalAddr::new(0x1_0040);
    let name_b = GlobalAddr::new(0x1_0040 + 128 * 1024);

    // Direct map: the second name displaces the first. One copy.
    let mut direct = VirtualCache::prototype();
    direct.fill_for_read(name_a, Protection::ReadWrite, false);
    direct.fill_for_read(name_b, Protection::ReadWrite, false);
    let direct_copies =
        usize::from(direct.probe(name_a).hit) + usize::from(direct.probe(name_b).hit);

    // Two-way: both names stick. Two incoherent copies of one datum.
    let mut assoc = SetAssocCache::new(4096, 2);
    assoc.fill(name_a, Protection::ReadWrite, false, false);
    assoc.fill(name_b, Protection::ReadWrite, false, false);
    let assoc_copies = usize::from(assoc.probe(name_a)) + usize::from(assoc.probe(name_b));

    (direct_copies, assoc_copies)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW: Protection = Protection::ReadWrite;

    #[test]
    fn conflicting_blocks_coexist_up_to_associativity() {
        let mut c = SetAssocCache::new(256, 2);
        // Three blocks mapping to the same set of a 128-set cache.
        let a = GlobalAddr::new(128 * 32);
        let b = GlobalAddr::new(2 * 128 * 32 + 128 * 32);
        let d = GlobalAddr::new(4 * 128 * 32 + 128 * 32);
        c.fill(a, RW, false, false);
        c.fill(b, RW, false, false);
        assert!(c.probe(a) && c.probe(b), "2-way holds 2 conflicting blocks");
        // Touch a so b becomes LRU; the third fill evicts b.
        c.probe(a);
        let ev = c.fill(d, RW, false, true).expect("set is full");
        assert_eq!(ev.block, b.block());
        assert!(c.probe(a) && c.probe(d) && !c.probe(b));
    }

    #[test]
    fn fill_prefers_invalid_slots() {
        let mut c = SetAssocCache::new(256, 4);
        let base = 128 * 32;
        for i in 0..4u64 {
            assert!(
                c.fill(GlobalAddr::new(base + i * 128 * 32), RW, false, false)
                    .is_none(),
                "no eviction while invalid ways remain"
            );
        }
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn flush_page_clears_every_way() {
        let mut c = SetAssocCache::new(4096, 4);
        let vpn = Vpn::new(12);
        for i in 0..32 {
            c.fill(vpn.block(i).base_addr(), RW, true, i % 2 == 0);
        }
        let stats = c.flush_page(vpn);
        assert_eq!(stats.flushed, 32);
        assert_eq!(stats.written_back, 16);
        assert_eq!(stats.probed, 128 * 4, "one probe per block per way");
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn one_way_behaves_like_a_direct_map() {
        let mut c = SetAssocCache::new(4096, 1);
        let a = GlobalAddr::new(0x0_0040);
        let b = GlobalAddr::new(0x2_0040);
        c.fill(a, RW, false, false);
        let ev = c.fill(b, RW, false, false).expect("direct conflict evicts");
        assert_eq!(ev.block, a.block());
    }

    #[test]
    fn sun3_synonym_hazard() {
        let (direct, assoc) = synonym_hazard_demo();
        assert_eq!(direct, 1, "direct map: aliases displace each other");
        assert_eq!(
            assoc, 2,
            "2-way: two live copies of one datum (incoherent!)"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = SetAssocCache::new(300, 2);
    }
}
