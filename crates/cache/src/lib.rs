//! SPUR's 128 KB direct-mapped virtual-address cache.
//!
//! The cache is the hardware half of the paper: it is indexed and tagged
//! with *global virtual* addresses, so hits never consult translation
//! information — and therefore the protection and page-dirty information a
//! line was filled with can go stale relative to the PTE, which is the root
//! cause of the paper's excess-fault phenomenon (Figure 3.1).
//!
//! Modules:
//!
//! * [`line`](mod@line) — the cache line (block frame) format of Figure 3.2(b):
//!   virtual tag, two-bit protection copy, *page* dirty copy, *block* dirty
//!   bit, and two-bit coherency state;
//! * [`cache`] — the direct-mapped cache proper: probe/fill/evict, block
//!   flush, tag-checked page flush, and SPUR's actual tag-*blind* page
//!   flush;
//! * [`translate`] — in-cache address translation: on a miss the controller
//!   looks for the first-level PTE *in the cache*, falling back to the
//!   wired second-level table;
//! * [`coherence`] — the Berkeley Ownership protocol on a snooping bus
//!   (present on the prototype; the paper's measurements are uniprocessor);
//! * [`counters`] — the cache controller's 16 × 32-bit performance
//!   counters with their mode register.
//!
//! # Example
//!
//! ```
//! use spur_cache::cache::VirtualCache;
//! use spur_types::{GlobalAddr, Protection};
//!
//! let mut cache = VirtualCache::prototype();
//! let addr = GlobalAddr::new(0x4_2000);
//! assert!(!cache.probe(addr).hit);
//!
//! cache.fill_for_read(addr, Protection::ReadOnly, false);
//! assert!(cache.probe(addr).hit);
//! ```

pub mod assoc;
pub mod cache;
pub mod coherence;
pub mod counters;
pub mod line;
pub mod tlb;
pub mod translate;

pub use assoc::SetAssocCache;
pub use cache::{EvictedBlock, FlushStats, ProbeResult, VirtualCache};
pub use coherence::{Bus, BusOp, CoherenceMsg, CoherencyState, SnoopResponse};
pub use counters::{CounterEvent, CounterMode, PerfCounters};
pub use line::{CacheLine, LineIndex};
pub use tlb::{Tlb, TlbEntry};
pub use translate::{InCacheTranslator, TranslationOutcome};
