//! In-cache address translation (Wood et al., ISCA 1986).
//!
//! SPUR has no TLB. When a reference misses in the cache, the controller
//! computes the *virtual* address of the corresponding first-level PTE
//! with a shift-and-concatenate circuit and looks for that PTE **in the
//! cache**, "essentially using it as a very large TLB." If the PTE misses
//! too, the controller consults the second-level page table, which is
//! wired down at well-known physical addresses, and fills the PTE block
//! into the cache — where it competes with instructions and data for the
//! line it maps to.

use spur_mem::pagetable::PageTable;
use spur_mem::pte::Pte;
use spur_obs::{EventKind, NoopRecorder, Recorder, SimEvent};
use spur_types::{CostParams, Cycles, GlobalAddr, Protection};

use crate::cache::{EvictedBlock, VirtualCache};
use crate::counters::{CounterEvent, PerfCounters};

/// What a translation attempt produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationOutcome {
    /// The PTE found (possibly invalid — a page fault for the caller to
    /// handle).
    pub pte: Pte,
    /// Whether the first-level PTE was found in the cache.
    pub pte_cache_hit: bool,
    /// Whether the wired second-level table had to be consulted.
    pub used_second_level: bool,
    /// Cycles the translation cost.
    pub cycles: Cycles,
    /// A data block displaced by filling the PTE block, if any.
    pub evicted_by_pte_fill: Option<EvictedBlock>,
}

/// The in-cache translation engine.
///
/// Stateless apart from its cost parameters; all state lives in the cache
/// and page table it operates on.
///
/// ```
/// use spur_cache::cache::VirtualCache;
/// use spur_cache::counters::PerfCounters;
/// use spur_cache::translate::InCacheTranslator;
/// use spur_mem::pagetable::PageTable;
/// use spur_mem::phys::PhysMemory;
/// use spur_mem::pte::Pte;
/// use spur_types::{CostParams, GlobalAddr, MemSize, Pfn, Protection, Vpn};
///
/// let mut cache = VirtualCache::prototype();
/// let mut pt = PageTable::new();
/// let mut phys = PhysMemory::new(MemSize::MB5);
/// let mut ctrs = PerfCounters::promiscuous();
/// let tr = InCacheTranslator::new(CostParams::paper());
///
/// let vpn = Vpn::new(0x42);
/// pt.ensure_second_level(vpn, &mut phys).unwrap();
/// pt.insert(vpn, Pte::resident(Pfn::new(7), Protection::ReadWrite));
///
/// let addr = GlobalAddr::new(vpn.base_addr().raw() + 0x10);
/// let first = tr.translate(addr, &mut cache, &pt, &mut ctrs);
/// assert!(!first.pte_cache_hit);           // cold cache
/// let second = tr.translate(addr, &mut cache, &pt, &mut ctrs);
/// assert!(second.pte_cache_hit);           // the PTE block is cached now
/// assert!(second.cycles < first.cycles);
/// ```
#[derive(Debug, Clone)]
pub struct InCacheTranslator {
    costs: CostParams,
}

impl InCacheTranslator {
    /// Creates a translator with the given cycle costs.
    pub fn new(costs: CostParams) -> Self {
        InCacheTranslator { costs }
    }

    /// The cost parameters in use.
    pub fn costs(&self) -> &CostParams {
        &self.costs
    }

    /// Translates `addr`, probing (and possibly filling) the cache for the
    /// first-level PTE.
    ///
    /// The returned PTE may be invalid; handling that page fault is the
    /// caller's (the VM system's) job. If the second-level table has no
    /// entry for the PTE's page — the OS never touched any nearby PTE —
    /// the outcome carries [`Pte::INVALID`].
    pub fn translate(
        &self,
        addr: GlobalAddr,
        cache: &mut VirtualCache,
        pt: &PageTable,
        counters: &mut PerfCounters,
    ) -> TranslationOutcome {
        self.translate_traced(addr, cache, pt, counters, &mut NoopRecorder, 0)
    }

    /// [`InCacheTranslator::translate`] with an event recorder attached.
    ///
    /// `cycle_base` is the simulated clock at the start of the
    /// translation; emitted event timestamps are offsets from it, so
    /// trace time is pure simulated time. Emits `PteCacheMiss` (the
    /// moment the probe fails) and `SecondLevelFetch` (completion of
    /// the wired fetch) — one trace event per corresponding counter
    /// record, which is what the reconciliation test checks.
    pub fn translate_traced(
        &self,
        addr: GlobalAddr,
        cache: &mut VirtualCache,
        pt: &PageTable,
        counters: &mut PerfCounters,
        recorder: &mut dyn Recorder,
        cycle_base: u64,
    ) -> TranslationOutcome {
        let vpn = addr.vpn();
        let pte_va = pt.pte_vaddr(vpn);
        counters.record(CounterEvent::PteProbe);

        let probe = cache.probe(pte_va);
        let mut cycles = Cycles::new(self.costs.pte_cached_check);
        if probe.hit {
            counters.record(CounterEvent::PteCacheHit);
            return TranslationOutcome {
                pte: pt.pte(vpn),
                pte_cache_hit: true,
                used_second_level: false,
                cycles,
                evicted_by_pte_fill: None,
            };
        }

        // First-level PTE missed: go to the wired second-level table.
        counters.record(CounterEvent::PteCacheMiss);
        recorder.emit(SimEvent {
            kind: EventKind::PteCacheMiss,
            cycle: cycle_base + cycles.raw(),
            page: vpn.index(),
            cost: 0,
            cpu: 0,
        });
        counters.record(CounterEvent::SecondLevelFetch);
        cycles += Cycles::new(self.costs.pte_wired_fetch);
        recorder.emit(SimEvent {
            kind: EventKind::SecondLevelFetch,
            cycle: cycle_base + cycles.raw(),
            page: vpn.index(),
            cost: self.costs.pte_wired_fetch,
            cpu: 0,
        });

        let pte_page = pt.pte_page_vpn(vpn);
        if pt.second_level_lookup(pte_page).is_err() {
            // No page-table page exists: the PTE reads as invalid and
            // nothing is filled (the hardware found an invalid second-level
            // entry).
            return TranslationOutcome {
                pte: Pte::INVALID,
                pte_cache_hit: false,
                used_second_level: true,
                cycles,
                evicted_by_pte_fill: None,
            };
        }

        // Fill the PTE block into the cache, displacing whatever data
        // block occupied the line. Page-table data is kernel read-write
        // and marked page-dirty so it never trips the dirty-bit machinery.
        let evicted = cache.fill_for_read(pte_va, Protection::ReadWrite, true);
        counters.record(CounterEvent::PteFill);
        if evicted.is_some() {
            counters.record(CounterEvent::Eviction);
        }
        if evicted.is_some_and(|e| e.block_dirty) {
            counters.record(CounterEvent::Writeback);
        }
        cycles += Cycles::new(self.costs.cache_hit); // deliver the word

        TranslationOutcome {
            pte: pt.pte(vpn),
            pte_cache_hit: false,
            used_second_level: true,
            cycles,
            evicted_by_pte_fill: evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_mem::phys::PhysMemory;
    use spur_types::{MemSize, Pfn, Vpn};

    fn setup() -> (
        VirtualCache,
        PageTable,
        PhysMemory,
        PerfCounters,
        InCacheTranslator,
    ) {
        (
            VirtualCache::prototype(),
            PageTable::new(),
            PhysMemory::new(MemSize::MB5),
            PerfCounters::promiscuous(),
            InCacheTranslator::new(CostParams::paper()),
        )
    }

    fn map(pt: &mut PageTable, phys: &mut PhysMemory, vpn: Vpn, pfn: u32) {
        pt.ensure_second_level(vpn, phys).unwrap();
        pt.insert(vpn, Pte::resident(Pfn::new(pfn), Protection::ReadWrite));
    }

    #[test]
    fn cold_translation_uses_second_level_and_fills_pte_block() {
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        let vpn = Vpn::new(100);
        map(&mut pt, &mut phys, vpn, 3);
        let out = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(!out.pte_cache_hit);
        assert!(out.used_second_level);
        assert!(out.pte.valid());
        assert_eq!(out.pte.pfn(), Pfn::new(3));
        assert_eq!(ctrs.total(CounterEvent::PteCacheMiss), 1);
        assert_eq!(ctrs.total(CounterEvent::PteFill), 1);
        // The PTE block is now cached.
        assert!(cache.probe(pt.pte_vaddr(vpn)).hit);
    }

    #[test]
    fn warm_translation_hits_the_cached_pte() {
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        let vpn = Vpn::new(100);
        map(&mut pt, &mut phys, vpn, 3);
        tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
        let out = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(out.pte_cache_hit);
        assert_eq!(out.cycles.raw(), CostParams::paper().pte_cached_check);
        assert_eq!(ctrs.total(CounterEvent::PteCacheHit), 1);
    }

    #[test]
    fn one_pte_block_covers_eight_neighboring_pages() {
        // 32-byte block = 8 PTEs, so translating page N warms translation
        // for pages in the same 8-page group.
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        for i in 0..8 {
            map(&mut pt, &mut phys, Vpn::new(160 + i), 10 + i as u32);
        }
        let first = tr.translate(Vpn::new(160).base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(!first.pte_cache_hit);
        for i in 1..8 {
            let out = tr.translate(Vpn::new(160 + i).base_addr(), &mut cache, &pt, &mut ctrs);
            assert!(out.pte_cache_hit, "page {i} shares the PTE block");
        }
        let ninth = tr.translate(Vpn::new(168).base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(!ninth.pte_cache_hit, "next PTE block is distinct");
    }

    #[test]
    fn unmapped_pte_page_reads_invalid_without_fill() {
        let (mut cache, pt, _phys, mut ctrs, tr) = setup();
        let out = tr.translate(Vpn::new(5000).base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(!out.pte.valid());
        assert!(out.used_second_level);
        assert_eq!(cache.occupancy(), 0, "nothing filled for a dead PTE page");
    }

    #[test]
    fn invalid_pte_is_returned_for_unmapped_page_in_live_pt_page() {
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        map(&mut pt, &mut phys, Vpn::new(200), 1);
        // Page 201 shares the page-table page but has no PTE.
        let out = tr.translate(Vpn::new(201).base_addr(), &mut cache, &pt, &mut ctrs);
        assert!(!out.pte.valid());
    }

    #[test]
    fn traced_translation_reconciles_with_counters() {
        use spur_obs::TraceRecorder;
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        let mut rec = TraceRecorder::new(64);
        for i in 0..4 {
            map(&mut pt, &mut phys, Vpn::new(100 + i * 8), 3 + i as u32);
        }
        let mut clock = 0u64;
        for i in 0..4 {
            // Two translations per page: a cold miss then a warm hit.
            for _ in 0..2 {
                let out = tr.translate_traced(
                    Vpn::new(100 + i * 8).base_addr(),
                    &mut cache,
                    &pt,
                    &mut ctrs,
                    &mut rec,
                    clock,
                );
                clock += out.cycles.raw();
            }
        }
        assert_eq!(
            rec.emitted(EventKind::PteCacheMiss),
            ctrs.total(CounterEvent::PteCacheMiss)
        );
        assert_eq!(
            rec.emitted(EventKind::SecondLevelFetch),
            ctrs.total(CounterEvent::SecondLevelFetch)
        );
        // Timestamps are monotone in simulated time.
        let events = rec.events();
        for pair in events.windows(2) {
            assert!(pair[0].cycle <= pair[1].cycle);
        }
    }

    #[test]
    fn traced_and_untraced_translations_agree() {
        use spur_obs::TraceRecorder;
        let (mut c1, mut pt, mut phys, mut k1, tr) = setup();
        map(&mut pt, &mut phys, Vpn::new(77), 9);
        let mut c2 = c1.clone();
        let mut k2 = k1.clone();
        let mut rec = TraceRecorder::new(8);
        let plain = tr.translate(Vpn::new(77).base_addr(), &mut c1, &pt, &mut k1);
        let traced = tr.translate_traced(
            Vpn::new(77).base_addr(),
            &mut c2,
            &pt,
            &mut k2,
            &mut rec,
            500,
        );
        assert_eq!(plain, traced, "recording must not perturb the outcome");
        assert_eq!(k1.total(CounterEvent::PteCacheMiss), 1);
        assert_eq!(k2.total(CounterEvent::PteCacheMiss), 1);
    }

    #[test]
    fn pte_fill_can_displace_a_data_block() {
        let (mut cache, mut pt, mut phys, mut ctrs, tr) = setup();
        let vpn = Vpn::new(300);
        map(&mut pt, &mut phys, vpn, 2);
        // Occupy the line the PTE block maps to with a dirty data block.
        let pte_va = pt.pte_vaddr(vpn);
        let conflict_block = spur_types::BlockNum::new(
            pte_va.block().index() ^ (1 << 20), // same index modulo 4096 lines? no —
        );
        // Construct a conflicting address directly: same line index,
        // different tag (offset by exactly the cache size).
        let conflicting = GlobalAddr::new(pte_va.block_aligned().raw() ^ (1 << 17));
        let _ = conflict_block;
        cache.fill_for_write(conflicting, Protection::ReadWrite, true);
        assert_eq!(
            cache.index_of(conflicting.block()),
            cache.index_of(pte_va.block())
        );

        let out = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
        let ev = out
            .evicted_by_pte_fill
            .expect("PTE fill displaces the data block");
        assert_eq!(ev.block, conflicting.block());
        assert!(ev.block_dirty);
        assert_eq!(ctrs.total(CounterEvent::Writeback), 1);
    }
}
