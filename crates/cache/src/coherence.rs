//! The Berkeley Ownership cache-coherency protocol (Katz et al.,
//! ISCA 1985) on a snooping bus.
//!
//! The SPUR prototype implements this protocol in its cache controller;
//! the paper's measurements were taken on a uniprocessor system, but the
//! protocol machinery is present and its states occupy two bits of every
//! cache line (the `CS` field of Figure 3.2(b)). We implement the full
//! multiprocessor protocol so that (a) the line format is complete and
//! (b) the `REF` policy's "flush the page from **all** the caches" cost
//! discussion can be exercised in tests.
//!
//! States:
//!
//! * `Invalid` — no data.
//! * `UnOwned` — valid, clean, possibly shared; memory is up to date.
//! * `OwnedExclusive` — dirty, the only cached copy; this cache must
//!   supply data and write back.
//! * `OwnedShared` — dirty but other clean copies exist; this cache is
//!   still responsible for the data.
//!
//! Ownership (the responsibility to supply data and eventually write back)
//! moves with write activity; invalidation happens on writes by others.

use core::fmt;

use spur_types::{BlockNum, Protection};

use crate::cache::VirtualCache;

/// The two-bit coherency state of a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CoherencyState {
    /// No valid data.
    #[default]
    Invalid,
    /// Valid, clean, possibly shared.
    UnOwned,
    /// Dirty and exclusively held: writes may proceed without bus traffic.
    OwnedExclusive,
    /// Dirty but shared: a write must invalidate other copies first.
    OwnedShared,
}

impl CoherencyState {
    /// Encodes the state into the two `CS` bits.
    pub const fn bits(self) -> u8 {
        match self {
            CoherencyState::Invalid => 0,
            CoherencyState::UnOwned => 1,
            CoherencyState::OwnedExclusive => 2,
            CoherencyState::OwnedShared => 3,
        }
    }

    /// Decodes the two `CS` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 4`.
    pub const fn from_bits(bits: u8) -> Self {
        match bits {
            0 => CoherencyState::Invalid,
            1 => CoherencyState::UnOwned,
            2 => CoherencyState::OwnedExclusive,
            3 => CoherencyState::OwnedShared,
            _ => panic!("coherency state is two bits"),
        }
    }

    /// Is this cache the owner (responsible for supplying data)?
    pub const fn is_owner(self) -> bool {
        matches!(
            self,
            CoherencyState::OwnedExclusive | CoherencyState::OwnedShared
        )
    }

    /// Does the line hold valid data?
    pub const fn is_valid(self) -> bool {
        !matches!(self, CoherencyState::Invalid)
    }
}

impl fmt::Display for CoherencyState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoherencyState::Invalid => "INV",
            CoherencyState::UnOwned => "UNO",
            CoherencyState::OwnedExclusive => "OWN-X",
            CoherencyState::OwnedShared => "OWN-S",
        };
        f.write_str(s)
    }
}

/// Bus transactions of the Berkeley protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// Read for a shared (clean) copy.
    ReadShared,
    /// Read with intent to modify: the reader becomes exclusive owner.
    ReadForOwnership,
    /// Invalidate other copies of a block the writer already holds.
    WriteForInvalidation,
    /// Write a dirty block back to memory (eviction or flush).
    WriteBack,
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOp::ReadShared => "rd-shared",
            BusOp::ReadForOwnership => "rd-own",
            BusOp::WriteForInvalidation => "wr-inv",
            BusOp::WriteBack => "wb",
        };
        f.write_str(s)
    }
}

/// A snoop message delivered to one cache when a peer's transaction
/// appears on the bus.
///
/// This is the coherence interface a cache exposes to *any* interconnect
/// — the toy [`Bus`] here and the full `spur-mp` system both drive their
/// peers' caches through [`VirtualCache::snoop`] rather than reaching
/// into lines directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceMsg {
    /// A peer issued [`BusOp::ReadShared`]: an owner must supply the
    /// data and downgrade to [`CoherencyState::OwnedShared`].
    ReadShared(BlockNum),
    /// A peer issued [`BusOp::ReadForOwnership`]: any copy must be
    /// invalidated; an owner supplies the data on the way out.
    ReadForOwnership(BlockNum),
    /// A peer already holding the block issued
    /// [`BusOp::WriteForInvalidation`]: any copy must be invalidated.
    WriteForInvalidation(BlockNum),
}

impl CoherenceMsg {
    /// The block the message is about.
    pub fn block(self) -> BlockNum {
        match self {
            CoherenceMsg::ReadShared(b)
            | CoherenceMsg::ReadForOwnership(b)
            | CoherenceMsg::WriteForInvalidation(b) => b,
        }
    }
}

/// What a cache did in response to a snooped [`CoherenceMsg`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnoopResponse {
    /// The cache held the block at all (its tag matched). `false`
    /// means the snoop was a complete no-op — the signal a snoop
    /// filter uses to retire a stale presence bit.
    pub matched: bool,
    /// The cache owned the block and supplied the data (instead of
    /// memory).
    pub supplied: bool,
    /// The cache invalidated its copy.
    pub invalidated: bool,
}

impl VirtualCache {
    /// Applies one snooped coherence message, returning what this cache
    /// did. A cache not holding the block does nothing.
    ///
    /// Invalidation through this interface never writes back: under
    /// Berkeley ownership the requester receives the owner's data with
    /// the transaction itself, so the dirty copy leaves the cache on
    /// the bus, not through memory.
    pub fn snoop(&mut self, msg: CoherenceMsg) -> SnoopResponse {
        let mut resp = SnoopResponse::default();
        let Some(idx) = self.find(msg.block()) else {
            return resp;
        };
        resp.matched = true;
        let line = self.line_mut(idx);
        match msg {
            CoherenceMsg::ReadShared(_) => {
                if line.state.is_owner() {
                    line.state = CoherencyState::OwnedShared;
                    resp.supplied = true;
                }
            }
            CoherenceMsg::ReadForOwnership(_) => {
                resp.supplied = line.state.is_owner();
                line.valid = false;
                line.state = CoherencyState::Invalid;
                resp.invalidated = true;
            }
            CoherenceMsg::WriteForInvalidation(_) => {
                line.valid = false;
                line.state = CoherencyState::Invalid;
                resp.invalidated = true;
            }
        }
        resp
    }
}

/// Per-bus traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Count of [`BusOp::ReadShared`] transactions.
    pub read_shared: u64,
    /// Count of [`BusOp::ReadForOwnership`] transactions.
    pub read_for_ownership: u64,
    /// Count of [`BusOp::WriteForInvalidation`] transactions.
    pub write_for_invalidation: u64,
    /// Count of [`BusOp::WriteBack`] transactions.
    pub write_backs: u64,
    /// Times an owning cache supplied data instead of memory.
    pub owner_supplies: u64,
    /// Lines invalidated by snooping.
    pub invalidations: u64,
}

impl BusStats {
    /// Total bus transactions.
    pub fn total(&self) -> u64 {
        self.read_shared + self.read_for_ownership + self.write_for_invalidation + self.write_backs
    }
}

/// A snooping bus connecting several virtual-address caches.
///
/// The bus owns the caches; processors are addressed by index. All four
/// Berkeley state transitions are centralized here so the invariants
/// (single owner, no stale sharing of dirty data) are easy to audit and
/// property-test.
///
/// ```
/// use spur_cache::coherence::{Bus, CoherencyState};
/// use spur_types::{GlobalAddr, Protection};
///
/// let mut bus = Bus::new(2);
/// let a = GlobalAddr::new(0x1000);
/// bus.processor_read(0, a, Protection::ReadWrite, false);
/// bus.processor_write(1, a, Protection::ReadWrite, false);
/// // CPU 1 now owns the block exclusively; CPU 0's copy is invalid.
/// assert_eq!(bus.line_state(1, a), CoherencyState::OwnedExclusive);
/// assert_eq!(bus.line_state(0, a), CoherencyState::Invalid);
/// ```
#[derive(Debug)]
pub struct Bus {
    caches: Vec<VirtualCache>,
    stats: BusStats,
}

impl Bus {
    /// Creates a bus with `n` prototype-configured caches.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a bus needs at least one cache");
        Bus {
            caches: (0..n).map(|_| VirtualCache::prototype()).collect(),
            stats: BusStats::default(),
        }
    }

    /// Number of caches on the bus.
    pub fn num_caches(&self) -> usize {
        self.caches.len()
    }

    /// Immutable access to a cache (for assertions).
    pub fn cache(&self, cpu: usize) -> &VirtualCache {
        &self.caches[cpu]
    }

    /// Bus traffic statistics so far.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The coherency state of `addr`'s block in `cpu`'s cache
    /// ([`CoherencyState::Invalid`] if absent or displaced).
    pub fn line_state(&self, cpu: usize, addr: spur_types::GlobalAddr) -> CoherencyState {
        let cache = &self.caches[cpu];
        let probe = cache.probe(addr);
        if probe.hit {
            cache.line(probe.index).state
        } else {
            CoherencyState::Invalid
        }
    }

    /// Processor `cpu` reads `addr`. Returns `true` on a cache hit.
    pub fn processor_read(
        &mut self,
        cpu: usize,
        addr: spur_types::GlobalAddr,
        prot: Protection,
        page_dirty: bool,
    ) -> bool {
        let block = addr.block();
        let probe = self.caches[cpu].probe(addr);
        if probe.hit {
            return true;
        }
        // Read miss: ReadShared on the bus. An owner (if any) supplies the
        // data and downgrades to OwnedShared; memory supplies it otherwise.
        self.stats.read_shared += 1;
        self.snoop_read_shared(cpu, block);
        let evicted = self.caches[cpu].fill_for_read(addr, prot, page_dirty);
        if let Some(ev) = evicted {
            if ev.block_dirty {
                self.stats.write_backs += 1;
            }
        }
        // The new copy is clean and unowned.
        let idx = self.caches[cpu].probe(addr).index;
        self.caches[cpu].line_mut(idx).state = CoherencyState::UnOwned;
        false
    }

    /// Processor `cpu` writes `addr`. Returns `true` on a cache hit.
    pub fn processor_write(
        &mut self,
        cpu: usize,
        addr: spur_types::GlobalAddr,
        prot: Protection,
        page_dirty: bool,
    ) -> bool {
        let block = addr.block();
        let probe = self.caches[cpu].probe(addr);
        if probe.hit {
            let state = self.caches[cpu].line(probe.index).state;
            match state {
                CoherencyState::OwnedExclusive => {}
                CoherencyState::UnOwned | CoherencyState::OwnedShared => {
                    // Must invalidate other copies before writing.
                    self.stats.write_for_invalidation += 1;
                    self.snoop_invalidate(cpu, block);
                }
                CoherencyState::Invalid => unreachable!("probe hit on invalid line"),
            }
            let line = self.caches[cpu].line_mut(probe.index);
            line.state = CoherencyState::OwnedExclusive;
            line.block_dirty = true;
            return true;
        }
        // Write miss: ReadForOwnership — fetch the block and invalidate all
        // other copies in one transaction.
        self.stats.read_for_ownership += 1;
        self.snoop_read_for_ownership(cpu, block);
        let evicted = self.caches[cpu].fill_for_write(addr, prot, page_dirty);
        if let Some(ev) = evicted {
            if ev.block_dirty {
                self.stats.write_backs += 1;
            }
        }
        let idx = self.caches[cpu].probe(addr).index;
        let line = self.caches[cpu].line_mut(idx);
        line.state = CoherencyState::OwnedExclusive;
        line.block_dirty = true;
        false
    }

    /// Flushes `addr`'s page from **every** cache on the bus (the
    /// multiprocessor cost the `REF` policy pays when clearing a reference
    /// bit). Returns the total number of lines flushed.
    pub fn flush_page_all(&mut self, vpn: spur_types::Vpn) -> u64 {
        let mut flushed = 0;
        for cache in &mut self.caches {
            let stats = cache.flush_page_tag_checked(vpn);
            flushed += stats.flushed;
            self.stats.write_backs += stats.written_back;
        }
        flushed
    }

    fn snoop_read_shared(&mut self, requester: usize, block: BlockNum) {
        self.broadcast(requester, CoherenceMsg::ReadShared(block));
    }

    fn snoop_read_for_ownership(&mut self, requester: usize, block: BlockNum) {
        self.broadcast(requester, CoherenceMsg::ReadForOwnership(block));
    }

    fn snoop_invalidate(&mut self, requester: usize, block: BlockNum) {
        self.broadcast(requester, CoherenceMsg::WriteForInvalidation(block));
    }

    /// Delivers `msg` to every cache but the requester's, tallying what
    /// the peers did.
    fn broadcast(&mut self, requester: usize, msg: CoherenceMsg) {
        for (i, cache) in self.caches.iter_mut().enumerate() {
            if i == requester {
                continue;
            }
            let resp = cache.snoop(msg);
            if resp.supplied {
                self.stats.owner_supplies += 1;
            }
            if resp.invalidated {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Checks the protocol's safety invariant: at most one owner per
    /// block, and if any cache holds a dirty (owned) copy no other cache
    /// may hold that block in any state other than `UnOwned` via
    /// `OwnedShared` sharing.
    ///
    /// Intended for tests; walks every line of every cache.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        use std::collections::HashMap;
        let mut owners: HashMap<u64, usize> = HashMap::new();
        let mut exclusive: HashMap<u64, usize> = HashMap::new();
        for (cpu, cache) in self.caches.iter().enumerate() {
            for idx in 0..cache.num_lines() {
                let line = cache.line(crate::line::LineIndex(idx));
                if !line.valid {
                    continue;
                }
                let b = line.block.index();
                if line.state.is_owner() {
                    if let Some(prev) = owners.insert(b, cpu) {
                        return Err(format!("block {b:#x} owned by both cpu{prev} and cpu{cpu}"));
                    }
                }
                if line.state == CoherencyState::OwnedExclusive {
                    exclusive.insert(b, cpu);
                }
            }
        }
        // Exclusively-owned blocks must not appear in any other cache.
        for (b, cpu) in &exclusive {
            for (other_cpu, cache) in self.caches.iter().enumerate() {
                if other_cpu == *cpu {
                    continue;
                }
                if cache.find(BlockNum::new(*b)).is_some() {
                    return Err(format!(
                        "block {b:#x} is exclusive in cpu{cpu} but also cached by cpu{other_cpu}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_types::GlobalAddr;

    const RW: Protection = Protection::ReadWrite;

    #[test]
    fn state_bits_round_trip() {
        for bits in 0..4u8 {
            assert_eq!(CoherencyState::from_bits(bits).bits(), bits);
        }
    }

    #[test]
    #[should_panic(expected = "two bits")]
    fn state_rejects_wide_bits() {
        let _ = CoherencyState::from_bits(4);
    }

    #[test]
    fn read_then_read_shares_cleanly() {
        let mut bus = Bus::new(2);
        let a = GlobalAddr::new(0x2000);
        assert!(!bus.processor_read(0, a, RW, false));
        assert!(!bus.processor_read(1, a, RW, false));
        assert_eq!(bus.line_state(0, a), CoherencyState::UnOwned);
        assert_eq!(bus.line_state(1, a), CoherencyState::UnOwned);
        assert_eq!(bus.stats().read_shared, 2);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn write_hit_on_shared_invalidates_others() {
        let mut bus = Bus::new(3);
        let a = GlobalAddr::new(0x3000);
        bus.processor_read(0, a, RW, false);
        bus.processor_read(1, a, RW, false);
        bus.processor_read(2, a, RW, false);
        assert!(bus.processor_write(1, a, RW, false));
        assert_eq!(bus.line_state(1, a), CoherencyState::OwnedExclusive);
        assert_eq!(bus.line_state(0, a), CoherencyState::Invalid);
        assert_eq!(bus.line_state(2, a), CoherencyState::Invalid);
        assert_eq!(bus.stats().write_for_invalidation, 1);
        assert_eq!(bus.stats().invalidations, 2);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn write_miss_takes_ownership_from_owner() {
        let mut bus = Bus::new(2);
        let a = GlobalAddr::new(0x4000);
        bus.processor_write(0, a, RW, false);
        assert_eq!(bus.line_state(0, a), CoherencyState::OwnedExclusive);
        bus.processor_write(1, a, RW, false);
        assert_eq!(bus.line_state(1, a), CoherencyState::OwnedExclusive);
        assert_eq!(bus.line_state(0, a), CoherencyState::Invalid);
        assert_eq!(bus.stats().owner_supplies, 1);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn read_of_dirty_block_downgrades_owner_to_shared() {
        let mut bus = Bus::new(2);
        let a = GlobalAddr::new(0x5000);
        bus.processor_write(0, a, RW, false);
        bus.processor_read(1, a, RW, false);
        assert_eq!(bus.line_state(0, a), CoherencyState::OwnedShared);
        assert_eq!(bus.line_state(1, a), CoherencyState::UnOwned);
        assert_eq!(bus.stats().owner_supplies, 1);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn flush_page_all_empties_every_cache() {
        let mut bus = Bus::new(2);
        let page = spur_types::Vpn::new(8);
        let a = GlobalAddr::new(page.base_addr().raw());
        let b = GlobalAddr::new(page.base_addr().raw() + 64);
        bus.processor_write(0, a, RW, false);
        bus.processor_read(1, a, RW, false);
        bus.processor_read(1, b, RW, false);
        let flushed = bus.flush_page_all(page);
        assert_eq!(flushed, 3);
        assert_eq!(bus.line_state(0, a), CoherencyState::Invalid);
        assert_eq!(bus.line_state(1, a), CoherencyState::Invalid);
        assert_eq!(bus.line_state(1, b), CoherencyState::Invalid);
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn empty_bus_panics() {
        let _ = Bus::new(0);
    }

    #[test]
    fn snoop_on_absent_block_does_nothing() {
        let mut c = VirtualCache::prototype();
        let b = GlobalAddr::new(0x2000).block();
        assert_eq!(
            c.snoop(CoherenceMsg::ReadShared(b)),
            SnoopResponse::default()
        );
        assert_eq!(
            c.snoop(CoherenceMsg::ReadForOwnership(b)),
            SnoopResponse::default()
        );
    }

    #[test]
    fn snoop_read_shared_downgrades_only_owners() {
        let a = GlobalAddr::new(0x2000);
        let mut owner = VirtualCache::prototype();
        owner.fill_for_write(a, RW, false);
        let resp = owner.snoop(CoherenceMsg::ReadShared(a.block()));
        assert!(resp.supplied && !resp.invalidated);
        assert_eq!(
            owner.line(owner.probe(a).index).state,
            CoherencyState::OwnedShared
        );

        let mut sharer = VirtualCache::prototype();
        sharer.fill_for_read(a, RW, false);
        let resp = sharer.snoop(CoherenceMsg::ReadShared(a.block()));
        assert!(
            resp.matched && !resp.supplied && !resp.invalidated,
            "UnOwned copy stays put"
        );
        assert!(sharer.probe(a).hit);
    }

    #[test]
    fn snoop_read_for_ownership_invalidates_and_reports_supply() {
        let a = GlobalAddr::new(0x2000);
        let mut owner = VirtualCache::prototype();
        owner.fill_for_write(a, RW, false);
        let resp = owner.snoop(CoherenceMsg::ReadForOwnership(a.block()));
        assert!(resp.supplied && resp.invalidated);
        assert!(!owner.probe(a).hit);

        let mut sharer = VirtualCache::prototype();
        sharer.fill_for_read(a, RW, false);
        let resp = sharer.snoop(CoherenceMsg::ReadForOwnership(a.block()));
        assert!(!resp.supplied && resp.invalidated);
        assert!(!sharer.probe(a).hit);
    }

    #[test]
    fn snoop_write_invalidation_never_claims_supply() {
        let a = GlobalAddr::new(0x2000);
        let mut owner = VirtualCache::prototype();
        owner.fill_for_write(a, RW, false);
        let resp = owner.snoop(CoherenceMsg::WriteForInvalidation(a.block()));
        assert!(!resp.supplied && resp.invalidated);
        assert!(!owner.probe(a).hit);
    }
}
