//! The cache controller's performance counters.
//!
//! The SPUR cache controller contains 16 32-bit counters; a mode register
//! selects one of 4 sets of events to measure (Section 2). The prototype's
//! counters are what made the paper possible: "these on-chip counters give
//! us the opportunity to re-evaluate our decisions with more complete
//! information."
//!
//! This module reproduces that observability surface:
//!
//! * the **architectural** view — 16 wrapping 32-bit registers counting
//!   only the event set selected by the mode register, exactly like the
//!   hardware;
//! * a **promiscuous** mode (simulator convenience) that additionally
//!   accumulates 64-bit shadow totals for *all* event sets in one run.
//!   The paper achieved the same effect by re-running its deterministic
//!   workloads once per mode; promiscuous mode spares the repetition
//!   without changing any counted value (the workloads are deterministic
//!   either way).

use core::fmt;

/// The four event sets selectable by the mode register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CounterMode {
    /// Processor references and cache misses by type.
    #[default]
    References,
    /// In-cache translation performance.
    Translation,
    /// Virtual-memory events (faults, dirty-bit misses, paging).
    VirtualMemory,
    /// Berkeley Ownership bus traffic.
    Coherency,
}

impl CounterMode {
    /// All four modes in register order.
    pub const ALL: [CounterMode; 4] = [
        CounterMode::References,
        CounterMode::Translation,
        CounterMode::VirtualMemory,
        CounterMode::Coherency,
    ];

    fn index(self) -> usize {
        match self {
            CounterMode::References => 0,
            CounterMode::Translation => 1,
            CounterMode::VirtualMemory => 2,
            CounterMode::Coherency => 3,
        }
    }
}

impl CounterMode {
    /// The events wired to this mode's counter slots, in slot order.
    ///
    /// The wiring is fixed at design time, so the listings are `const`
    /// slices — callers on hot paths (and `dump()`, which walks all
    /// four modes) pay no allocation or sort.
    pub fn events(self) -> &'static [CounterEvent] {
        use CounterEvent::*;
        const REFERENCES: &[CounterEvent] = &[
            IFetch, Read, Write, IFetchMiss, ReadMiss, WriteMiss, Fill, Eviction, Writeback,
        ];
        const TRANSLATION: &[CounterEvent] = &[
            PteProbe,
            PteCacheHit,
            PteCacheMiss,
            SecondLevelFetch,
            PteFill,
        ];
        const VIRTUAL_MEMORY: &[CounterEvent] = &[
            DirtyFault,
            ExcessFault,
            DirtyBitMiss,
            RefFault,
            ProtFault,
            ZeroFill,
            PageIn,
            PageOut,
            DaemonScan,
            PageFlush,
            SoftFault,
        ];
        const COHERENCY: &[CounterEvent] = &[
            BusReadShared,
            BusReadForOwnership,
            BusWriteInvalidate,
            BusWriteBack,
            OwnerSupply,
            Invalidation,
        ];
        match self {
            CounterMode::References => REFERENCES,
            CounterMode::Translation => TRANSLATION,
            CounterMode::VirtualMemory => VIRTUAL_MEMORY,
            CounterMode::Coherency => COHERENCY,
        }
    }
}

impl fmt::Display for CounterMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CounterMode::References => "references",
            CounterMode::Translation => "translation",
            CounterMode::VirtualMemory => "virtual-memory",
            CounterMode::Coherency => "coherency",
        };
        f.write_str(s)
    }
}

/// Countable events, each assigned to one mode's set and one of the 16
/// counter slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CounterEvent {
    // --- References set ---
    /// Instruction fetch issued.
    IFetch,
    /// Processor data read issued.
    Read,
    /// Processor data write issued.
    Write,
    /// Instruction fetch missed in the cache.
    IFetchMiss,
    /// Data read missed in the cache.
    ReadMiss,
    /// Data write missed in the cache.
    WriteMiss,
    /// Block filled into the cache.
    Fill,
    /// Valid block displaced by a fill.
    Eviction,
    /// Dirty block written back to memory.
    Writeback,

    // --- Translation set ---
    /// In-cache translation attempted (cache probed for a PTE).
    PteProbe,
    /// The PTE was found in the cache.
    PteCacheHit,
    /// The PTE missed in the cache.
    PteCacheMiss,
    /// A second-level (wired) page-table fetch was needed.
    SecondLevelFetch,
    /// A PTE block was filled into the cache, competing with data.
    PteFill,

    // --- Virtual-memory set ---
    /// Necessary dirty-bit fault (first write to a page), `N_ds`.
    DirtyFault,
    /// Excess fault on a previously cached block (`FAULT` emulation),
    /// `N_ef`.
    ExcessFault,
    /// Dirty-bit miss (SPUR refreshes a stale cached page-dirty copy),
    /// `N_dm`.
    DirtyBitMiss,
    /// Reference-bit fault (software sets R).
    RefFault,
    /// True protection violation.
    ProtFault,
    /// Zero-fill-on-demand fault, `N_zfod`.
    ZeroFill,
    /// Page brought in from backing store.
    PageIn,
    /// Dirty page queued for write to backing store.
    PageOut,
    /// Page daemon examined one resident page.
    DaemonScan,
    /// Page flushed from the cache (REF/FLUSH policies).
    PageFlush,
    /// Page reclaimed from the free list without I/O (soft fault).
    SoftFault,

    // --- Coherency set ---
    /// `ReadShared` bus transaction.
    BusReadShared,
    /// `ReadForOwnership` bus transaction.
    BusReadForOwnership,
    /// `WriteForInvalidation` bus transaction.
    BusWriteInvalidate,
    /// Write-back bus transaction.
    BusWriteBack,
    /// An owning cache supplied data.
    OwnerSupply,
    /// A snooping cache invalidated its copy.
    Invalidation,
}

impl CounterEvent {
    /// The mode set and slot this event is wired to.
    pub const fn mode_slot(self) -> (CounterMode, usize) {
        use CounterEvent::*;
        use CounterMode::*;
        match self {
            IFetch => (References, 0),
            Read => (References, 1),
            Write => (References, 2),
            IFetchMiss => (References, 3),
            ReadMiss => (References, 4),
            WriteMiss => (References, 5),
            Fill => (References, 6),
            Eviction => (References, 7),
            Writeback => (References, 8),

            PteProbe => (Translation, 0),
            PteCacheHit => (Translation, 1),
            PteCacheMiss => (Translation, 2),
            SecondLevelFetch => (Translation, 3),
            PteFill => (Translation, 4),

            DirtyFault => (VirtualMemory, 0),
            ExcessFault => (VirtualMemory, 1),
            DirtyBitMiss => (VirtualMemory, 2),
            RefFault => (VirtualMemory, 3),
            ProtFault => (VirtualMemory, 4),
            ZeroFill => (VirtualMemory, 5),
            PageIn => (VirtualMemory, 6),
            PageOut => (VirtualMemory, 7),
            DaemonScan => (VirtualMemory, 8),
            PageFlush => (VirtualMemory, 9),
            SoftFault => (VirtualMemory, 10),

            BusReadShared => (Coherency, 0),
            BusReadForOwnership => (Coherency, 1),
            BusWriteInvalidate => (Coherency, 2),
            BusWriteBack => (Coherency, 3),
            OwnerSupply => (Coherency, 4),
            Invalidation => (Coherency, 5),
        }
    }
}

impl fmt::Display for CounterEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The 16 × 32-bit counter bank with its mode register.
///
/// ```
/// use spur_cache::counters::{CounterEvent, CounterMode, PerfCounters};
///
/// let mut pc = PerfCounters::promiscuous();
/// pc.record(CounterEvent::Read);
/// pc.record(CounterEvent::DirtyFault);
/// assert_eq!(pc.total(CounterEvent::Read), 1);
/// assert_eq!(pc.total(CounterEvent::DirtyFault), 1);
///
/// // The architectural registers only see the selected mode:
/// assert_eq!(pc.mode(), CounterMode::References);
/// assert_eq!(pc.read_slot(1), 1); // Read is slot 1 of the References set
/// ```
#[derive(Debug, Clone)]
pub struct PerfCounters {
    mode: CounterMode,
    slots: [u32; 16],
    promiscuous: bool,
    wide: [[u64; 16]; 4],
}

impl PerfCounters {
    /// Hardware-faithful counters: only the selected mode's events count.
    pub fn new(mode: CounterMode) -> Self {
        PerfCounters {
            mode,
            slots: [0; 16],
            promiscuous: false,
            wide: [[0; 16]; 4],
        }
    }

    /// Simulator-convenience counters: 64-bit shadow totals accumulate for
    /// every mode simultaneously; the architectural registers still follow
    /// the mode register.
    pub fn promiscuous() -> Self {
        PerfCounters {
            mode: CounterMode::References,
            slots: [0; 16],
            promiscuous: true,
            wide: [[0; 16]; 4],
        }
    }

    /// The current mode register value.
    pub fn mode(&self) -> CounterMode {
        self.mode
    }

    /// Selects a mode. Like the hardware, this does not clear the
    /// registers; call [`PerfCounters::reset`] for a fresh measurement.
    pub fn set_mode(&mut self, mode: CounterMode) {
        self.mode = mode;
    }

    /// Clears all registers and shadow totals.
    pub fn reset(&mut self) {
        self.slots = [0; 16];
        self.wide = [[0; 16]; 4];
    }

    /// Records one occurrence of `event`.
    pub fn record(&mut self, event: CounterEvent) {
        self.record_n(event, 1);
    }

    /// Records `n` occurrences of `event`.
    pub fn record_n(&mut self, event: CounterEvent, n: u64) {
        let (mode, slot) = event.mode_slot();
        if self.promiscuous || mode == self.mode {
            self.wide[mode.index()][slot] += n;
        }
        if mode == self.mode {
            self.slots[slot] = self.slots[slot].wrapping_add(n as u32);
        }
    }

    /// Reads architectural register `slot` (wrapping 32-bit, current mode's
    /// set).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 16`.
    pub fn read_slot(&self, slot: usize) -> u32 {
        assert!(slot < 16, "there are 16 counters");
        self.slots[slot]
    }

    /// Reads the 64-bit shadow total for `event`.
    ///
    /// In hardware-faithful mode this is only nonzero for events in modes
    /// that were selected while the events occurred.
    pub fn total(&self, event: CounterEvent) -> u64 {
        let (mode, slot) = event.mode_slot();
        self.wide[mode.index()][slot]
    }

    /// The wrapping 32-bit value the hardware would report for `event`'s
    /// slot, regardless of the current mode (useful for wrap-around
    /// analysis).
    pub fn wrapped_total(&self, event: CounterEvent) -> u32 {
        (self.total(event) & 0xffff_ffff) as u32
    }
}

impl PerfCounters {
    /// Renders every mode's slot wiring and current totals — the view a
    /// diagnostic monitor program (the paper's workloads included two!)
    /// would print.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for mode in CounterMode::ALL {
            out.push_str(&format!(
                "mode {mode}{}:\n",
                if mode == self.mode { " (selected)" } else { "" }
            ));
            for (slot, event) in mode.events().iter().copied().enumerate() {
                out.push_str(&format!(
                    "  [{slot:>2}] {:<22} {:>12}\n",
                    event.to_string(),
                    self.total(event)
                ));
            }
        }
        out
    }
}

impl Default for PerfCounters {
    fn default() -> Self {
        Self::promiscuous()
    }
}

impl fmt::Display for PerfCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "counters[mode={}, slots={:?}]",
            self.mode,
            &self.slots[..8]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_has_a_unique_mode_slot() {
        use CounterEvent::*;
        let all = [
            IFetch,
            Read,
            Write,
            IFetchMiss,
            ReadMiss,
            WriteMiss,
            Fill,
            Eviction,
            Writeback,
            PteProbe,
            PteCacheHit,
            PteCacheMiss,
            SecondLevelFetch,
            PteFill,
            DirtyFault,
            ExcessFault,
            DirtyBitMiss,
            RefFault,
            ProtFault,
            ZeroFill,
            PageIn,
            PageOut,
            DaemonScan,
            PageFlush,
            SoftFault,
            BusReadShared,
            BusReadForOwnership,
            BusWriteInvalidate,
            BusWriteBack,
            OwnerSupply,
            Invalidation,
        ];
        let mut seen = std::collections::HashSet::new();
        for e in all {
            let (mode, slot) = e.mode_slot();
            assert!(slot < 16, "{e}: slot out of range");
            assert!(seen.insert((mode.index(), slot)), "{e}: duplicate slot");
        }
    }

    #[test]
    fn hardware_mode_only_counts_selected_set() {
        let mut pc = PerfCounters::new(CounterMode::References);
        pc.record(CounterEvent::Read);
        pc.record(CounterEvent::DirtyFault); // not in the selected set
        assert_eq!(pc.total(CounterEvent::Read), 1);
        assert_eq!(pc.total(CounterEvent::DirtyFault), 0);
        pc.set_mode(CounterMode::VirtualMemory);
        pc.record(CounterEvent::DirtyFault);
        assert_eq!(pc.total(CounterEvent::DirtyFault), 1);
    }

    #[test]
    fn promiscuous_mode_counts_everything() {
        let mut pc = PerfCounters::promiscuous();
        pc.record(CounterEvent::Read);
        pc.record(CounterEvent::DirtyFault);
        pc.record(CounterEvent::BusReadShared);
        assert_eq!(pc.total(CounterEvent::Read), 1);
        assert_eq!(pc.total(CounterEvent::DirtyFault), 1);
        assert_eq!(pc.total(CounterEvent::BusReadShared), 1);
    }

    #[test]
    fn architectural_registers_wrap_at_32_bits() {
        let mut pc = PerfCounters::new(CounterMode::References);
        pc.record_n(CounterEvent::IFetch, (1u64 << 32) + 5);
        assert_eq!(pc.read_slot(0), 5, "32-bit register wraps");
        assert_eq!(pc.total(CounterEvent::IFetch), (1u64 << 32) + 5);
        assert_eq!(pc.wrapped_total(CounterEvent::IFetch), 5);
    }

    #[test]
    fn reset_clears_everything() {
        let mut pc = PerfCounters::promiscuous();
        pc.record(CounterEvent::Write);
        pc.reset();
        assert_eq!(pc.total(CounterEvent::Write), 0);
        assert_eq!(pc.read_slot(2), 0);
    }

    #[test]
    #[should_panic(expected = "16 counters")]
    fn slot_out_of_range_panics() {
        let pc = PerfCounters::promiscuous();
        let _ = pc.read_slot(16);
    }

    #[test]
    fn mode_event_listings_are_dense_from_slot_zero() {
        for mode in CounterMode::ALL {
            let events = mode.events();
            assert!(!events.is_empty(), "{mode} has no events");
            for (i, e) in events.iter().enumerate() {
                assert_eq!(e.mode_slot(), (mode, i), "{mode} slot {i}");
            }
        }
    }

    #[test]
    fn dump_lists_every_wired_event() {
        let mut pc = PerfCounters::promiscuous();
        pc.record(CounterEvent::DirtyFault);
        let text = pc.dump();
        assert!(text.contains("DirtyFault"));
        assert!(text.contains("(selected)"));
        for mode in CounterMode::ALL {
            assert!(text.contains(&format!("mode {mode}")));
        }
    }

    #[test]
    fn mode_switch_preserves_registers() {
        let mut pc = PerfCounters::new(CounterMode::References);
        pc.record(CounterEvent::Read);
        pc.set_mode(CounterMode::Translation);
        pc.set_mode(CounterMode::References);
        assert_eq!(pc.read_slot(1), 1);
    }
}
