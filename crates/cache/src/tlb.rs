//! A translation lookaside buffer — the mechanism SPUR deliberately
//! omits.
//!
//! The paper's framing (Section 1): "Systems with physical address caches
//! usually use a translation lookaside buffer... The TLB provides a
//! convenient place to cache the reference and dirty bits... Since the
//! TLB must be accessed on each reference, checking the bits incurs no
//! additional overhead." This module implements that conventional
//! baseline: a fully-associative, LRU, per-page TLB whose entries carry
//! R/D state alongside the frame number.

use core::fmt;

use spur_types::{Pfn, Protection, Vpn};

/// One TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The virtual page.
    pub vpn: Vpn,
    /// Its frame.
    pub pfn: Pfn,
    /// Protection, checked on every access.
    pub prot: Protection,
    /// Referenced bit (hardware-set on access in this baseline).
    pub referenced: bool,
    /// Dirty bit (set by the software handler on the first write).
    pub dirty: bool,
}

/// A fully-associative LRU TLB.
///
/// ```
/// use spur_cache::tlb::Tlb;
/// use spur_types::{Pfn, Protection, Vpn};
///
/// let mut tlb = Tlb::new(2);
/// tlb.insert(Vpn::new(1), Pfn::new(10), Protection::ReadWrite);
/// tlb.insert(Vpn::new(2), Pfn::new(20), Protection::ReadWrite);
/// assert!(tlb.probe(Vpn::new(1)).is_some()); // touches 1: now MRU
/// tlb.insert(Vpn::new(3), Pfn::new(30), Protection::ReadWrite);
/// assert!(tlb.probe(Vpn::new(2)).is_none(), "LRU entry evicted");
/// assert!(tlb.probe(Vpn::new(1)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    /// Entries with their last-touch stamp.
    entries: Vec<(TlbEntry, u64)>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries (64 was typical of the era).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Probes for `vpn`, updating recency. Returns a mutable handle so
    /// the caller can set R/D bits "for free", as the hardware would.
    pub fn probe(&mut self, vpn: Vpn) -> Option<&mut TlbEntry> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.iter_mut().find(|(e, _)| e.vpn == vpn) {
            Some((entry, stamp)) => {
                *stamp = clock;
                self.hits += 1;
                Some(entry)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a fresh entry (clean, referenced) for `vpn`, evicting the
    /// LRU entry if full. Returns the evicted entry, whose R/D state the
    /// OS would write back to the PTE.
    pub fn insert(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) -> Option<TlbEntry> {
        self.clock += 1;
        debug_assert!(
            !self.entries.iter().any(|(e, _)| e.vpn == vpn),
            "inserting duplicate TLB entry for {vpn}"
        );
        let entry = TlbEntry {
            vpn,
            pfn,
            prot,
            referenced: true,
            dirty: false,
        };
        let evicted = if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(i, _)| i)
                .expect("TLB is full, so nonempty");
            Some(self.entries.swap_remove(lru).0)
        } else {
            None
        };
        self.entries.push((entry, self.clock));
        evicted
    }

    /// Invalidates the entry for `vpn` (OS shootdown on unmap/reclaim).
    /// Returns it for PTE write-back.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        let i = self.entries.iter().position(|(e, _)| e.vpn == vpn)?;
        Some(self.entries.swap_remove(i).0)
    }

    /// Drops every entry (context-switch flush on untagged TLBs).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Probe hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probe misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all probes.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for Tlb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tlb[{}/{} entries, {:.1}% hit]",
            self.entries.len(),
            self.capacity,
            100.0 * self.hit_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW: Protection = Protection::ReadWrite;

    #[test]
    fn probe_miss_then_insert_then_hit() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.probe(Vpn::new(7)).is_none());
        tlb.insert(Vpn::new(7), Pfn::new(3), RW);
        let e = tlb.probe(Vpn::new(7)).unwrap();
        assert_eq!(e.pfn, Pfn::new(3));
        assert!(e.referenced, "fresh entries are referenced");
        assert!(!e.dirty);
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut tlb = Tlb::new(3);
        for i in 0..3 {
            tlb.insert(Vpn::new(i), Pfn::new(i as u32), RW);
        }
        // Touch 0 and 2; 1 becomes LRU.
        tlb.probe(Vpn::new(0));
        tlb.probe(Vpn::new(2));
        let evicted = tlb.insert(Vpn::new(9), Pfn::new(9), RW).unwrap();
        assert_eq!(evicted.vpn, Vpn::new(1));
    }

    #[test]
    fn dirty_state_survives_until_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(Vpn::new(1), Pfn::new(1), RW);
        tlb.probe(Vpn::new(1)).unwrap().dirty = true;
        tlb.insert(Vpn::new(2), Pfn::new(2), RW);
        let evicted = tlb.insert(Vpn::new(3), Pfn::new(3), RW).unwrap();
        assert_eq!(evicted.vpn, Vpn::new(1));
        assert!(evicted.dirty, "the OS writes D back to the PTE on eviction");
    }

    #[test]
    fn invalidate_removes_exactly_one_entry() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn::new(1), Pfn::new(1), RW);
        tlb.insert(Vpn::new(2), Pfn::new(2), RW);
        let gone = tlb.invalidate(Vpn::new(1)).unwrap();
        assert_eq!(gone.vpn, Vpn::new(1));
        assert!(tlb.probe(Vpn::new(1)).is_none());
        assert!(tlb.probe(Vpn::new(2)).is_some());
        assert!(tlb.invalidate(Vpn::new(1)).is_none());
    }

    #[test]
    fn flush_all_empties() {
        let mut tlb = Tlb::new(4);
        tlb.insert(Vpn::new(1), Pfn::new(1), RW);
        tlb.flush_all();
        assert!(tlb.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
