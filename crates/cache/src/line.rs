//! The cache line (block frame) format of Figure 3.2(b).
//!
//! ```text
//! +---+----------------------+----+---+---+----+
//! | V |   Virtual Tag        | PR | P | B | CS |
//! +---+----------------------+----+---+---+----+
//! PR = Protection (2 bits)     P = Page Dirty Bit
//! B  = Block Dirty Bit         CS = Coherency State (2 bits)
//! ```
//!
//! Two dirty bits coexist in each line and must not be confused:
//!
//! * the **block** dirty bit (`B`) says this 32-byte block was modified
//!   while in the cache and needs writing back on eviction — ordinary
//!   write-back cache bookkeeping;
//! * the **page** dirty bit copy (`P`) is a *cached copy of the PTE's page
//!   dirty bit*, checked by SPUR's hardware on every write so that setting
//!   the page dirty bit can be trapped to software. Because it is a copy,
//!   it can go stale when the PTE changes — the mechanism behind both
//!   excess faults (`FAULT` policy) and dirty-bit misses (`SPUR` policy).

use core::fmt;

use spur_types::{BlockNum, Protection};

use crate::coherence::CoherencyState;

/// Index of a line within the direct-mapped cache (0..4096 on the
/// prototype).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineIndex(pub usize);

impl fmt::Display for LineIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line{}", self.0)
    }
}

/// One cache line.
///
/// The simulator tracks metadata only (no data bytes): the full block
/// number serves as the virtual tag, and an extra `filled_by_write` flag
/// supports the paper's `N_w-hit` statistic ("blocks brought into cache by
/// a read that are later modified").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLine {
    /// Valid bit.
    pub valid: bool,
    /// The global virtual block held (tag + index together).
    pub block: BlockNum,
    /// Cached copy of the page's protection (`PR`).
    pub prot: Protection,
    /// Cached copy of the page dirty bit (`P`).
    pub page_dirty: bool,
    /// Block dirty bit (`B`): modified while cached, needs write-back.
    pub block_dirty: bool,
    /// Berkeley Ownership coherency state (`CS`).
    pub state: CoherencyState,
    /// Whether the fill that brought this block in was a write miss
    /// (simulator-only bookkeeping for the `N_w-hit` / `N_w-miss` split).
    pub filled_by_write: bool,
}

impl CacheLine {
    /// An invalid (empty) line.
    pub const fn empty() -> Self {
        CacheLine {
            valid: false,
            block: BlockNum::new(0),
            prot: Protection::None,
            page_dirty: false,
            block_dirty: false,
            state: CoherencyState::Invalid,
            filled_by_write: false,
        }
    }

    /// Does this valid line hold `block`?
    pub fn matches(&self, block: BlockNum) -> bool {
        self.valid && self.block == block
    }

    /// Renders the bit layout, used by the Figure 3.2 regenerator.
    pub fn render_layout(&self) -> String {
        format!(
            "+---+----------------+----+---+---+----+\n\
             | {} | tag {:#09x} | {} | {} | {} | {:>2} |\n\
             +---+----------------+----+---+---+----+\n\
             PR=Protection P=PageDirty B=BlockDirty CS=CoherencyState",
            u8::from(self.valid),
            self.block.index(),
            self.prot,
            u8::from(self.page_dirty),
            u8::from(self.block_dirty),
            self.state.bits(),
        )
    }
}

impl Default for CacheLine {
    fn default() -> Self {
        Self::empty()
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid {
            return write!(f, "line[invalid]");
        }
        write!(
            f,
            "line[{} pr={} P={} B={} cs={}]",
            self.block,
            self.prot,
            u8::from(self.page_dirty),
            u8::from(self.block_dirty),
            self.state,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_line_is_invalid() {
        let line = CacheLine::empty();
        assert!(!line.valid);
        assert!(
            !line.matches(BlockNum::new(0)),
            "invalid lines match nothing"
        );
        assert_eq!(line.state, CoherencyState::Invalid);
    }

    #[test]
    fn matches_requires_valid_and_equal_tag() {
        let mut line = CacheLine::empty();
        line.valid = true;
        line.block = BlockNum::new(42);
        assert!(line.matches(BlockNum::new(42)));
        assert!(!line.matches(BlockNum::new(43)));
    }

    #[test]
    fn page_and_block_dirty_are_independent() {
        let mut line = CacheLine::empty();
        line.page_dirty = true;
        assert!(!line.block_dirty);
        line.block_dirty = true;
        line.page_dirty = false;
        assert!(line.block_dirty);
    }

    #[test]
    fn layout_render_mentions_both_dirty_bits() {
        let text = CacheLine::empty().render_layout();
        assert!(text.contains("PageDirty"));
        assert!(text.contains("BlockDirty"));
        assert!(text.contains("CoherencyState"));
    }

    #[test]
    fn display_shows_invalid_and_valid_forms() {
        let mut line = CacheLine::empty();
        assert_eq!(format!("{line}"), "line[invalid]");
        line.valid = true;
        assert!(format!("{line}").contains("pr="));
    }
}
