//! The direct-mapped virtual-address cache proper.
//!
//! Geometry (Table 2.1): 128 KB capacity, 32-byte blocks, direct mapped —
//! 4096 lines, indexed by bits [5, 17) of the global virtual address. A
//! useful consequence: the 128 blocks of one 4 KB page map to 128
//! *consecutive* cache lines, which is what makes page flushes a bounded
//! 128-probe loop (Section 3.2's `t_flush` estimate).
//!
//! The simulator tracks metadata only; no data bytes are stored. Fills
//! record whether they were triggered by a write (for the paper's
//! `N_w-miss` / `N_w-hit` accounting) and copy the PTE's protection and
//! page-dirty bit into the line — the copies whose staleness drives the
//! whole study.

use core::fmt;

use spur_types::{BlockNum, GlobalAddr, Protection, Vpn, BLOCKS_PER_PAGE, CACHE_LINES};

use crate::coherence::CoherencyState;
use crate::line::{CacheLine, LineIndex};

/// Result of probing the cache for an address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeResult {
    /// Whether the addressed block is present.
    pub hit: bool,
    /// The (unique, direct-mapped) line the block maps to.
    pub index: LineIndex,
}

/// A block displaced from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The displaced block.
    pub block: BlockNum,
    /// Whether it was modified and required a write-back.
    pub block_dirty: bool,
}

/// Counters returned by page-flush operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Lines probed.
    pub probed: u64,
    /// Valid lines actually flushed (invalidated).
    pub flushed: u64,
    /// Flushed lines that were dirty and had to be written back.
    pub written_back: u64,
}

/// Cumulative cache activity statistics.
///
/// ```
/// use spur_cache::cache::VirtualCache;
/// use spur_types::{GlobalAddr, Protection};
///
/// let mut c = VirtualCache::prototype();
/// c.fill_for_write(GlobalAddr::new(0x40), Protection::ReadWrite, false);
/// c.fill_for_read(GlobalAddr::new(0x40 + (128 << 10)), Protection::ReadWrite, false);
/// let s = c.stats();
/// assert_eq!((s.fills, s.evictions, s.writebacks), (2, 1, 1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block fills (by read or write miss).
    pub fills: u64,
    /// Valid blocks displaced by fills.
    pub evictions: u64,
    /// Displaced blocks that were dirty (write-back traffic).
    pub writebacks: u64,
}

/// The direct-mapped virtual-address cache.
///
/// ```
/// use spur_cache::cache::VirtualCache;
/// use spur_types::{GlobalAddr, Protection, CACHE_LINES};
///
/// let mut c = VirtualCache::prototype();
/// assert_eq!(c.num_lines() as u64, CACHE_LINES);
///
/// let a = GlobalAddr::new(0x10_0000);
/// c.fill_for_write(a, Protection::ReadWrite, false);
/// let probe = c.probe(a);
/// assert!(probe.hit);
/// assert!(c.line(probe.index).block_dirty);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualCache {
    lines: Vec<CacheLine>,
    mask: u64,
    stats: CacheStats,
}

impl VirtualCache {
    /// Creates the prototype's 4096-line cache.
    pub fn prototype() -> Self {
        Self::with_lines(CACHE_LINES as usize)
    }

    /// Creates a cache with `n` lines (for scaling studies).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or is smaller than one page
    /// (128 lines).
    pub fn with_lines(n: usize) -> Self {
        assert!(n.is_power_of_two(), "line count must be a power of two");
        assert!(
            n as u64 >= BLOCKS_PER_PAGE,
            "cache must hold at least one page"
        );
        VirtualCache {
            lines: vec![CacheLine::empty(); n],
            mask: n as u64 - 1,
            stats: CacheStats::default(),
        }
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// The line a block maps to.
    pub fn index_of(&self, block: BlockNum) -> LineIndex {
        LineIndex((block.index() & self.mask) as usize)
    }

    /// Probes for `addr`'s block.
    pub fn probe(&self, addr: GlobalAddr) -> ProbeResult {
        let block = addr.block();
        let index = self.index_of(block);
        ProbeResult {
            hit: self.lines[index.0].matches(block),
            index,
        }
    }

    /// Finds the line holding `block`, if cached.
    pub fn find(&self, block: BlockNum) -> Option<LineIndex> {
        let index = self.index_of(block);
        self.lines[index.0].matches(block).then_some(index)
    }

    /// Immutable access to a line.
    pub fn line(&self, index: LineIndex) -> &CacheLine {
        &self.lines[index.0]
    }

    /// Mutable access to a line (used by coherence and policy code).
    pub fn line_mut(&mut self, index: LineIndex) -> &mut CacheLine {
        &mut self.lines[index.0]
    }

    /// Fills `addr`'s block after a read (or instruction-fetch) miss,
    /// copying `prot` and `page_dirty` from the PTE into the line.
    ///
    /// Returns the displaced block, if the line held one.
    pub fn fill_for_read(
        &mut self,
        addr: GlobalAddr,
        prot: Protection,
        page_dirty: bool,
    ) -> Option<EvictedBlock> {
        self.fill(addr, prot, page_dirty, false)
    }

    /// Fills `addr`'s block after a write miss. The new line is born dirty
    /// and exclusively owned.
    pub fn fill_for_write(
        &mut self,
        addr: GlobalAddr,
        prot: Protection,
        page_dirty: bool,
    ) -> Option<EvictedBlock> {
        self.fill(addr, prot, page_dirty, true)
    }

    fn fill(
        &mut self,
        addr: GlobalAddr,
        prot: Protection,
        page_dirty: bool,
        by_write: bool,
    ) -> Option<EvictedBlock> {
        let block = addr.block();
        let index = self.index_of(block);
        let line = &mut self.lines[index.0];
        debug_assert!(
            !line.matches(block),
            "filling a block that is already cached: {block}"
        );
        let evicted = if line.valid {
            let ev = EvictedBlock {
                block: line.block,
                block_dirty: line.block_dirty,
            };
            self.stats.evictions += 1;
            if ev.block_dirty {
                self.stats.writebacks += 1;
            }
            Some(ev)
        } else {
            None
        };
        *line = CacheLine {
            valid: true,
            block,
            prot,
            page_dirty,
            block_dirty: by_write,
            state: if by_write {
                CoherencyState::OwnedExclusive
            } else {
                CoherencyState::UnOwned
            },
            filled_by_write: by_write,
        };
        self.stats.fills += 1;
        evicted
    }

    /// Flushes the single line holding `addr`'s block, if present.
    /// Returns the flushed block.
    pub fn flush_block(&mut self, addr: GlobalAddr) -> Option<EvictedBlock> {
        let index = self.find(addr.block())?;
        let line = &mut self.lines[index.0];
        let ev = EvictedBlock {
            block: line.block,
            block_dirty: line.block_dirty,
        };
        if ev.block_dirty {
            self.stats.writebacks += 1;
        }
        *line = CacheLine::empty();
        Some(ev)
    }

    /// Flushes page `vpn` with a **tag-checked** flush: probe each of the
    /// page's 128 line slots and flush only lines whose tag belongs to the
    /// page. This is the "generic" operation Section 3.2 assumes when
    /// costing `t_flush` at ~500 cycles.
    pub fn flush_page_tag_checked(&mut self, vpn: Vpn) -> FlushStats {
        let mut stats = FlushStats::default();
        for i in 0..BLOCKS_PER_PAGE {
            let block = vpn.block(i);
            let index = self.index_of(block);
            stats.probed += 1;
            let line = &mut self.lines[index.0];
            if line.matches(block) {
                stats.flushed += 1;
                if line.block_dirty {
                    stats.written_back += 1;
                    self.stats.writebacks += 1;
                }
                *line = CacheLine::empty();
            }
        }
        stats
    }

    /// Flushes page `vpn` with SPUR's actual **tag-blind** flush: each of
    /// the 128 flush operations empties whatever block occupies the line,
    /// "substantially increasing the bus traffic" (Section 3.2) because
    /// blocks from *other* pages sharing those lines are flushed too.
    pub fn flush_page_tag_blind(&mut self, vpn: Vpn) -> FlushStats {
        let mut stats = FlushStats::default();
        for i in 0..BLOCKS_PER_PAGE {
            let index = self.index_of(vpn.block(i));
            stats.probed += 1;
            let line = &mut self.lines[index.0];
            if line.valid {
                stats.flushed += 1;
                if line.block_dirty {
                    stats.written_back += 1;
                    self.stats.writebacks += 1;
                }
                *line = CacheLine::empty();
            }
        }
        stats
    }

    /// Invalidates every line without write-backs (power-on state).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            *line = CacheLine::empty();
        }
    }

    /// Counts how many of page `vpn`'s blocks are currently cached.
    pub fn resident_blocks_of_page(&self, vpn: Vpn) -> u64 {
        (0..BLOCKS_PER_PAGE)
            .filter(|&i| {
                let block = vpn.block(i);
                self.lines[self.index_of(block).0].matches(block)
            })
            .count() as u64
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Number of valid lines whose block lives in global segment `seg` —
    /// e.g. segment 255 counts the PTE blocks competing with data.
    pub fn occupancy_of_segment(&self, seg: u64) -> usize {
        self.lines
            .iter()
            .filter(|l| l.valid && l.block.base_addr().global_segment() == seg)
            .count()
    }

    /// Cumulative fill/eviction/write-back statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Iterates over all valid lines.
    pub fn iter_valid(&self) -> impl Iterator<Item = (LineIndex, &CacheLine)> + '_ {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid)
            .map(|(i, l)| (LineIndex(i), l))
    }
}

impl fmt::Display for VirtualCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache[{} lines, {} valid, {} fills, {} writebacks]",
            self.num_lines(),
            self.occupancy(),
            self.stats.fills,
            self.stats.writebacks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RW: Protection = Protection::ReadWrite;

    fn addr(raw: u64) -> GlobalAddr {
        GlobalAddr::new(raw)
    }

    #[test]
    fn probe_miss_then_fill_then_hit() {
        let mut c = VirtualCache::prototype();
        let a = addr(0x1234_5678 & !0x1f);
        assert!(!c.probe(a).hit);
        assert!(c.fill_for_read(a, RW, false).is_none());
        assert!(c.probe(a).hit);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn same_page_blocks_map_to_consecutive_lines() {
        let c = VirtualCache::prototype();
        let vpn = Vpn::new(77);
        let first = c.index_of(vpn.block(0)).0;
        for i in 0..128 {
            assert_eq!(c.index_of(vpn.block(i)).0, first + i as usize);
        }
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut c = VirtualCache::prototype();
        // Two addresses 128 KB apart conflict in a 128 KB direct-mapped
        // cache.
        let a = addr(0x0_0040);
        let b = addr(0x2_0040);
        c.fill_for_write(a, RW, false);
        let ev = c.fill_for_read(b, RW, false).expect("must evict");
        assert_eq!(ev.block, a.block());
        assert!(
            ev.block_dirty,
            "written block must be flagged for write-back"
        );
        assert!(!c.probe(a).hit);
        assert!(c.probe(b).hit);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn fill_copies_pte_metadata() {
        let mut c = VirtualCache::prototype();
        let a = addr(0x8000);
        c.fill_for_read(a, Protection::ReadOnly, true);
        let line = *c.line(c.probe(a).index);
        assert_eq!(line.prot, Protection::ReadOnly);
        assert!(line.page_dirty);
        assert!(!line.block_dirty);
        assert!(!line.filled_by_write);
        assert_eq!(line.state, CoherencyState::UnOwned);
    }

    #[test]
    fn write_fill_is_born_dirty_and_owned() {
        let mut c = VirtualCache::prototype();
        let a = addr(0x8000);
        c.fill_for_write(a, RW, false);
        let line = *c.line(c.probe(a).index);
        assert!(line.block_dirty);
        assert!(line.filled_by_write);
        assert_eq!(line.state, CoherencyState::OwnedExclusive);
    }

    #[test]
    fn flush_block_removes_and_reports_dirtiness() {
        let mut c = VirtualCache::prototype();
        let a = addr(0x8000);
        c.fill_for_write(a, RW, false);
        let ev = c.flush_block(a).unwrap();
        assert!(ev.block_dirty);
        assert!(!c.probe(a).hit);
        assert!(c.flush_block(a).is_none(), "second flush finds nothing");
    }

    #[test]
    fn tag_checked_page_flush_spares_other_pages() {
        let mut c = VirtualCache::prototype();
        let vpn = Vpn::new(4);
        // Cache 3 blocks of the target page and one block of the page that
        // aliases to the same lines (32 pages = 128 KB away).
        c.fill_for_read(addr(vpn.block(0).base_addr().raw()), RW, false);
        c.fill_for_read(addr(vpn.block(5).base_addr().raw()), RW, false);
        c.fill_for_write(addr(vpn.block(9).base_addr().raw()), RW, false);
        let alias = Vpn::new(4 + 32);
        c.fill_for_read(addr(alias.block(70).base_addr().raw()), RW, false);

        let stats = c.flush_page_tag_checked(vpn);
        assert_eq!(stats.probed, 128);
        assert_eq!(stats.flushed, 3);
        assert_eq!(stats.written_back, 1);
        assert_eq!(c.resident_blocks_of_page(vpn), 0);
        assert_eq!(c.resident_blocks_of_page(alias), 1, "alias page survives");
    }

    #[test]
    fn tag_blind_page_flush_collaterally_flushes_aliases() {
        let mut c = VirtualCache::prototype();
        let vpn = Vpn::new(4);
        let alias = Vpn::new(4 + 32);
        c.fill_for_read(addr(vpn.block(0).base_addr().raw()), RW, false);
        c.fill_for_read(addr(alias.block(70).base_addr().raw()), RW, false);

        let stats = c.flush_page_tag_blind(vpn);
        assert_eq!(stats.probed, 128);
        assert_eq!(stats.flushed, 2, "alias block is collateral damage");
        assert_eq!(c.resident_blocks_of_page(alias), 0);
    }

    #[test]
    fn invalidate_all_resets_occupancy() {
        let mut c = VirtualCache::prototype();
        for i in 0..10 {
            c.fill_for_read(addr(i * 32), RW, false);
        }
        assert_eq!(c.occupancy(), 10);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.iter_valid().count(), 0);
    }

    #[test]
    fn segment_occupancy_counts_only_that_segment() {
        let mut c = VirtualCache::prototype();
        // Segment bases alias modulo the cache size, so keep the three
        // blocks on distinct line indices.
        c.fill_for_read(GlobalAddr::from_parts(1, 0), RW, false);
        c.fill_for_read(GlobalAddr::from_parts(1, 64), RW, false);
        c.fill_for_read(GlobalAddr::from_parts(255, 128), RW, true);
        assert_eq!(c.occupancy_of_segment(1), 2);
        assert_eq!(c.occupancy_of_segment(255), 1);
        assert_eq!(c.occupancy_of_segment(7), 0);
    }

    #[test]
    fn small_cache_for_scaling_studies() {
        let c = VirtualCache::with_lines(256);
        assert_eq!(c.num_lines(), 256);
        // Blocks 256 apart conflict.
        assert_eq!(
            c.index_of(BlockNum::new(3)),
            c.index_of(BlockNum::new(3 + 256))
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = VirtualCache::with_lines(1000);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn sub_page_cache_panics() {
        let _ = VirtualCache::with_lines(64);
    }
}
