//! The expected-shape assertion language.
//!
//! A scenario asserts the *shape* its results must have, not exact
//! numbers: counter ranges per cell, cross-cell relations ("FAULT
//! dirty faults ≥ MIN dirty faults at every memory size"), and
//! monotonicity over an axis. Assertions evaluate against the same
//! job-artifact documents the harness writes to disk, addressed by
//! dotted metric paths (`data.events.n_ds`), so a passing scenario is
//! a machine-checked claim about the committed artifacts — the CI gate
//! the ablation binaries never had.

use spur_harness::Json;

use crate::config::Axis;

/// How a relation compares its two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    /// `left >= right`.
    Ge,
    /// `left <= right`.
    Le,
    /// `left > right`.
    Gt,
    /// `left < right`.
    Lt,
    /// `left == right` (exact; artifacts are deterministic).
    Eq,
}

impl RelOp {
    fn as_str(self) -> &'static str {
        match self {
            RelOp::Ge => ">=",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Lt => "<",
            RelOp::Eq => "==",
        }
    }

    fn holds(self, left: f64, right: f64) -> bool {
        match self {
            RelOp::Ge => left >= right,
            RelOp::Le => left <= right,
            RelOp::Gt => left > right,
            RelOp::Lt => left < right,
            RelOp::Eq => left == right,
        }
    }
}

/// Which direction a `monotonic` assertion expects along its axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Each value ≥ its predecessor.
    Nondecreasing,
    /// Each value ≤ its predecessor.
    Nonincreasing,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::Nondecreasing => "nondecreasing",
            Direction::Nonincreasing => "nonincreasing",
        }
    }
}

/// A coordinate filter: axis name → required value. A cell matches
/// when every listed axis has the listed value; unlisted axes are
/// unconstrained.
pub type Selector = Vec<(String, Json)>;

/// One expected-shape assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// Every matching cell's metric lies in `[min, max]`.
    Range {
        /// Assertion name (shown in verdicts and failure reports).
        name: String,
        /// Dotted path into the job-artifact document.
        metric: String,
        /// Cells the assertion applies to (empty = all cells).
        filter: Selector,
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Inclusive upper bound.
        max: Option<f64>,
    },
    /// For every combination of the `over` axes, the metric of the
    /// unique `left` cell relates to the unique `right` cell.
    Relation {
        /// Assertion name.
        name: String,
        /// Dotted path into the job-artifact document.
        metric: String,
        /// Comparison operator.
        op: RelOp,
        /// Selector pinning the left side (e.g. `{"dirty":"FAULT"}`).
        left: Selector,
        /// Selector pinning the right side (e.g. `{"dirty":"MIN"}`).
        right: Selector,
        /// Axes the comparison quantifies over ("at every memory
        /// size"). Must cover all axes the selectors leave free.
        over: Vec<String>,
    },
    /// Along `axis` (in declared order), the metric never moves
    /// against `direction`, within every group of cells that agree on
    /// all other axes.
    Monotonic {
        /// Assertion name.
        name: String,
        /// Dotted path into the job-artifact document.
        metric: String,
        /// The axis to walk.
        axis: String,
        /// Expected direction.
        direction: Direction,
        /// Cells the assertion applies to (empty = all cells).
        filter: Selector,
    },
}

impl Assertion {
    /// The assertion's name, used in verdicts and CI output.
    pub fn name(&self) -> &str {
        match self {
            Assertion::Range { name, .. }
            | Assertion::Relation { name, .. }
            | Assertion::Monotonic { name, .. } => name,
        }
    }
}

/// One evaluated cell: its stable job key, its axis coordinates, and
/// its full artifact document (`{schema_version, key, status, data,
/// ...}` — the exact bytes-on-disk shape).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The harness job key.
    pub key: String,
    /// Axis coordinates, in axis-declaration order.
    pub coords: Vec<(String, Json)>,
    /// The job-artifact document.
    pub doc: Json,
}

impl CellResult {
    fn coord(&self, axis: &str) -> Option<&Json> {
        self.coords.iter().find(|(a, _)| a == axis).map(|(_, v)| v)
    }

    fn matches(&self, selector: &Selector) -> bool {
        selector
            .iter()
            .all(|(axis, want)| self.coord(axis) == Some(want))
    }

    fn coords_str(&self) -> String {
        let parts: Vec<String> = self
            .coords
            .iter()
            .map(|(a, v)| format!("{a}={}", v.encode()))
            .collect();
        parts.join(", ")
    }
}

/// One assertion's evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The assertion name.
    pub name: String,
    /// Whether every check passed.
    pub passed: bool,
    /// One message per violated check, with observed values.
    pub failures: Vec<String>,
}

impl Verdict {
    /// Serializes for scenario-level artifacts and the serve API.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::Str(self.name.clone())),
            ("passed", Json::Bool(self.passed)),
            (
                "failures",
                Json::Arr(self.failures.iter().map(|f| Json::Str(f.clone())).collect()),
            ),
        ])
    }
}

/// Follows a dotted path (`data.events.n_ds`) into a document.
pub fn metric_path<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = doc;
    for seg in path.split('.') {
        match cur {
            Json::Obj(fields) => {
                cur = fields.iter().find(|(k, _)| k == seg).map(|(_, v)| v)?;
            }
            _ => return None,
        }
    }
    Some(cur)
}

fn as_number(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

/// Reads `metric` from a cell's document as a number, or explains why
/// it could not.
fn read_metric(cell: &CellResult, metric: &str) -> Result<f64, String> {
    match metric_path(&cell.doc, metric) {
        None => Err(format!(
            "cell {}: metric {metric:?} not present in artifact",
            cell.key
        )),
        Some(v) => as_number(v).ok_or_else(|| {
            format!(
                "cell {}: metric {metric:?} is {} — not a number",
                cell.key,
                v.encode()
            )
        }),
    }
}

/// Evaluates every assertion against the cell results. Cells whose
/// jobs failed should not be passed in — the runner reports those as
/// cell failures, which already fail the scenario.
pub fn evaluate(assertions: &[Assertion], cells: &[CellResult]) -> Vec<Verdict> {
    assertions.iter().map(|a| evaluate_one(a, cells)).collect()
}

fn evaluate_one(assertion: &Assertion, cells: &[CellResult]) -> Verdict {
    let mut failures = Vec::new();
    match assertion {
        Assertion::Range {
            metric,
            filter,
            min,
            max,
            ..
        } => {
            let mut matched = 0usize;
            for cell in cells.iter().filter(|c| c.matches(filter)) {
                matched += 1;
                match read_metric(cell, metric) {
                    Err(e) => failures.push(e),
                    Ok(value) => {
                        if let Some(lo) = min {
                            if value < *lo {
                                failures.push(format!(
                                    "cell {} ({}): {metric} = {value} < min {lo}",
                                    cell.key,
                                    cell.coords_str()
                                ));
                            }
                        }
                        if let Some(hi) = max {
                            if value > *hi {
                                failures.push(format!(
                                    "cell {} ({}): {metric} = {value} > max {hi}",
                                    cell.key,
                                    cell.coords_str()
                                ));
                            }
                        }
                    }
                }
            }
            if matched == 0 {
                failures.push("no cells matched the assertion's filter".into());
            }
        }
        Assertion::Relation {
            metric,
            op,
            left,
            right,
            over,
            ..
        } => {
            // Quantify: one comparison per distinct combination of
            // the `over` axes present among the cells.
            let mut combos: Vec<Vec<(String, Json)>> = Vec::new();
            for cell in cells {
                let combo: Vec<(String, Json)> = over
                    .iter()
                    .filter_map(|axis| cell.coord(axis).map(|v| (axis.clone(), v.clone())))
                    .collect();
                if combo.len() == over.len() && !combos.contains(&combo) {
                    combos.push(combo);
                }
            }
            if combos.is_empty() {
                failures.push(format!("no cells carry the quantified axes {over:?}"));
            }
            for combo in combos {
                let pick = |side: &Selector, label: &str| -> Result<f64, String> {
                    let matching: Vec<&CellResult> = cells
                        .iter()
                        .filter(|c| c.matches(side) && c.matches(&combo))
                        .collect();
                    let at = || {
                        let parts: Vec<String> = combo
                            .iter()
                            .map(|(a, v)| format!("{a}={}", v.encode()))
                            .collect();
                        parts.join(", ")
                    };
                    match matching.as_slice() {
                        [] => Err(format!("{label} side matched no cell at {}", at())),
                        [one] => read_metric(one, metric),
                        many => Err(format!(
                            "{label} side is ambiguous at {} ({} cells)",
                            at(),
                            many.len()
                        )),
                    }
                };
                match (pick(left, "left"), pick(right, "right")) {
                    (Ok(l), Ok(r)) => {
                        if !op.holds(l, r) {
                            let at: Vec<String> = combo
                                .iter()
                                .map(|(a, v)| format!("{a}={}", v.encode()))
                                .collect();
                            failures.push(format!(
                                "at {}: {metric} violates left {} right ({l} vs {r})",
                                at.join(", "),
                                op.as_str()
                            ));
                        }
                    }
                    (l, r) => {
                        if let Err(e) = l {
                            failures.push(e);
                        }
                        if let Err(e) = r {
                            failures.push(e);
                        }
                    }
                }
            }
        }
        Assertion::Monotonic {
            metric,
            axis,
            direction,
            filter,
            ..
        } => {
            // Group cells that agree on every axis except the walked
            // one, preserving their axis-declaration order within the
            // group (cells arrive in expansion order, which follows
            // declared axis-value order).
            let eligible: Vec<&CellResult> = cells
                .iter()
                .filter(|c| c.matches(filter) && c.coord(axis).is_some())
                .collect();
            if eligible.is_empty() {
                failures.push(format!(
                    "no cells matched the filter and carry axis {axis:?}"
                ));
            }
            // One group per combination of the non-swept axes.
            type Group<'a> = (Vec<(String, Json)>, Vec<&'a CellResult>);
            let mut groups: Vec<Group> = Vec::new();
            for cell in eligible {
                let rest: Vec<(String, Json)> = cell
                    .coords
                    .iter()
                    .filter(|(a, _)| a != axis)
                    .cloned()
                    .collect();
                match groups.iter_mut().find(|(key, _)| *key == rest) {
                    Some((_, members)) => members.push(cell),
                    None => groups.push((rest, vec![cell])),
                }
            }
            for (rest, members) in groups {
                let mut prev: Option<(f64, &CellResult)> = None;
                for cell in members {
                    let value = match read_metric(cell, metric) {
                        Ok(v) => v,
                        Err(e) => {
                            failures.push(e);
                            continue;
                        }
                    };
                    if let Some((pv, pc)) = prev {
                        let ok = match direction {
                            Direction::Nondecreasing => value >= pv,
                            Direction::Nonincreasing => value <= pv,
                        };
                        if !ok {
                            let group: Vec<String> = rest
                                .iter()
                                .map(|(a, v)| format!("{a}={}", v.encode()))
                                .collect();
                            let at = if group.is_empty() {
                                String::new()
                            } else {
                                format!(" [{}]", group.join(", "))
                            };
                            failures.push(format!(
                                "{metric} not {} along {axis}{at}: {} -> {} ({pv} -> {value})",
                                direction.as_str(),
                                pc.coord(axis).map(|v| v.encode()).unwrap_or_default(),
                                cell.coord(axis).map(|v| v.encode()).unwrap_or_default(),
                            ));
                        }
                    }
                    prev = Some((value, cell));
                }
            }
        }
    }
    Verdict {
        name: assertion.name().to_string(),
        passed: failures.is_empty(),
        failures,
    }
}

// ---------------------------------------------------------------------------
// Parsing (strict, path-qualified — the same discipline as config.rs)
// ---------------------------------------------------------------------------

fn fields(doc: &Json) -> &[(String, Json)] {
    match doc {
        Json::Obj(fields) => fields,
        _ => &[],
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    fields(doc).iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn check_unknown(doc: &Json, path: &str, allowed: &[&str]) -> Result<(), String> {
    for (key, _) in fields(doc) {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "{path}: unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn str_field(doc: &Json, path: &str, key: &str) -> Result<String, String> {
    match field(doc, key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("{path}.{key}: must be a string")),
        None => Err(format!("{path}.{key}: missing required field")),
    }
}

fn num_field(doc: &Json, path: &str, key: &str) -> Result<Option<f64>, String> {
    match field(doc, key) {
        None => Ok(None),
        Some(v) => as_number(v)
            .map(Some)
            .ok_or_else(|| format!("{path}.{key}: must be a number")),
    }
}

/// Checks a metric path's spelling: non-empty dot-separated segments
/// of reasonable characters. Presence in the artifact is a runtime
/// question (evaluation reports missing metrics per cell).
fn check_metric(metric: &str, path: &str) -> Result<(), String> {
    let ok = !metric.is_empty()
        && metric.split('.').all(|seg| {
            !seg.is_empty() && seg.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        });
    if !ok {
        return Err(format!(
            "{path}: metric must be dotted identifier segments, got {metric:?}"
        ));
    }
    Ok(())
}

/// Parses a selector object (`{"dirty":"FAULT"}`) against the
/// scenario's declared axes: unknown axes and values not on the axis
/// are errors — a selector that can never match is a config bug.
fn parse_selector(doc: &Json, path: &str, axes: &[Axis]) -> Result<Selector, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(format!("{path}: must be an object of axis: value pairs"));
    }
    let mut selector = Vec::new();
    for (axis_name, want) in fields(doc) {
        let Some(axis) = axes.iter().find(|a| &a.name == axis_name) else {
            let known: Vec<&str> = axes.iter().map(|a| a.name.as_str()).collect();
            return Err(format!(
                "{path}.{axis_name}: not a matrix axis (axes: {})",
                known.join(", ")
            ));
        };
        // Accept the same spellings the matrix accepts (e.g. "fault"
        // for "FAULT") by comparing against canonical forms loosely:
        // exact match first, then case-insensitive for strings.
        let canonical = axis
            .values
            .iter()
            .find(|v| {
                *v == want
                    || matches!((v, want), (Json::Str(a), Json::Str(b))
                        if a.eq_ignore_ascii_case(b))
            })
            .cloned();
        let Some(value) = canonical else {
            return Err(format!(
                "{path}.{axis_name}: value {} is not on the axis",
                want.encode()
            ));
        };
        if selector.iter().any(|(a, _)| a == axis_name) {
            return Err(format!("{path}.{axis_name}: duplicate axis"));
        }
        selector.push((axis_name.clone(), value));
    }
    Ok(selector)
}

/// Parses the scenario's `assertions` array.
///
/// # Errors
///
/// Returns a path-qualified message for the first invalid assertion.
pub fn parse_assertions(doc: &Json, axes: &[Axis]) -> Result<Vec<Assertion>, String> {
    let Json::Arr(items) = doc else {
        return Err("assertions: must be an array".into());
    };
    let mut assertions: Vec<Assertion> = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let path = format!("assertions[{i}]");
        let assertion = parse_assertion(item, &path, axes)?;
        if assertions.iter().any(|a| a.name() == assertion.name()) {
            return Err(format!(
                "{path}.name: duplicate assertion name {:?}",
                assertion.name()
            ));
        }
        assertions.push(assertion);
    }
    Ok(assertions)
}

fn parse_assertion(doc: &Json, path: &str, axes: &[Axis]) -> Result<Assertion, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err(format!("{path}: must be an object"));
    }
    let kind = str_field(doc, path, "check")?;
    let name = str_field(doc, path, "name")?;
    if name.is_empty() {
        return Err(format!("{path}.name: must not be empty"));
    }
    let metric = str_field(doc, path, "metric")?;
    check_metric(&metric, &format!("{path}.metric"))?;
    match kind.as_str() {
        "range" => {
            check_unknown(
                doc,
                path,
                &["check", "name", "metric", "where", "min", "max"],
            )?;
            let filter = match field(doc, "where") {
                None => Vec::new(),
                Some(w) => parse_selector(w, &format!("{path}.where"), axes)?,
            };
            let min = num_field(doc, path, "min")?;
            let max = num_field(doc, path, "max")?;
            if min.is_none() && max.is_none() {
                return Err(format!("{path}: range needs min and/or max"));
            }
            if let (Some(lo), Some(hi)) = (min, max) {
                if lo > hi {
                    return Err(format!("{path}: min {lo} exceeds max {hi}"));
                }
            }
            Ok(Assertion::Range {
                name,
                metric,
                filter,
                min,
                max,
            })
        }
        "relation" => {
            check_unknown(
                doc,
                path,
                &["check", "name", "metric", "op", "left", "right", "over"],
            )?;
            let op = match str_field(doc, path, "op")?.as_str() {
                ">=" => RelOp::Ge,
                "<=" => RelOp::Le,
                ">" => RelOp::Gt,
                "<" => RelOp::Lt,
                "==" => RelOp::Eq,
                other => {
                    return Err(format!(
                        "{path}.op: unknown operator {other:?} (expected >=, <=, >, <, ==)"
                    ))
                }
            };
            let left = parse_selector(
                field(doc, "left").ok_or_else(|| format!("{path}.left: missing required field"))?,
                &format!("{path}.left"),
                axes,
            )?;
            let right = parse_selector(
                field(doc, "right")
                    .ok_or_else(|| format!("{path}.right: missing required field"))?,
                &format!("{path}.right"),
                axes,
            )?;
            if left.is_empty() || right.is_empty() {
                return Err(format!(
                    "{path}: left and right must each pin at least one axis"
                ));
            }
            let over = match field(doc, "over") {
                None => Vec::new(),
                Some(Json::Arr(items)) => {
                    let mut over = Vec::with_capacity(items.len());
                    for (j, v) in items.iter().enumerate() {
                        let Json::Str(axis) = v else {
                            return Err(format!("{path}.over[{j}]: must be an axis name"));
                        };
                        if !axes.iter().any(|a| &a.name == axis) {
                            return Err(format!("{path}.over[{j}]: {axis:?} is not a matrix axis"));
                        }
                        if over.contains(axis) {
                            return Err(format!("{path}.over[{j}]: duplicate {axis:?}"));
                        }
                        over.push(axis.clone());
                    }
                    over
                }
                Some(_) => return Err(format!("{path}.over: must be an array of axis names")),
            };
            // Every axis must be pinned by both selectors or
            // quantified — otherwise "the unique left cell" is not
            // unique and the comparison is ill-posed.
            for axis in axes {
                let pinned = |s: &Selector| s.iter().any(|(a, _)| *a == axis.name);
                let covered = (pinned(&left) && pinned(&right)) || over.contains(&axis.name);
                if !covered && axis.values.len() > 1 {
                    return Err(format!(
                        "{path}: axis {:?} is neither pinned by left+right nor listed in \
                         over — the compared cells would be ambiguous",
                        axis.name
                    ));
                }
            }
            Ok(Assertion::Relation {
                name,
                metric,
                op,
                left,
                right,
                over,
            })
        }
        "monotonic" => {
            check_unknown(
                doc,
                path,
                &["check", "name", "metric", "axis", "direction", "where"],
            )?;
            let axis = str_field(doc, path, "axis")?;
            if !axes.iter().any(|a| a.name == axis) {
                return Err(format!("{path}.axis: {axis:?} is not a matrix axis"));
            }
            let direction = match str_field(doc, path, "direction")?.as_str() {
                "nondecreasing" => Direction::Nondecreasing,
                "nonincreasing" => Direction::Nonincreasing,
                other => {
                    return Err(format!(
                        "{path}.direction: unknown direction {other:?} \
                         (expected nondecreasing|nonincreasing)"
                    ))
                }
            };
            let filter = match field(doc, "where") {
                None => Vec::new(),
                Some(w) => parse_selector(w, &format!("{path}.where"), axes)?,
            };
            Ok(Assertion::Monotonic {
                name,
                metric,
                axis,
                direction,
                filter,
            })
        }
        other => Err(format!(
            "{path}.check: unknown check {other:?} (expected range|relation|monotonic)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_obs::validate::parse;

    fn axes() -> Vec<Axis> {
        vec![
            Axis {
                name: "mem_mb".into(),
                values: vec![Json::UInt(5), Json::UInt(6), Json::UInt(8)],
            },
            Axis {
                name: "dirty".into(),
                values: vec![Json::Str("MIN".into()), Json::Str("FAULT".into())],
            },
        ]
    }

    fn cell(mem: u64, dirty: &str, value: i64) -> CellResult {
        CellResult {
            key: format!("sim/{mem}MB/{dirty}"),
            coords: vec![
                ("mem_mb".into(), Json::UInt(mem)),
                ("dirty".into(), Json::Str(dirty.into())),
            ],
            doc: Json::object([("data", Json::object([("dirty_faults", Json::Int(value))]))]),
        }
    }

    fn assertions(text: &str) -> Result<Vec<Assertion>, String> {
        parse_assertions(&parse(text).unwrap(), &axes())
    }

    #[test]
    fn range_flags_cells_out_of_bounds_with_observed_values() {
        let asserts = assertions(
            r#"[{"check":"range","name":"sane","metric":"data.dirty_faults",
                "min":0,"max":10}]"#,
        )
        .unwrap();
        let cells = vec![cell(5, "MIN", 3), cell(6, "MIN", 42)];
        let verdicts = evaluate(&asserts, &cells);
        assert!(!verdicts[0].passed);
        assert_eq!(verdicts[0].failures.len(), 1);
        assert!(
            verdicts[0].failures[0].contains("42 > max 10"),
            "{:?}",
            verdicts
        );
        assert!(verdicts[0].failures[0].contains("sim/6MB/MIN"));
    }

    #[test]
    fn relation_quantifies_over_axes() {
        let asserts = assertions(
            r#"[{"check":"relation","name":"fault_ge_min","metric":"data.dirty_faults",
                "op":">=","left":{"dirty":"FAULT"},"right":{"dirty":"MIN"},
                "over":["mem_mb"]}]"#,
        )
        .unwrap();
        let good = vec![
            cell(5, "MIN", 10),
            cell(5, "FAULT", 12),
            cell(6, "MIN", 8),
            cell(6, "FAULT", 8),
        ];
        assert!(evaluate(&asserts, &good)[0].passed);

        let bad = vec![cell(5, "MIN", 10), cell(5, "FAULT", 7)];
        let verdict = &evaluate(&asserts, &bad)[0];
        assert!(!verdict.passed);
        assert!(verdict.failures[0].contains("mem_mb=5"), "{:?}", verdict);
        assert!(verdict.failures[0].contains("7 vs 10"), "{:?}", verdict);
    }

    #[test]
    fn relation_rejects_uncovered_axes_at_parse_time() {
        let err = assertions(
            r#"[{"check":"relation","name":"x","metric":"data.dirty_faults",
                "op":">=","left":{"dirty":"FAULT"},"right":{"dirty":"MIN"}}]"#,
        )
        .unwrap_err();
        assert!(err.contains("mem_mb"), "{err}");
    }

    #[test]
    fn monotonic_walks_groups_in_order() {
        let asserts = assertions(
            r#"[{"check":"monotonic","name":"paging_shrinks","metric":"data.dirty_faults",
                "axis":"mem_mb","direction":"nonincreasing","where":{"dirty":"MIN"}}]"#,
        )
        .unwrap();
        let good = vec![cell(5, "MIN", 9), cell(6, "MIN", 9), cell(8, "MIN", 2)];
        assert!(evaluate(&asserts, &good)[0].passed);
        let bad = vec![cell(5, "MIN", 2), cell(6, "MIN", 9)];
        let verdict = &evaluate(&asserts, &bad)[0];
        assert!(!verdict.passed);
        assert!(
            verdict.failures[0].contains("not nonincreasing"),
            "{:?}",
            verdict
        );
        assert!(verdict.failures[0].contains("2 -> 9"), "{:?}", verdict);
    }

    #[test]
    fn selectors_reject_unknown_axes_and_off_axis_values() {
        let err = assertions(
            r#"[{"check":"range","name":"x","metric":"data.dirty_faults",
                "min":0,"where":{"colour":"red"}}]"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            "assertions[0].where.colour: not a matrix axis (axes: mem_mb, dirty)"
        );
        let err = assertions(
            r#"[{"check":"range","name":"x","metric":"data.dirty_faults",
                "min":0,"where":{"mem_mb":7}}]"#,
        )
        .unwrap_err();
        assert_eq!(
            err,
            "assertions[0].where.mem_mb: value 7 is not on the axis"
        );
    }

    #[test]
    fn missing_metric_fails_with_cell_name() {
        let asserts =
            assertions(r#"[{"check":"range","name":"x","metric":"data.nope","min":0}]"#).unwrap();
        let verdict = &evaluate(&asserts, &[cell(5, "MIN", 1)])[0];
        assert!(!verdict.passed);
        assert!(
            verdict.failures[0].contains("\"data.nope\" not present"),
            "{:?}",
            verdict
        );
    }

    #[test]
    fn duplicate_assertion_names_are_rejected() {
        let err = assertions(
            r#"[{"check":"range","name":"x","metric":"data.a","min":0},
                {"check":"range","name":"x","metric":"data.b","min":0}]"#,
        )
        .unwrap_err();
        assert!(err.contains("duplicate assertion name"), "{err}");
    }

    #[test]
    fn unknown_assertion_fields_are_path_qualified() {
        let err =
            assertions(r#"[{"check":"range","name":"x","metric":"data.a","min":0,"bogus":1}]"#)
                .unwrap_err();
        assert!(err.starts_with("assertions[0]:"), "{err}");
        assert!(err.contains("unknown field \"bogus\""), "{err}");
    }
}
