//! Legacy stdout rendering: what the folded-in `ablation_*` binaries
//! printed, reproduced from a scenario run's report.
//!
//! The binaries stay alive as thin wrappers that parse their classic
//! flags and delegate here, and the parity test diffs this output
//! against an inline reconstruction of the original code — so "the
//! ablation binaries still print the same thing" is a tested claim,
//! not a code-review hope.

use spur_core::experiments::ablation::{
    handler_tuning, render_cache_scaling, render_handler_tuning, tdc_sensitivity,
};
use spur_core::experiments::crossover::render_crossover;
use spur_core::experiments::events::render_table_3_3;
use spur_core::experiments::Scale;
use spur_core::report::Table;
use spur_harness::{Json, RunReport};
use spur_vm::policy::RefPolicy;

use crate::cells::{
    assoc_key, cache_scaling_key, crossover_key, events_key, flush_key, sim_key, soft_faults_key,
    watermarks_key, CellValue,
};
use crate::config::{Kind, Scenario};

/// The banner the legacy binaries printed before running (their
/// `print_header`), when the scenario declares a `legacy_header`.
pub fn legacy_banner(scenario: &Scenario, scale: &Scale) -> Option<String> {
    scenario.legacy_header.as_ref().map(|what| {
        format!(
            "SPUR reference/dirty-bit reproduction — {what}\nscale: {} references/run, {} rep(s), seed {}\n\n",
            scale.refs, scale.reps, scale.seed
        )
    })
}

/// The stderr prefix each legacy binary used on a missing/failed cell.
pub fn error_prefix(kind: Kind) -> &'static str {
    match kind {
        Kind::Flush | Kind::Assoc | Kind::CacheScaling | Kind::Crossover | Kind::Events => {
            "experiment failed"
        }
        Kind::SoftFaults | Kind::Watermarks | Kind::Sim => "run failed",
    }
}

fn axis_u64s(scenario: &Scenario, name: &str) -> Vec<u64> {
    scenario
        .axis(name)
        .map(|a| {
            a.values
                .iter()
                .filter_map(|v| match v {
                    Json::UInt(u) => Some(*u),
                    Json::Int(i) => Some(*i as u64),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

fn axis_strs(scenario: &Scenario, name: &str) -> Vec<String> {
    scenario
        .axis(name)
        .map(|a| {
            a.values
                .iter()
                .filter_map(|v| match v {
                    Json::Str(s) => Some(s.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

fn ref_axis(scenario: &Scenario) -> Vec<RefPolicy> {
    axis_strs(scenario, "ref")
        .iter()
        .filter_map(|s| s.parse().ok())
        .collect()
}

macro_rules! cell_as {
    ($report:expr, $key:expr, $variant:path) => {
        match $report.require($key)? {
            $variant(v) => Ok(v),
            other => Err(format!("cell {}: unexpected value variant {other:?}", $key)),
        }
    };
}

/// Renders the legacy post-run stdout (tables and closing prose) for a
/// completed scenario, byte-identical to the folded-in binary.
///
/// # Errors
///
/// Returns the first missing or failed cell's description — the same
/// message the legacy `assemble` surfaced before `exit(1)`.
pub fn render_legacy(scenario: &Scenario, report: &RunReport<CellValue>) -> Result<String, String> {
    let mut out = String::new();
    // Each legacy binary emitted its epilogue through `println!`; every
    // pushed block below ends with the newline that call appended.
    match scenario.kind {
        Kind::Flush => {
            let mut t = Table::new("Page flush: tag-checked vs SPUR's tag-blind operation");
            t.headers(&[
                "page occupancy",
                "checked flushed",
                "checked cycles",
                "blind flushed",
                "blind cycles",
                "collateral blocks",
            ]);
            for pct in axis_u64s(scenario, "occupancy_pct") {
                let frac = pct as f64 / 100.0;
                let cmp = cell_as!(report, &flush_key(pct), CellValue::Flush)?;
                t.row(vec![
                    format!("{:.0}%", frac * 100.0),
                    cmp.checked_flushed.to_string(),
                    cmp.checked_cycles.to_string(),
                    cmp.blind_flushed.to_string(),
                    cmp.blind_cycles.to_string(),
                    cmp.collateral.to_string(),
                ]);
            }
            out.push_str(&t.render());
            out.push('\n');
            out.push_str(
                "Section 3.2 assumed ~10% occupancy: the checked flush lands near the\n\
                 paper's ~500 cycles while the blind flush is several times costlier and\n\
                 destroys aliasing blocks from unrelated pages.\n",
            );
        }
        Kind::Assoc => {
            let ways_axis: Vec<usize> = axis_u64s(scenario, "ways")
                .into_iter()
                .map(|w| w as usize)
                .collect();
            let mut t = Table::new("128 KB virtual cache, miss ratio by associativity");
            let headers: Vec<String> = std::iter::once("Workload".to_string())
                .chain(ways_axis.iter().map(|&w| {
                    if w == 1 {
                        "direct".to_string()
                    } else {
                        format!("{w}-way")
                    }
                }))
                .collect();
            t.headers(&headers.iter().map(String::as_str).collect::<Vec<_>>());
            for name in axis_strs(scenario, "workload") {
                let mut cells = vec![name.to_string()];
                for &ways in &ways_axis {
                    let ratio = cell_as!(report, &assoc_key(&name, ways), CellValue::MissRatio)?;
                    cells.push(format!("{:.2}%", 100.0 * ratio));
                }
                t.row(cells);
            }
            out.push_str(&t.render());
            out.push('\n');
            let (direct, assoc) = spur_cache::assoc::synonym_hazard_demo();
            out.push_str(&format!(
                "Synonym hazard demo (why Sun-3 cannot follow): one datum, two legal\n\
                 Sun-3 aliases -> {direct} copy in a direct map, {assoc} incoherent copies 2-way.\n\
                 SPUR's one-global-address rule is what makes associativity an option.\n"
            ));
        }
        Kind::CacheScaling => {
            let mut rows = Vec::new();
            for kb in axis_u64s(scenario, "cache_kb") {
                let row = cell_as!(
                    report,
                    &cache_scaling_key(kb as usize),
                    CellValue::CacheScaling
                )?;
                rows.push(row.clone());
            }
            out.push_str(&render_cache_scaling(&rows));
            out.push('\n');
            out.push_str(
                "Expected trend: the MISS/REF page-in ratio grows with cache size,\n\
                 and MISS's ref faults (its chances to re-set R) shrink.\n",
            );
        }
        Kind::Crossover => {
            let policies = ref_axis(scenario);
            if !policies.contains(&RefPolicy::Miss) {
                return Err(
                    "crossover rendering needs a MISS column (elapsed times are relative to it)"
                        .into(),
                );
            }
            let mut rows = Vec::new();
            for period in scenario
                .axis("period")
                .map(|a| a.values.clone())
                .unwrap_or_default()
            {
                let period = match period {
                    Json::Null => None,
                    Json::UInt(p) => Some(p),
                    _ => continue,
                };
                for &policy in &policies {
                    let row =
                        cell_as!(report, &crossover_key(period, policy), CellValue::Crossover)?;
                    rows.push(row.clone());
                }
            }
            out.push_str(&render_crossover(&rows));
            out.push('\n');
            out.push_str(
                "Paper, Section 4.2 (WORKLOAD1 @ 8 MB): NOREF ran 2% FASTER than MISS\n\
                 because maintaining bits nobody needs is pure overhead. The periodic\n\
                 hand reproduces that crossover; pressure-only daemons hide it.\n",
            );
        }
        Kind::Events => {
            let prefix = scenario.key_prefix.as_deref().unwrap_or("table_3_3");
            if prefix == "sensitivity" {
                // `ablation_sensitivity`: one cell, two derived tables
                // (the first cell when a config sweeps more).
                let name = axis_strs(scenario, "workload")
                    .into_iter()
                    .next()
                    .ok_or("matrix.workload: axis empty")?;
                let mb = axis_u64s(scenario, "mem_mb")
                    .into_iter()
                    .next()
                    .ok_or("matrix.mem_mb: axis empty")?;
                let key = events_key(prefix, &name, mb as u32);
                let row = cell_as!(report, &key, CellValue::Events)?;
                let mut t = Table::new("t_dc sensitivity: does WRITE ever stop losing?");
                t.headers(&[
                    "t_dc",
                    "O(WRITE) Mcycles",
                    "worst other Mcycles",
                    "WRITE still worst?",
                ]);
                for r in tdc_sensitivity(&row.events) {
                    t.row(vec![
                        r.t_dc.to_string(),
                        format!("{:.3}", r.write_overhead.millions()),
                        format!("{:.3}", r.best_other.millions()),
                        if r.write_still_loses { "yes" } else { "no" }.to_string(),
                    ]);
                }
                out.push_str(&t.render());
                out.push('\n');
                out.push_str(&render_handler_tuning(&handler_tuning(&row.events)));
                out.push('\n');
            } else {
                let mut rows = Vec::new();
                for name in axis_strs(scenario, "workload") {
                    for mb in axis_u64s(scenario, "mem_mb") {
                        let key = events_key(prefix, &name, mb as u32);
                        rows.push(cell_as!(report, &key, CellValue::Events)?.clone());
                    }
                }
                out.push_str(&render_table_3_3(&rows));
                out.push('\n');
            }
        }
        Kind::SoftFaults => {
            let mut t = Table::new("Soft-fault window on/off");
            t.headers(&[
                "Policy",
                "Soft faults",
                "Page-Ins",
                "Soft-faults taken",
                "Elapsed(s)",
            ]);
            let windows: Vec<bool> = scenario
                .axis("soft_faults")
                .map(|a| {
                    a.values
                        .iter()
                        .filter_map(|v| match v {
                            Json::Bool(b) => Some(*b),
                            _ => None,
                        })
                        .collect()
                })
                .unwrap_or_default();
            for policy in ref_axis(scenario) {
                for &enabled in &windows {
                    let row =
                        cell_as!(report, &soft_faults_key(policy, enabled), CellValue::Paging)?;
                    t.row(vec![
                        policy.to_string(),
                        if enabled { "on" } else { "off" }.to_string(),
                        row.page_ins.to_string(),
                        row.soft_faults.to_string(),
                        format!("{:.1}", row.elapsed_secs),
                    ]);
                }
            }
            out.push_str(&t.render());
            out.push('\n');
            out.push_str(
                "Expected: MISS barely changes (its R bits already protect hot pages),\n\
                 but NOREF without the soft-fault window thrashes.\n",
            );
        }
        Kind::Watermarks => {
            let mut t = Table::new("High watermark (= soft-fault window) vs paging");
            t.headers(&[
                "high water",
                "policy",
                "page-ins",
                "soft faults",
                "elapsed(s)",
            ]);
            for high in axis_u64s(scenario, "high_water") {
                for policy in ref_axis(scenario) {
                    let row = cell_as!(
                        report,
                        &watermarks_key(high as u32, policy),
                        CellValue::Paging
                    )?;
                    t.row(vec![
                        high.to_string(),
                        policy.to_string(),
                        row.page_ins.to_string(),
                        row.soft_faults.to_string(),
                        format!("{:.1}", row.elapsed_secs),
                    ]);
                }
            }
            out.push_str(&t.render());
            out.push('\n');
            out.push_str(
                "The window trades resident capacity for forgiveness: tiny windows\n\
                 punish NOREF's mis-reclaims with page-ins; huge ones shrink usable\n\
                 memory and push page-ins up for everyone.\n",
            );
        }
        Kind::Sim => {
            out.push_str(&render_sim(scenario, report)?);
        }
    }
    Ok(out)
}

/// The `sim` kind's table — no legacy counterpart, so this is the
/// scenario engine's own format: one row per cell in expansion order.
fn render_sim(scenario: &Scenario, report: &RunReport<CellValue>) -> Result<String, String> {
    let workload = scenario.workload.as_ref().expect("kind shape").workload();
    let name = workload.name().to_string();
    let mut t = Table::new(&format!("Scenario matrix: {name}"));
    t.headers(&[
        "mem",
        "dirty",
        "ref",
        "cpus",
        "dirty faults",
        "page-ins",
        "soft faults",
        "elapsed(s)",
    ]);
    let dirties: Vec<String> = {
        let v = axis_strs(scenario, "dirty");
        if v.is_empty() {
            vec!["SPUR".into()]
        } else {
            v
        }
    };
    let refs: Vec<String> = {
        let v = axis_strs(scenario, "ref");
        if v.is_empty() {
            vec!["MISS".into()]
        } else {
            v
        }
    };
    let cpus_axis: Vec<u64> = {
        let v = axis_u64s(scenario, "cpus");
        if v.is_empty() {
            vec![1]
        } else {
            v
        }
    };
    for mb in axis_u64s(scenario, "mem_mb") {
        for dirty in &dirties {
            for policy in &refs {
                for &cpus in &cpus_axis {
                    let key = sim_key(
                        &name,
                        mb as u32,
                        dirty.parse().expect("canonical policy"),
                        policy.parse().expect("canonical policy"),
                        cpus as usize,
                    );
                    let row = cell_as!(report, &key, CellValue::Sim)?;
                    t.row(vec![
                        format!("{mb}MB"),
                        dirty.clone(),
                        policy.clone(),
                        cpus.to_string(),
                        row.dirty_faults.to_string(),
                        row.page_ins.to_string(),
                        row.soft_faults.to_string(),
                        format!("{:.1}", row.elapsed_secs),
                    ]);
                }
            }
        }
    }
    Ok(t.render())
}
