//! The scenario runner: resolve the scale, expand the matrix, run the
//! jobs, persist artifacts, evaluate assertions.
//!
//! The persistence epilogue deliberately mirrors the legacy binaries'
//! `finish_run_obs` line for line — run directory `<name>-<scale>`,
//! the same manifest meta in the same order, the same stderr summary —
//! so a scenario run is a drop-in replacement for the binary it
//! folded in, down to the artifact tree.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use spur_core::experiments::Scale;
use spur_core::obs::ObsParams;
use spur_harness::fault::{arm, FaultPlan};
use spur_harness::{
    default_root, job_artifact_json, run_jobs_with_progress, write_run, Json, RunReport,
};

use crate::asserts::{evaluate, CellResult, Verdict};
use crate::cells::{expand, Cell, CellValue};
use crate::config::Scenario;

/// How to run a scenario (the CLI flags, as data).
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// `--scale` override; `None` defers to the scenario's `scale`
    /// (and then the default preset).
    pub scale: Option<Scale>,
    /// Harness worker threads.
    pub workers: usize,
    /// Master observability switch (`--no-obs` clears it); ANDed with
    /// the scenario's `run.obs`.
    pub obs_enabled: bool,
    /// `--epoch` override for the counter series; `None` defers to the
    /// scenario's `run.epoch`.
    pub epoch: Option<u64>,
    /// `--trace-out` directory for Chrome-trace export.
    pub trace_out: Option<PathBuf>,
    /// Stderr heartbeat while the pool runs.
    pub progress: bool,
    /// Write artifacts (tests turn this off to run hermetically).
    pub persist: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            scale: None,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            obs_enabled: true,
            epoch: None,
            trace_out: None,
            progress: false,
            persist: true,
        }
    }
}

/// A completed scenario run.
#[derive(Debug)]
pub struct ScenarioRun {
    /// The resolved (and clamped) scale the cells ran at.
    pub scale: Scale,
    /// The expanded cells, in expansion order.
    pub cells: Vec<Cell>,
    /// The harness report (typed values, artifacts, failures).
    pub report: RunReport<CellValue>,
    /// One verdict per declared assertion, in declaration order.
    pub verdicts: Vec<Verdict>,
}

impl ScenarioRun {
    /// Keys of cells that failed (error or panic).
    pub fn failed_cells(&self) -> Vec<&str> {
        self.report
            .jobs()
            .iter()
            .filter(|j| j.outcome.is_err())
            .map(|j| j.key.as_str())
            .collect()
    }

    /// Whether every assertion passed.
    pub fn assertions_passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.passed)
    }

    /// Whether the run as a whole succeeded: no failed cells, no
    /// failed assertions. This is the CLI's exit status and CI's gate.
    pub fn passed(&self) -> bool {
        self.failed_cells().is_empty() && self.assertions_passed()
    }

    /// The scenario-level result document: per-cell status plus
    /// assertion verdicts (the serve path's scenario result body and
    /// the `scenario.json` artifact share this shape).
    pub fn to_json(&self, name: &str) -> Json {
        let cells: Vec<Json> = self
            .report
            .jobs()
            .iter()
            .map(|j| {
                let status = if j.outcome.is_ok() { "done" } else { "failed" };
                let mut fields = vec![
                    ("key", Json::from(j.key.as_str())),
                    ("status", Json::from(status)),
                ];
                if let Err(f) = &j.outcome {
                    fields.push(("error", Json::from(f.reason.as_str())));
                }
                Json::object(fields)
            })
            .collect();
        Json::object([
            ("scenario", Json::from(name)),
            ("passed", Json::Bool(self.passed())),
            ("cells", Json::Arr(cells)),
            (
                "assertions",
                Json::Arr(self.verdicts.iter().map(Verdict::to_json).collect()),
            ),
        ])
    }
}

/// The effective per-simulation observability parameters.
pub fn effective_obs(scenario: &Scenario, opts: &RunnerOptions) -> Option<ObsParams> {
    (opts.obs_enabled && scenario.run.obs).then(|| ObsParams {
        epoch: opts.epoch.or(scenario.run.epoch),
        ..ObsParams::default()
    })
}

/// Runs a validated scenario end to end.
///
/// # Errors
///
/// Returns an error if expansion fails (colliding keys) — run-time
/// cell failures and assertion failures are reported in the returned
/// [`ScenarioRun`], not as `Err`, so the caller still gets artifacts
/// and partial results.
pub fn run_scenario(scenario: &Scenario, opts: &RunnerOptions) -> Result<ScenarioRun, String> {
    let scale = scenario.resolve_scale(opts.scale);
    let obs = effective_obs(scenario, opts);
    let expanded = expand(scenario, scale, obs)?;

    let mut cells = Vec::with_capacity(expanded.len());
    let mut jobs = Vec::with_capacity(expanded.len());
    let plan = scenario
        .run
        .fault_plan
        .map(|(seed, ppm)| Arc::new(FaultPlan::new(seed, ppm)));
    for (cell, job) in expanded {
        let job = match &plan {
            Some(plan) => arm(plan, job, &cell.key),
            None => job,
        };
        cells.push(cell);
        jobs.push(job);
    }

    let report = run_jobs_with_progress(jobs, opts.workers, opts.progress);
    if opts.persist {
        persist_run(&scenario.name, &scale, &report, opts.trace_out.as_deref());
    }

    let results: Vec<CellResult> = cells
        .iter()
        .filter_map(|cell| {
            report
                .jobs()
                .iter()
                .find(|j| j.key == cell.key && j.outcome.is_ok())
                .map(|j| CellResult {
                    key: cell.key.clone(),
                    coords: cell.coords.clone(),
                    doc: job_artifact_json(j),
                })
        })
        .collect();
    let verdicts = evaluate(&scenario.assertions, &results);

    let run = ScenarioRun {
        scale,
        cells,
        report,
        verdicts,
    };
    if opts.persist && !scenario.assertions.is_empty() {
        write_scenario_result(scenario, &run);
    }
    Ok(run)
}

/// Drives a scenario the way its folded-in legacy binary did: banner
/// first, then the run (artifacts + stderr epilogue), then the legacy
/// stdout tables, byte-for-byte. Returns the process exit code.
///
/// Assertion failures exit non-zero *after* the tables print, so a
/// wrapper binary stays pipe-compatible with its legacy stdout even
/// when a scenario adds expectations the old binary never checked.
pub fn run_legacy(scenario: &Scenario, opts: &RunnerOptions) -> i32 {
    let scale = scenario.resolve_scale(opts.scale);
    if let Some(banner) = crate::render::legacy_banner(scenario, &scale) {
        print!("{banner}");
    }
    let run = match run_scenario(scenario, opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("{}: {e}", crate::render::error_prefix(scenario.kind));
            return 1;
        }
    };
    match crate::render::render_legacy(scenario, &run.report) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("{}: {e}", crate::render::error_prefix(scenario.kind));
            return 1;
        }
    }
    if !run.assertions_passed() {
        report_failed_assertions(&run);
        return 1;
    }
    0
}

/// Prints every failed assertion (name plus per-cell failures) to
/// stderr.
pub fn report_failed_assertions(run: &ScenarioRun) {
    for v in run.verdicts.iter().filter(|v| !v.passed) {
        eprintln!("assertion failed: {}", v.name);
        for f in &v.failures {
            eprintln!("  {f}");
        }
    }
}

/// Names a scale for artifact run directories, exactly like the
/// legacy binaries: the preset's name, or `"custom"` once clamped
/// away from any preset.
pub fn scale_name(scale: &Scale) -> &'static str {
    if *scale == Scale::quick() {
        "quick"
    } else if *scale == Scale::default_scale() {
        "default"
    } else if *scale == Scale::full() {
        "full"
    } else {
        "custom"
    }
}

/// The run epilogue, line-for-line what the legacy binaries' shared
/// `finish_run_obs` printed: persist artifacts under
/// `results/json/<name>-<scale>/` (or `$SPUR_RESULTS_DIR`), print the
/// run summary and the wall-time histogram, export traces on request
/// — all on stderr, leaving stdout to the tables.
pub fn persist_run(
    name: &str,
    scale: &Scale,
    report: &RunReport<CellValue>,
    trace_out: Option<&Path>,
) {
    let run_name = format!("{name}-{}", scale_name(scale));
    let meta = [
        ("refs", Json::from(scale.refs)),
        ("reps", Json::from(scale.reps)),
        ("seed", Json::from(scale.seed)),
        ("dev_refs_per_hour", Json::from(scale.dev_refs_per_hour)),
    ];
    match write_run(&default_root(), &run_name, report, &meta) {
        Ok(art) => eprintln!("{}\nartifacts: {}", report.summary(), art.dir.display()),
        Err(e) => eprintln!("{}\nartifact write FAILED: {e}", report.summary()),
    }
    eprintln!("{}", wall_histogram_line(report));
    if let Some(root) = trace_out {
        match export_traces(root, &run_name, report) {
            Ok(0) => eprintln!("traces: none to export (observability off or no trace data)"),
            Ok(n) => eprintln!(
                "traces: {n} file(s) under {}",
                root.join(run_name).display()
            ),
            Err(e) => eprintln!("trace export FAILED: {e}"),
        }
    }
}

/// Writes the scenario-level verdict document next to the per-job
/// artifacts, as `<run dir>/scenario.json`. Purely additive: the
/// per-job files and manifest stay byte-identical to a legacy run.
fn write_scenario_result(scenario: &Scenario, run: &ScenarioRun) {
    let dir = default_root().join(format!("{}-{}", scenario.name, scale_name(&run.scale)));
    let doc = run.to_json(&scenario.name);
    let path = dir.join("scenario.json");
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, doc.encode_pretty() + "\n"))
    {
        eprintln!("scenario verdict write FAILED: {e}");
    } else {
        eprintln!("scenario verdicts: {}", path.display());
    }
}

fn wall_histogram_line(report: &RunReport<CellValue>) -> String {
    let mut wall = spur_obs::Histogram::new("job_wall_ms");
    for job in report.jobs() {
        wall.record(job.wall.as_millis() as u64);
    }
    let buckets: Vec<String> = wall
        .nonzero_buckets()
        .iter()
        .map(|&(lo, hi, n)| format!("[{lo}-{hi}ms]x{n}"))
        .collect();
    format!("job wall histogram: {}", buckets.join(" "))
}

/// Writes every successful job's Chrome trace under
/// `<root>/<run_name>/`, same file-stem rule as the artifact writer.
fn export_traces(
    root: &Path,
    run_name: &str,
    report: &RunReport<CellValue>,
) -> std::io::Result<usize> {
    let dir = root.join(run_name);
    let mut written = 0;
    for job in report.jobs() {
        let Ok(output) = &job.outcome else { continue };
        let Some(trace) = &output.trace else { continue };
        if written == 0 {
            std::fs::create_dir_all(&dir)?;
        }
        let file = dir.join(format!(
            "{}.trace.json",
            spur_harness::artifacts::sanitize_key(&job.key)
        ));
        std::fs::write(&file, trace.encode() + "\n")?;
        written += 1;
    }
    Ok(written)
}
