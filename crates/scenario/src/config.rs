//! The scenario config format: strict, schema-versioned, std-only JSON.
//!
//! A scenario file is one reviewable artifact describing an entire
//! experiment matrix: the workload source, the axes to sweep, the run
//! options, and the expected shape of the results. Parsing is *strict*
//! — unknown fields, duplicate matrix-axis values, and empty axes are
//! hard errors, each reported with the JSON path of the offending
//! value (`matrix.dirty[2]: duplicate "FLUSH"`), so a typo'd config
//! can never silently run a different experiment than the one reviewed.

use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::Scale;
use spur_harness::Json;
use spur_obs::validate::parse;
use spur_trace::spec::parse_workload;
use spur_trace::workloads::{slc, workload1, Workload};
use spur_vm::policy::RefPolicy;

use crate::asserts::{parse_assertions, Assertion};

/// The scenario schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Guardrail on a scenario's resolved `scale.refs`.
pub const MAX_REFS: u64 = 100_000_000;

/// Guardrail on `scale.reps`.
pub const MAX_REPS: u32 = 16;

/// Largest accepted memory size in megabytes.
pub const MAX_MEM_MB: u64 = 4096;

/// Largest matrix a single scenario may expand to.
pub const MAX_CELLS: usize = 4096;

/// Where a scenario's references come from.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// A named paper workload (`SLC`, `WORKLOAD1`).
    Builtin(String),
    /// A full workload-spec text (the `spur-trace::spec` format).
    Spec(String),
    /// A recorded `SPURTRC1` trace file, replayed bit-identically. The
    /// region map is not stored in the trace, so a companion workload
    /// (builtin or spec) provides it.
    Trace {
        /// Path of the recorded trace, relative to the working
        /// directory the scenario runs in.
        path: String,
        /// The workload whose regions the replay registers.
        regions: Box<WorkloadSource>,
    },
}

impl WorkloadSource {
    /// Resolves the source to the region-defining [`Workload`].
    /// Infallible after validation — builtins were checked at parse
    /// time and spec texts were parsed once already.
    pub fn workload(&self) -> Workload {
        match self {
            WorkloadSource::Builtin(name) => match name.as_str() {
                "SLC" => slc(),
                _ => workload1(),
            },
            WorkloadSource::Spec(text) => {
                parse_workload(text).expect("spec text validated at parse time")
            }
            WorkloadSource::Trace { regions, .. } => regions.workload(),
        }
    }

    /// The recorded-trace path, when this source replays one.
    pub fn trace_path(&self) -> Option<&str> {
        match self {
            WorkloadSource::Trace { path, .. } => Some(path),
            _ => None,
        }
    }
}

/// Which experiment family a scenario's cells run. Each kind fixes the
/// matrix axes it accepts and the key scheme its cells use — the same
/// keys the legacy `ablation_*` binaries minted, so artifacts are
/// byte-identical across both front ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Tag-checked vs tag-blind page flush (axis: `occupancy_pct`).
    Flush,
    /// Cache associativity miss ratios (axes: `workload`, `ways`).
    Assoc,
    /// MISS-approximation quality vs cache size (axis: `cache_kb`).
    CacheScaling,
    /// Daemon period × reference policy (axes: `period`, `ref`).
    Crossover,
    /// Table 3.3 event frequencies (axes: `workload`, `mem_mb`).
    Events,
    /// Free-list soft-fault window on/off (axes: `ref`, `soft_faults`).
    SoftFaults,
    /// Daemon watermark sweep (axes: `high_water`, `ref`).
    Watermarks,
    /// The general policy-matrix cell: one `SpurSystem` run per
    /// (memory, dirty, ref, cpus) point (axes: `mem_mb`, `dirty`,
    /// `ref`, `cpus`).
    Sim,
}

impl Kind {
    /// The config-file name of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Flush => "flush",
            Kind::Assoc => "assoc",
            Kind::CacheScaling => "cache_scaling",
            Kind::Crossover => "crossover",
            Kind::Events => "events",
            Kind::SoftFaults => "soft_faults",
            Kind::Watermarks => "watermarks",
            Kind::Sim => "sim",
        }
    }
}

/// One matrix axis: a name and its ordered, duplicate-free values.
/// Values stay as JSON scalars — the same representation assertion
/// selectors use — and the declared order is the order `monotonic`
/// assertions and the legacy renderers honor.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis name (`mem_mb`, `dirty`, …).
    pub name: String,
    /// The axis values, in declared order.
    pub values: Vec<Json>,
}

/// Per-run options: observability, oracle lockstep, fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Observability on (default) or off. Off restores artifacts
    /// byte-identical to an uninstrumented run.
    pub obs: bool,
    /// Epoch length for counter time series (`None` records none).
    pub epoch: Option<u64>,
    /// Run every `sim` cell in lockstep against the independent
    /// `spur-check` oracle; a divergence fails the cell.
    pub lockstep: bool,
    /// Deterministic fault injection: `(seed, panic_ppm)` arms every
    /// cell with `spur_harness::fault` — a tripped cell records a
    /// panic failure, exactly like the serve path's chaos mode.
    pub fault_plan: Option<(u64, u64)>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            obs: true,
            epoch: None,
            lockstep: false,
            fault_plan: None,
        }
    }
}

/// A parsed, validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Schema version (currently always [`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Scenario name — the artifact run directory is
    /// `<name>-<scale>/`, so legacy configs carry the binary's name.
    pub name: String,
    /// One-line human description.
    pub description: String,
    /// The experiment family.
    pub kind: Kind,
    /// Scenario-level workload (kinds whose workload is not an axis).
    pub workload: Option<WorkloadSource>,
    /// Scenario-level memory size (kinds without a `mem_mb` axis).
    pub mem_mb: Option<u32>,
    /// The matrix axes, in declared order.
    pub axes: Vec<Axis>,
    /// Scale from the config; `None` defers to the runner's default
    /// (or its `--scale` flag).
    pub scale: Option<Scale>,
    /// Clamp on `scale.refs`, preserving the legacy binaries'
    /// per-experiment caps under `--scale full`.
    pub max_refs: Option<u64>,
    /// Run options.
    pub run: RunOptions,
    /// Key prefix override (`sensitivity/SLC/5MB` vs the `events`
    /// kind's default `table_3_3/...`).
    pub key_prefix: Option<String>,
    /// Legacy stdout header: when set, `--legacy-stdout` runs print
    /// the classic `print_header` banner with this title, byte-for-byte
    /// what the folded-in binary printed (scenarios for binaries that
    /// printed no header, like `ablation_flush`, omit it).
    pub legacy_header: Option<String>,
    /// Expected-shape assertions.
    pub assertions: Vec<Assertion>,
}

impl Scenario {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// Returns a path-qualified message for the first violation.
    pub fn parse_str(text: &str) -> Result<Scenario, String> {
        let doc = parse(text).map_err(|e| format!("scenario is not valid JSON: {e}"))?;
        parse_scenario(&doc)
    }

    /// [`Scenario::parse_str`] over raw bytes (HTTP bodies).
    ///
    /// # Errors
    ///
    /// Returns a path-qualified message for the first violation.
    pub fn parse_bytes(body: &[u8]) -> Result<Scenario, String> {
        let text = std::str::from_utf8(body).map_err(|_| "scenario is not UTF-8".to_string())?;
        Scenario::parse_str(text)
    }

    /// The axis with the given name, if declared.
    pub fn axis(&self, name: &str) -> Option<&Axis> {
        self.axes.iter().find(|a| a.name == name)
    }

    /// The scale the scenario runs at: `override_scale` (a runner's
    /// `--scale` flag) wins over the config's `scale`, which wins over
    /// the default preset; the scenario's `max_refs` clamp applies
    /// last, exactly like the legacy binaries clamped their parsed
    /// scale.
    pub fn resolve_scale(&self, override_scale: Option<Scale>) -> Scale {
        let mut scale = override_scale
            .or(self.scale)
            .unwrap_or_else(Scale::default_scale);
        if let Some(cap) = self.max_refs {
            scale.refs = scale.refs.min(cap);
        }
        scale
    }
}

// ---------------------------------------------------------------------------
// Strict parsing
// ---------------------------------------------------------------------------

fn fields(doc: &Json) -> &[(String, Json)] {
    match doc {
        Json::Obj(fields) => fields,
        _ => &[],
    }
}

fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    fields(doc).iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Rejects object fields outside `allowed`, naming the path.
fn check_unknown(doc: &Json, path: &str, allowed: &[&str]) -> Result<(), String> {
    let place = if path.is_empty() { "scenario" } else { path };
    for (key, _) in fields(doc) {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "{place}: unknown field {key:?} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

fn at(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn as_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{path}: must be a string")),
    }
}

fn as_u64(v: &Json, path: &str) -> Result<u64, String> {
    match v {
        Json::UInt(u) => Ok(*u),
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("{path}: must be a non-negative integer")),
    }
}

fn as_bool(v: &Json, path: &str) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{path}: must be a boolean")),
    }
}

fn opt_u64(doc: &Json, path: &str, key: &str) -> Result<Option<u64>, String> {
    field(doc, key)
        .map(|v| as_u64(v, &at(path, key)))
        .transpose()
}

fn require<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    field(doc, key).ok_or_else(|| format!("{}: missing required field", at(path, key)))
}

fn parse_scenario(doc: &Json) -> Result<Scenario, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("scenario must be a JSON object".into());
    }
    check_unknown(
        doc,
        "",
        &[
            "schema_version",
            "name",
            "description",
            "experiment",
            "workload",
            "mem_mb",
            "matrix",
            "scale",
            "max_refs",
            "run",
            "key_prefix",
            "legacy_header",
            "assertions",
        ],
    )?;

    let schema_version = as_u64(require(doc, "", "schema_version")?, "schema_version")?;
    if schema_version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version: expected {SCHEMA_VERSION}, got {schema_version}"
        ));
    }
    let name = as_str(require(doc, "", "name")?, "name")?.to_string();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err("name: must be a non-empty [A-Za-z0-9_-]+ identifier".into());
    }
    let description = match field(doc, "description") {
        Some(v) => as_str(v, "description")?.to_string(),
        None => String::new(),
    };

    let kind = match as_str(require(doc, "", "experiment")?, "experiment")? {
        "flush" => Kind::Flush,
        "assoc" => Kind::Assoc,
        "cache_scaling" => Kind::CacheScaling,
        "crossover" => Kind::Crossover,
        "events" => Kind::Events,
        "soft_faults" => Kind::SoftFaults,
        "watermarks" => Kind::Watermarks,
        "sim" => Kind::Sim,
        other => {
            return Err(format!(
                "experiment: unknown experiment {other:?} (expected flush|assoc|cache_scaling|\
                 crossover|events|soft_faults|watermarks|sim)"
            ))
        }
    };

    let workload = field(doc, "workload")
        .map(|v| parse_workload_source(v, "workload"))
        .transpose()?;
    let mem_mb = match opt_u64(doc, "", "mem_mb")? {
        None => None,
        Some(mb) => {
            if mb == 0 || mb > MAX_MEM_MB {
                return Err(format!("mem_mb: must be in 1..={MAX_MEM_MB}, got {mb}"));
            }
            Some(mb as u32)
        }
    };

    let axes = parse_matrix(require(doc, "", "matrix")?, kind)?;

    let scale = field(doc, "scale").map(parse_scale).transpose()?;
    let max_refs = match opt_u64(doc, "", "max_refs")? {
        None => None,
        Some(0) => return Err("max_refs: must be positive".into()),
        Some(n) => Some(n),
    };
    let run = match field(doc, "run") {
        None => RunOptions::default(),
        Some(v) => parse_run(v)?,
    };
    let key_prefix = match field(doc, "key_prefix") {
        None => None,
        Some(v) => {
            let p = as_str(v, "key_prefix")?;
            if p.is_empty() || p.contains('/') {
                return Err("key_prefix: must be a non-empty segment without '/'".into());
            }
            Some(p.to_string())
        }
    };
    let legacy_header = field(doc, "legacy_header")
        .map(|v| as_str(v, "legacy_header").map(str::to_string))
        .transpose()?;
    let assertions = match field(doc, "assertions") {
        None => Vec::new(),
        Some(v) => parse_assertions(v, &axes)?,
    };

    let scenario = Scenario {
        schema_version,
        name,
        description,
        kind,
        workload,
        mem_mb,
        axes,
        scale,
        max_refs,
        run,
        key_prefix,
        legacy_header,
        assertions,
    };
    check_kind_shape(&scenario)?;
    Ok(scenario)
}

fn parse_workload_source(v: &Json, path: &str) -> Result<WorkloadSource, String> {
    match v {
        Json::Str(name) => {
            let upper = name.to_ascii_uppercase();
            if upper != "SLC" && upper != "WORKLOAD1" {
                return Err(format!(
                    "{path}: unknown builtin workload {name:?} (expected SLC|WORKLOAD1)"
                ));
            }
            Ok(WorkloadSource::Builtin(upper))
        }
        Json::Obj(_) => {
            check_unknown(v, path, &["builtin", "spec", "trace", "regions"])?;
            let builtin = field(v, "builtin");
            let spec = field(v, "spec");
            let trace = field(v, "trace");
            match (builtin, spec, trace) {
                (Some(b), None, None) => parse_workload_source(b, &at(path, "builtin")),
                (None, Some(s), None) => {
                    let text = as_str(s, &at(path, "spec"))?;
                    parse_workload(text)
                        .map_err(|e| format!("{}: bad workload spec: {e}", at(path, "spec")))?;
                    Ok(WorkloadSource::Spec(text.to_string()))
                }
                (None, None, Some(t)) => {
                    let trace_path = as_str(t, &at(path, "trace"))?.to_string();
                    let regions = require(v, path, "regions")?;
                    let regions = parse_workload_source(regions, &at(path, "regions"))?;
                    if matches!(regions, WorkloadSource::Trace { .. }) {
                        return Err(format!("{}: must not nest a trace", at(path, "regions")));
                    }
                    Ok(WorkloadSource::Trace {
                        path: trace_path,
                        regions: Box::new(regions),
                    })
                }
                _ => Err(format!(
                    "{path}: give exactly one of builtin, spec, or trace (+ regions)"
                )),
            }
        }
        _ => Err(format!("{path}: must be a builtin name or an object")),
    }
}

/// The axes each kind accepts, in their canonical (legacy-loop) order.
fn allowed_axes(kind: Kind) -> &'static [&'static str] {
    match kind {
        Kind::Flush => &["occupancy_pct"],
        Kind::Assoc => &["workload", "ways"],
        Kind::CacheScaling => &["cache_kb"],
        Kind::Crossover => &["period", "ref"],
        Kind::Events => &["workload", "mem_mb"],
        Kind::SoftFaults => &["ref", "soft_faults"],
        Kind::Watermarks => &["high_water", "ref"],
        Kind::Sim => &["mem_mb", "dirty", "ref", "cpus"],
    }
}

fn parse_matrix(doc: &Json, kind: Kind) -> Result<Vec<Axis>, String> {
    if !matches!(doc, Json::Obj(_)) {
        return Err("matrix: must be an object of axes".into());
    }
    check_unknown(doc, "matrix", allowed_axes(kind))?;
    let mut axes = Vec::new();
    for (name, values) in fields(doc) {
        let path = at("matrix", name);
        let Json::Arr(values) = values else {
            return Err(format!("{path}: axis must be an array"));
        };
        if values.is_empty() {
            return Err(format!("{path}: axis must not be empty"));
        }
        let mut canonical: Vec<Json> = Vec::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            let v = parse_axis_value(kind, name, v, &format!("{path}[{i}]"))?;
            if canonical.contains(&v) {
                return Err(format!("{path}[{i}]: duplicate {}", v.encode()));
            }
            canonical.push(v);
        }
        axes.push(Axis {
            name: name.clone(),
            values: canonical,
        });
    }
    Ok(axes)
}

/// Validates one axis value and canonicalizes it (policy names to
/// their `Display` form, builtin workloads to upper case) so that the
/// same coordinate always compares and keys identically.
fn parse_axis_value(kind: Kind, axis: &str, v: &Json, path: &str) -> Result<Json, String> {
    match axis {
        "occupancy_pct" => {
            let pct = as_u64(v, path)?;
            if pct == 0 || pct > 100 {
                return Err(format!("{path}: must be in 1..=100, got {pct}"));
            }
            Ok(Json::UInt(pct))
        }
        "workload" => {
            let name = as_str(v, path)?.to_ascii_uppercase();
            if name != "SLC" && name != "WORKLOAD1" {
                return Err(format!("{path}: unknown workload (expected SLC|WORKLOAD1)"));
            }
            Ok(Json::Str(name))
        }
        "ways" => {
            let ways = as_u64(v, path)?;
            if !matches!(ways, 1 | 2 | 4 | 8 | 16) {
                return Err(format!("{path}: ways must be one of 1,2,4,8,16"));
            }
            Ok(Json::UInt(ways))
        }
        "cache_kb" => {
            let kb = as_u64(v, path)?;
            if kb == 0 || kb > 65536 {
                return Err(format!("{path}: must be in 1..=65536 KB, got {kb}"));
            }
            Ok(Json::UInt(kb))
        }
        "period" => match v {
            Json::Null => Ok(Json::Null),
            _ => {
                let p = as_u64(v, path)?;
                if p == 0 {
                    return Err(format!("{path}: period must be positive or null"));
                }
                Ok(Json::UInt(p))
            }
        },
        "ref" => {
            let policy = as_str(v, path)?
                .parse::<RefPolicy>()
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(Json::Str(policy.to_string()))
        }
        "dirty" => {
            let policy = as_str(v, path)?
                .parse::<DirtyPolicy>()
                .map_err(|e| format!("{path}: {e}"))?;
            Ok(Json::Str(policy.to_string()))
        }
        "soft_faults" => Ok(Json::Bool(as_bool(v, path)?)),
        "mem_mb" => {
            let mb = as_u64(v, path)?;
            if mb == 0 || mb > MAX_MEM_MB {
                return Err(format!("{path}: must be in 1..={MAX_MEM_MB}, got {mb}"));
            }
            Ok(Json::UInt(mb))
        }
        "high_water" => {
            let high = as_u64(v, path)?;
            if high == 0 || high > 100_000 {
                return Err(format!("{path}: must be in 1..=100000, got {high}"));
            }
            Ok(Json::UInt(high))
        }
        "cpus" => {
            let cpus = as_u64(v, path)?;
            if cpus == 0 || cpus > 12 {
                return Err(format!("{path}: must be in 1..=12, got {cpus}"));
            }
            Ok(Json::UInt(cpus))
        }
        _ => unreachable!("axis {axis} admitted for kind {kind:?} but not parsed"),
    }
}

fn parse_scale(v: &Json) -> Result<Scale, String> {
    match v {
        Json::Str(preset) => match preset.as_str() {
            "quick" => Ok(Scale::quick()),
            "default" => Ok(Scale::default_scale()),
            "full" => Ok(Scale::full()),
            other => Err(format!(
                "scale: unknown preset {other:?} (expected quick|default|full)"
            )),
        },
        Json::Obj(_) => {
            check_unknown(v, "scale", &["refs", "seed", "reps", "dev_refs_per_hour"])?;
            let mut scale = Scale::default_scale();
            if let Some(refs) = opt_u64(v, "scale", "refs")? {
                if refs == 0 || refs > MAX_REFS {
                    return Err(format!("scale.refs: must be in 1..={MAX_REFS}, got {refs}"));
                }
                scale.refs = refs;
            }
            if let Some(seed) = opt_u64(v, "scale", "seed")? {
                scale.seed = seed;
            }
            if let Some(reps) = opt_u64(v, "scale", "reps")? {
                if reps == 0 || reps > MAX_REPS as u64 {
                    return Err(format!("scale.reps: must be in 1..={MAX_REPS}, got {reps}"));
                }
                scale.reps = reps as u32;
            }
            if let Some(per_hour) = opt_u64(v, "scale", "dev_refs_per_hour")? {
                if per_hour == 0 {
                    return Err("scale.dev_refs_per_hour: must be positive".into());
                }
                scale.dev_refs_per_hour = per_hour;
            }
            Ok(scale)
        }
        _ => Err("scale: must be a preset name or an object".into()),
    }
}

fn parse_run(v: &Json) -> Result<RunOptions, String> {
    if !matches!(v, Json::Obj(_)) {
        return Err("run: must be an object".into());
    }
    check_unknown(v, "run", &["obs", "epoch", "lockstep", "fault_plan"])?;
    let mut run = RunOptions::default();
    if let Some(obs) = field(v, "obs") {
        run.obs = as_bool(obs, "run.obs")?;
    }
    if let Some(epoch) = field(v, "epoch") {
        match epoch {
            Json::Null => run.epoch = None,
            _ => {
                let n = as_u64(epoch, "run.epoch")?;
                if n == 0 {
                    return Err("run.epoch: must be positive or null".into());
                }
                run.epoch = Some(n);
            }
        }
    }
    if let Some(lockstep) = field(v, "lockstep") {
        run.lockstep = as_bool(lockstep, "run.lockstep")?;
    }
    if let Some(plan) = field(v, "fault_plan") {
        check_unknown(plan, "run.fault_plan", &["seed", "panic_ppm"])?;
        let seed = as_u64(
            require(plan, "run.fault_plan", "seed")?,
            "run.fault_plan.seed",
        )?;
        let ppm = as_u64(
            require(plan, "run.fault_plan", "panic_ppm")?,
            "run.fault_plan.panic_ppm",
        )?;
        run.fault_plan = Some((seed, ppm));
    }
    Ok(run)
}

/// Kind-level shape rules: which scenario-level fields each kind
/// requires or forbids, and which axes must be present.
fn check_kind_shape(s: &Scenario) -> Result<(), String> {
    let kind = s.kind.as_str();
    let need_axis = |name: &str| -> Result<(), String> {
        if s.axis(name).is_none() {
            return Err(format!("matrix.{name}: required for experiment {kind:?}"));
        }
        Ok(())
    };
    let no_workload = |why: &str| -> Result<(), String> {
        if s.workload.is_some() {
            return Err(format!(
                "workload: not accepted for experiment {kind:?} ({why})"
            ));
        }
        Ok(())
    };
    let need_workload = || -> Result<(), String> {
        if s.workload.is_none() {
            return Err(format!("workload: required for experiment {kind:?}"));
        }
        Ok(())
    };
    let no_mem = || -> Result<(), String> {
        if s.mem_mb.is_some() {
            return Err(format!("mem_mb: not accepted for experiment {kind:?}"));
        }
        Ok(())
    };
    let need_mem = || -> Result<(), String> {
        if s.mem_mb.is_none() {
            return Err(format!("mem_mb: required for experiment {kind:?}"));
        }
        Ok(())
    };

    if s.run.lockstep && s.kind != Kind::Sim {
        return Err(format!(
            "run.lockstep: only supported for experiment \"sim\", not {kind:?}"
        ));
    }
    match s.kind {
        Kind::Flush => {
            need_axis("occupancy_pct")?;
            no_workload("the flush comparison runs on synthetic cache states")?;
            no_mem()?;
        }
        Kind::Assoc => {
            need_axis("workload")?;
            need_axis("ways")?;
            no_workload("the workload is a matrix axis")?;
            no_mem()?;
        }
        Kind::CacheScaling => {
            need_axis("cache_kb")?;
            need_workload()?;
            need_mem()?;
        }
        Kind::Crossover => {
            need_axis("period")?;
            need_axis("ref")?;
            need_workload()?;
            need_mem()?;
        }
        Kind::Events => {
            need_axis("workload")?;
            need_axis("mem_mb")?;
            no_workload("the workload is a matrix axis")?;
            no_mem()?;
        }
        Kind::SoftFaults => {
            need_axis("ref")?;
            need_axis("soft_faults")?;
            need_workload()?;
            need_mem()?;
        }
        Kind::Watermarks => {
            need_axis("high_water")?;
            need_axis("ref")?;
            need_workload()?;
            need_mem()?;
        }
        Kind::Sim => {
            need_axis("mem_mb")?;
            need_workload()?;
            no_mem()?;
        }
    }
    // Trace workloads only make sense where a single reference stream
    // drives a full SpurSystem run.
    if let Some(source) = &s.workload {
        if source.trace_path().is_some() && s.kind != Kind::Sim {
            return Err(format!(
                "workload.trace: recorded traces are only supported for experiment \"sim\", \
                 not {kind:?}"
            ));
        }
    }
    // Bound the expansion before anyone builds it.
    let cells: usize = s.axes.iter().map(|a| a.values.len()).product();
    if cells > MAX_CELLS {
        return Err(format!(
            "matrix: expands to {cells} cells, more than the {MAX_CELLS} allowed"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_sim(extra: &str) -> String {
        format!(
            r#"{{"schema_version":1,"name":"t","experiment":"sim",
                "workload":"WORKLOAD1","matrix":{{"mem_mb":[5,6,8]}}{extra}}}"#
        )
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::parse_str(&minimal_sim("")).unwrap();
        assert_eq!(s.kind, Kind::Sim);
        assert_eq!(s.scale, None);
        assert!(s.run.obs);
        assert!(!s.run.lockstep);
        assert!(s.assertions.is_empty());
        assert_eq!(s.axes.len(), 1);
        assert_eq!(s.resolve_scale(None), Scale::default_scale());
    }

    #[test]
    fn unknown_top_level_field_is_a_path_qualified_error() {
        let err = Scenario::parse_str(&minimal_sim(r#","frobnicate":1"#)).unwrap_err();
        assert!(err.contains("unknown field \"frobnicate\""), "{err}");
    }

    #[test]
    fn unknown_matrix_axis_is_a_path_qualified_error() {
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"sim",
            "workload":"SLC","matrix":{"mem_mb":[5],"colour":[1]}}"#;
        let err = Scenario::parse_str(cfg).unwrap_err();
        assert!(err.starts_with("matrix:"), "{err}");
        assert!(err.contains("unknown field \"colour\""), "{err}");
    }

    #[test]
    fn duplicate_axis_value_names_index_and_value() {
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"sim","workload":"SLC",
            "matrix":{"mem_mb":[5],"dirty":["MIN","FAULT","FLUSH","flush"]}}"#;
        let err = Scenario::parse_str(cfg).unwrap_err();
        assert_eq!(err, "matrix.dirty[3]: duplicate \"FLUSH\"");
    }

    #[test]
    fn empty_axis_is_a_hard_error() {
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"sim","workload":"SLC",
            "matrix":{"mem_mb":[]}}"#;
        let err = Scenario::parse_str(cfg).unwrap_err();
        assert_eq!(err, "matrix.mem_mb: axis must not be empty");
    }

    #[test]
    fn nested_unknown_fields_are_rejected_everywhere() {
        for (cfg, needle) in [
            (minimal_sim(r#","run":{"obs":true,"verbose":1}"#), "run:"),
            (minimal_sim(r#","scale":{"refs":10,"speed":9}"#), "scale:"),
            (
                minimal_sim(r#","run":{"fault_plan":{"seed":1,"panic_ppm":2,"x":3}}"#),
                "run.fault_plan:",
            ),
        ] {
            let err = Scenario::parse_str(&cfg).unwrap_err();
            assert!(err.starts_with(needle), "{err} should start with {needle}");
            assert!(err.contains("unknown field"), "{err}");
        }
    }

    #[test]
    fn schema_version_is_enforced() {
        let cfg = r#"{"schema_version":2,"name":"t","experiment":"sim","workload":"SLC",
            "matrix":{"mem_mb":[5]}}"#;
        let err = Scenario::parse_str(cfg).unwrap_err();
        assert!(err.starts_with("schema_version:"), "{err}");
    }

    #[test]
    fn kind_shape_rules_hold() {
        // flush refuses a workload.
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"flush","workload":"SLC",
            "matrix":{"occupancy_pct":[10]}}"#;
        assert!(Scenario::parse_str(cfg)
            .unwrap_err()
            .starts_with("workload:"));
        // crossover needs both axes.
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"crossover","workload":"SLC",
            "mem_mb":8,"matrix":{"period":[null]}}"#;
        assert!(Scenario::parse_str(cfg)
            .unwrap_err()
            .starts_with("matrix.ref:"));
        // lockstep is sim-only.
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"flush",
            "matrix":{"occupancy_pct":[10]},"run":{"lockstep":true}}"#;
        assert!(Scenario::parse_str(cfg)
            .unwrap_err()
            .starts_with("run.lockstep:"));
    }

    #[test]
    fn axis_values_canonicalize_for_keys_and_coords() {
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"sim","workload":"slc",
            "matrix":{"mem_mb":[5],"dirty":["min","Fault"],"ref":["noref"]}}"#;
        let s = Scenario::parse_str(cfg).unwrap();
        assert_eq!(
            s.axis("dirty").unwrap().values,
            vec![Json::Str("MIN".into()), Json::Str("FAULT".into())]
        );
        assert_eq!(
            s.axis("ref").unwrap().values,
            vec![Json::Str("NOREF".into())]
        );
    }

    #[test]
    fn scale_presets_and_clamp_resolve_like_the_legacy_binaries() {
        let cfg = minimal_sim(r#","scale":"full","max_refs":6000000"#);
        let s = Scenario::parse_str(&cfg).unwrap();
        assert_eq!(s.resolve_scale(None).refs, 6_000_000);
        // A runner's --scale quick wins over the config scale, clamp
        // still applies.
        let quick = s.resolve_scale(Some(Scale::quick()));
        assert_eq!(quick.refs, Scale::quick().refs.min(6_000_000));
    }

    #[test]
    fn trace_workloads_parse_and_are_sim_only() {
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"sim",
            "workload":{"trace":"results/t.spurtrace","regions":"WORKLOAD1"},
            "matrix":{"mem_mb":[6]}}"#;
        let s = Scenario::parse_str(cfg).unwrap();
        assert_eq!(
            s.workload.as_ref().unwrap().trace_path(),
            Some("results/t.spurtrace")
        );
        let cfg = r#"{"schema_version":1,"name":"t","experiment":"cache_scaling",
            "workload":{"trace":"x","regions":"SLC"},"mem_mb":5,
            "matrix":{"cache_kb":[128]}}"#;
        let err = Scenario::parse_str(cfg).unwrap_err();
        assert!(err.contains("workload.trace"), "{err}");
    }
}
