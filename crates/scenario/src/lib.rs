//! spur-scenario: a declarative scenario engine for the SPUR
//! reproduction.
//!
//! A *scenario* is a small, schema-versioned JSON document that names a
//! workload, a memory-size and policy matrix, run options, and a set of
//! expected-shape assertions. The engine expands the matrix into
//! stable-keyed [`spur_harness`] jobs built from the same
//! `spur_core::jobs` builders the standalone binaries use — so the
//! artifacts a scenario produces are byte-identical to the binaries it
//! replaces — runs them on the shared pool, persists the usual run
//! tree, and evaluates the assertions against the produced artifacts.
//!
//! The pieces:
//!
//! - [`config`] — the strict parser: unknown fields, duplicate matrix
//!   cells, and empty axes are hard errors with path-qualified
//!   messages.
//! - [`cells`] — matrix expansion: scenario → `(Cell, Job)` pairs with
//!   stable keys (`sim/WORKLOAD1/5MB/FAULT/MISS/1cpu`).
//! - [`asserts`] — the assertion language: counter ranges, cross-cell
//!   relations ("FAULT dirty faults ≥ MIN at every memory size"),
//!   monotonicity along an axis.
//! - [`run`] — the engine: resolve scale, expand, run, persist,
//!   evaluate; plus the legacy driver the folded-in `ablation_*`
//!   binaries delegate to.
//! - [`render`] — byte-exact reproductions of the legacy binaries'
//!   stdout tables.

pub mod asserts;
pub mod cells;
pub mod config;
pub mod render;
pub mod run;

pub use asserts::{Assertion, CellResult, Verdict};
pub use cells::{enumerate, Cell, CellValue};
pub use config::{Kind, Scenario, WorkloadSource, SCHEMA_VERSION};
pub use run::{run_legacy, run_scenario, scale_name, RunnerOptions, ScenarioRun};
