//! `spur-scenario` — validate, explain, run, and list declarative
//! scenario configs.
//!
//! ```text
//! spur-scenario validate scenarios/*.json
//! spur-scenario explain scenarios/paper_invariants.json
//! spur-scenario run scenarios/ablation_flush.json --scale quick
//! spur-scenario list scenarios
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use spur_core::experiments::Scale;
use spur_scenario::{enumerate, run_legacy, run_scenario, scale_name, RunnerOptions, Scenario};

const USAGE: &str = "usage: spur-scenario <command> [args]

commands:
  validate <file>...   strict-parse each config; non-zero exit on any error
  explain <file>       show the resolved scale, expanded cells, and assertions
  run <file> [flags]   run the scenario; non-zero exit on cell or assertion failure
  list [dir]           summarize the scenario configs in a directory (default: scenarios)

run flags:
  --scale quick|default|full   override the scenario's scale preset
  --jobs N                     worker threads (default: all cores)
  --no-obs                     disable per-simulation observability
  --epoch N                    counter-series epoch override (references)
  --trace-out DIR              export Chrome traces under DIR
  --progress                   stderr heartbeat while the pool runs
  --legacy-stdout              reproduce the folded-in binary's stdout tables
  --no-persist                 skip the artifact tree (hermetic run)
  --json                       print the scenario result document to stdout";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "validate" => validate(&args[1..]),
        "explain" => explain(&args[1..]),
        "run" => run(&args[1..]),
        "list" => list(&args[1..]),
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn load(path: &str) -> Result<Scenario, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    Scenario::parse_bytes(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("validate: at least one file required\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in files {
        match load(path) {
            Ok(s) => {
                let scale = s.resolve_scale(None);
                match enumerate(&s, scale) {
                    Ok(cells) => println!(
                        "ok: {path}: {} ({:?}, {} cell(s), {} assertion(s))",
                        s.name,
                        s.kind,
                        cells.len(),
                        s.assertions.len()
                    ),
                    Err(e) => {
                        eprintln!("error: {path}: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn explain(files: &[String]) -> ExitCode {
    let [path] = files else {
        eprintln!("explain: exactly one file required\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let scenario = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = scenario.resolve_scale(None);
    println!("scenario: {} ({:?})", scenario.name, scenario.kind);
    if !scenario.description.is_empty() {
        println!("  {}", scenario.description);
    }
    println!(
        "scale: {} ({} references/run, {} rep(s), seed {})",
        scale_name(&scale),
        scale.refs,
        scale.reps,
        scale.seed
    );
    match enumerate(&scenario, scale) {
        Ok(cells) => {
            println!("cells: {}", cells.len());
            for cell in &cells {
                println!("  {}", cell.key);
            }
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("assertions: {}", scenario.assertions.len());
    for a in &scenario.assertions {
        println!("  {}", a.name());
    }
    ExitCode::SUCCESS
}

fn run(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut opts = RunnerOptions::default();
    let mut legacy = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().map(String::as_str) {
                Some("quick") => opts.scale = Some(Scale::quick()),
                Some("default") => opts.scale = Some(Scale::default_scale()),
                Some("full") => opts.scale = Some(Scale::full()),
                other => {
                    return usage_error(&format!(
                        "--scale: expected quick|default|full, got {other:?}"
                    ))
                }
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.workers = n,
                _ => return usage_error("--jobs: expected a positive integer"),
            },
            "--epoch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.epoch = Some(n),
                None => return usage_error("--epoch: expected an integer"),
            },
            "--trace-out" => match it.next() {
                Some(dir) => opts.trace_out = Some(PathBuf::from(dir)),
                None => return usage_error("--trace-out: expected a directory"),
            },
            "--no-obs" => opts.obs_enabled = false,
            "--progress" => opts.progress = true,
            "--legacy-stdout" => legacy = true,
            "--no-persist" => opts.persist = false,
            "--json" => json = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return usage_error(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(path) = path else {
        return usage_error("run: a scenario file is required");
    };
    let scenario = match load(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if legacy {
        return ExitCode::from(run_legacy(&scenario, &opts) as u8);
    }

    let run = match run_scenario(&scenario, &opts) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", run.to_json(&scenario.name).encode_pretty());
    } else {
        println!(
            "scenario {}: {} cell(s) at {} scale",
            scenario.name,
            run.cells.len(),
            scale_name(&run.scale)
        );
        for job in run.report.jobs() {
            match &job.outcome {
                Ok(_) => println!("  done   {}", job.key),
                Err(f) => println!("  FAILED {} ({})", job.key, f.reason),
            }
        }
        for v in &run.verdicts {
            if v.passed {
                println!("  assert PASS {}", v.name);
            } else {
                println!("  assert FAIL {}", v.name);
                for f in &v.failures {
                    println!("    {f}");
                }
            }
        }
        println!("result: {}", if run.passed() { "PASS" } else { "FAIL" });
    }
    if run.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list(args: &[String]) -> ExitCode {
    let dir = args.first().map(String::as_str).unwrap_or("scenarios");
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("error: {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("error: {dir}: no .json scenario configs found");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        let shown = path.display();
        match load(&path.to_string_lossy()) {
            Ok(s) => {
                let scale = s.resolve_scale(None);
                let cells = enumerate(&s, scale).map(|c| c.len());
                match cells {
                    Ok(n) => println!(
                        "{:<40} {:<14} {:>3} cell(s) {:>2} assertion(s)  {}",
                        s.name,
                        format!("{:?}", s.kind),
                        n,
                        s.assertions.len(),
                        shown
                    ),
                    Err(e) => {
                        eprintln!("error: {shown}: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n\n{USAGE}");
    ExitCode::from(2)
}
