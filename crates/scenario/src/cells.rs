//! Matrix expansion: one scenario → stable-keyed harness jobs.
//!
//! Every cell a scenario expands to is built from the same measure
//! functions and `spur_core::jobs` builders the legacy `ablation_*`
//! binaries call, with the same keys and the same artifact encodings
//! — so a cell run through a scenario writes the byte-identical
//! artifact the binary wrote. The parity test in
//! `tests/ablation_parity.rs` certifies this claim per key, per byte.

use spur_cache::assoc::SetAssocCache;
use spur_cache::cache::VirtualCache;
use spur_check::lockstep::Lockstep;
use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::ablation::{
    flush_cost_comparison, measure_cache_scaling_point_obs, CacheScalingRow, FlushComparison,
};
use spur_core::experiments::crossover::{measure_crossover_obs, CrossoverRow};
use spur_core::experiments::events::EventRow;
use spur_core::experiments::Scale;
use spur_core::jobs::{attach_obs, events_job_for};
use spur_core::obs::ObsParams;
use spur_core::system::{SimConfig, SimOverrides, SpurSystem};
use spur_core::EventCounts;
use spur_harness::{Job, JobOutput, Json};
use spur_trace::record::RecordedTrace;
use spur_trace::workloads::{slc, workload1, Workload};
use spur_types::{CostParams, MemSize, Protection, CACHE_LINES};
use spur_vm::policy::RefPolicy;

use crate::config::{Kind, Scenario};

/// The typed result of one cell — what the legacy binaries' `Job<T>`
/// values were, unified so one report type covers every kind. The
/// artifact JSON (what lands on disk) is built per kind exactly as the
/// legacy binary built it; this enum only feeds the renderers.
#[derive(Debug, Clone)]
pub enum CellValue {
    /// A `flush` cell.
    Flush(FlushComparison),
    /// An `assoc` cell: the miss ratio.
    MissRatio(f64),
    /// A `cache_scaling` cell.
    CacheScaling(CacheScalingRow),
    /// A `crossover` cell.
    Crossover(CrossoverRow),
    /// An `events` cell.
    Events(EventRow),
    /// A `soft_faults` or `watermarks` cell.
    Paging(PagingCell),
    /// A `sim` cell.
    Sim(SimCell),
}

/// Paging outcome of one inline `SpurSystem` run (the legacy
/// soft-fault and watermark binaries' row type).
#[derive(Debug, Clone, Copy)]
pub struct PagingCell {
    /// Pages read from backing store.
    pub page_ins: u64,
    /// Free-list soft faults taken.
    pub soft_faults: u64,
    /// Modeled elapsed seconds.
    pub elapsed_secs: f64,
}

/// One general policy-matrix point.
#[derive(Debug, Clone, Copy)]
pub struct SimCell {
    /// Necessary dirty-bit faults plus policy-induced excess
    /// (`n_ds + n_ef`) — the paper's cross-policy comparison metric.
    pub dirty_faults: u64,
    /// Pages read from backing store.
    pub page_ins: u64,
    /// Free-list soft faults taken.
    pub soft_faults: u64,
    /// Modeled elapsed seconds.
    pub elapsed_secs: f64,
    /// The full event counters.
    pub events: EventCounts,
}

/// One expanded cell: its stable job key and its axis coordinates
/// (declared-axis order), separate from the runnable job so callers
/// can enumerate cells without running anything.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The harness job key (identical to the legacy binary's).
    pub key: String,
    /// (axis, value) pairs, one per declared axis.
    pub coords: Vec<(String, Json)>,
}

impl Cell {
    /// The coordinate on `axis`, if that axis is declared.
    pub fn coord(&self, axis: &str) -> Option<&Json> {
        self.coords.iter().find(|(a, _)| a == axis).map(|(_, v)| v)
    }
}

/// The `flush` kind's cell key (identical to `ablation_flush`).
pub fn flush_key(pct: u64) -> String {
    format!("flush/{pct:03}pct")
}

/// The `assoc` kind's cell key (identical to `ablation_associativity`).
pub fn assoc_key(workload: &str, ways: usize) -> String {
    format!("assoc/{workload}/{ways}way")
}

/// The `cache_scaling` kind's cell key.
pub fn cache_scaling_key(kb: usize) -> String {
    format!("cache_scaling/{kb:04}KB")
}

/// The `crossover` kind's cell key (identical to
/// `ablation_periodic_daemon`).
pub fn crossover_key(period: Option<u64>, policy: RefPolicy) -> String {
    let p = period.map_or("off".to_string(), |p| format!("{p:07}"));
    format!("crossover/{p}/{policy}")
}

/// The `events` kind's cell key (`sensitivity/SLC/5MB` with the
/// matching prefix — identical to `ablation_sensitivity`).
pub fn events_key(prefix: &str, workload: &str, mb: u32) -> String {
    format!("{prefix}/{workload}/{mb}MB")
}

/// The `soft_faults` kind's cell key.
pub fn soft_faults_key(policy: RefPolicy, enabled: bool) -> String {
    format!(
        "soft_faults/{policy}/{}",
        if enabled { "on" } else { "off" }
    )
}

/// The `watermarks` kind's cell key.
pub fn watermarks_key(high: u32, policy: RefPolicy) -> String {
    format!("watermarks/{high:03}/{policy}")
}

/// The `sim` kind's cell key: every effective coordinate appears, so
/// adding an axis later never re-keys existing cells.
pub fn sim_key(
    workload: &str,
    mb: u32,
    dirty: DirtyPolicy,
    policy: RefPolicy,
    cpus: usize,
) -> String {
    format!("sim/{workload}/{mb}MB/{dirty}/{policy}/{cpus}cpu")
}

fn coord_u64(cell: &Cell, axis: &str) -> u64 {
    match cell.coord(axis) {
        Some(Json::UInt(u)) => *u,
        Some(Json::Int(i)) => *i as u64,
        _ => unreachable!("validated {axis} coordinate"),
    }
}

fn coord_str<'a>(cell: &'a Cell, axis: &str) -> &'a str {
    match cell.coord(axis) {
        Some(Json::Str(s)) => s,
        _ => unreachable!("validated {axis} coordinate"),
    }
}

/// Builds the workload named by a canonical axis value.
fn axis_workload(name: &str) -> (&'static str, fn() -> Workload) {
    match name {
        "SLC" => ("SLC", slc),
        _ => ("WORKLOAD1", workload1),
    }
}

/// The effective memory size for kinds with a scenario-level `mem_mb`.
fn scenario_mem(s: &Scenario) -> MemSize {
    MemSize::new(s.mem_mb.expect("kind shape requires mem_mb"))
}

/// The cartesian product of the declared axes, first axis outermost —
/// the same nesting order as the legacy binaries' loops.
fn cartesian(scenario: &Scenario) -> Vec<Vec<(String, Json)>> {
    let mut combos: Vec<Vec<(String, Json)>> = vec![Vec::new()];
    for axis in &scenario.axes {
        let mut next = Vec::with_capacity(combos.len() * axis.values.len());
        for combo in &combos {
            for value in &axis.values {
                let mut c = combo.clone();
                c.push((axis.name.clone(), value.clone()));
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Expands a validated scenario into its cells and runnable jobs at
/// the given (already resolved and clamped) scale.
///
/// # Errors
///
/// Returns a message naming the colliding key if two cells expand to
/// the same key (a backstop — axis-level duplicate detection should
/// make this unreachable).
pub fn expand(
    scenario: &Scenario,
    scale: Scale,
    obs: Option<ObsParams>,
) -> Result<Vec<(Cell, Job<CellValue>)>, String> {
    let mut cells = Vec::new();
    for coords in cartesian(scenario) {
        let cell = Cell {
            key: String::new(),
            coords,
        };
        let (key, job) = build_cell(scenario, &cell, scale, obs)?;
        if cells.iter().any(|(c, _): &(Cell, _)| c.key == key) {
            return Err(format!("matrix: cells collide on key {key:?}"));
        }
        cells.push((
            Cell {
                key,
                coords: cell.coords,
            },
            job,
        ));
    }
    Ok(cells)
}

/// [`expand`] without jobs, for `explain` and serve-side planning.
pub fn enumerate(scenario: &Scenario, scale: Scale) -> Result<Vec<Cell>, String> {
    expand(scenario, scale, None).map(|cells| cells.into_iter().map(|(c, _)| c).collect())
}

fn build_cell(
    scenario: &Scenario,
    cell: &Cell,
    scale: Scale,
    obs: Option<ObsParams>,
) -> Result<(String, Job<CellValue>), String> {
    match scenario.kind {
        Kind::Flush => {
            let pct = coord_u64(cell, "occupancy_pct");
            let frac = pct as f64 / 100.0;
            let key = flush_key(pct);
            let job = Job::new(key.clone(), move || {
                let cmp = flush_cost_comparison(frac, &CostParams::paper());
                let artifact = cmp.to_json();
                Ok(JobOutput::new(CellValue::Flush(cmp), artifact))
            });
            Ok((key, job))
        }
        Kind::Assoc => {
            let (name, make) = axis_workload(coord_str(cell, "workload"));
            let ways = coord_u64(cell, "ways") as usize;
            let key = assoc_key(name, ways);
            let job = Job::new(key.clone(), move || {
                let workload = make();
                let mut misses = 0u64;
                if ways == 1 {
                    // Direct-mapped reference point.
                    let mut cache = VirtualCache::prototype();
                    for r in workload.generator(scale.seed).take(scale.refs as usize) {
                        if !cache.probe(r.addr).hit {
                            misses += 1;
                            cache.fill_for_read(r.addr, Protection::ReadWrite, false);
                        }
                    }
                } else {
                    let mut cache = SetAssocCache::new(CACHE_LINES as usize, ways);
                    for r in workload.generator(scale.seed).take(scale.refs as usize) {
                        if !cache.probe(r.addr) {
                            misses += 1;
                            cache.fill(r.addr, Protection::ReadWrite, false, false);
                        }
                    }
                }
                let ratio = misses as f64 / scale.refs as f64;
                let artifact = Json::object([
                    ("workload", Json::from(workload.name())),
                    ("ways", Json::from(ways)),
                    ("misses", Json::from(misses)),
                    ("refs", Json::from(scale.refs)),
                    ("miss_ratio", Json::from(ratio)),
                ]);
                Ok(JobOutput::new(CellValue::MissRatio(ratio), artifact))
            });
            Ok((key, job))
        }
        Kind::CacheScaling => {
            let kb = coord_u64(cell, "cache_kb") as usize;
            let mem = scenario_mem(scenario);
            let source = scenario.workload.clone().expect("kind shape");
            let key = cache_scaling_key(kb);
            let job = Job::new(key.clone(), move || {
                let workload = source.workload();
                let (row, rep) = measure_cache_scaling_point_obs(&workload, mem, &scale, kb, obs)
                    .map_err(|e| e.to_string())?;
                let artifact = row.to_json();
                Ok(attach_obs(
                    JobOutput::new(CellValue::CacheScaling(row), artifact),
                    rep,
                ))
            });
            Ok((key, job))
        }
        Kind::Crossover => {
            let period = match cell.coord("period") {
                Some(Json::Null) => None,
                Some(Json::UInt(p)) => Some(*p),
                _ => unreachable!("validated period coordinate"),
            };
            let policy: RefPolicy = coord_str(cell, "ref").parse().expect("canonical policy");
            let mem = scenario_mem(scenario);
            let source = scenario.workload.clone().expect("kind shape");
            let key = crossover_key(period, policy);
            let job = Job::new(key.clone(), move || {
                let workload = source.workload();
                let (row, rep) = measure_crossover_obs(&workload, mem, period, policy, &scale, obs)
                    .map_err(|e| e.to_string())?;
                let artifact = row.to_json();
                Ok(attach_obs(
                    JobOutput::new(CellValue::Crossover(row), artifact),
                    rep,
                ))
            });
            Ok((key, job))
        }
        Kind::Events => {
            let (name, make) = axis_workload(coord_str(cell, "workload"));
            let mb = coord_u64(cell, "mem_mb") as u32;
            let prefix = scenario.key_prefix.as_deref().unwrap_or("table_3_3");
            let key = events_key(prefix, name, mb);
            let job = events_job_for(
                key.clone(),
                make,
                MemSize::new(mb),
                scale,
                obs,
                SimOverrides::default(),
            )
            .map(CellValue::Events);
            Ok((key, job))
        }
        Kind::SoftFaults => {
            let policy: RefPolicy = coord_str(cell, "ref").parse().expect("canonical policy");
            let enabled = matches!(cell.coord("soft_faults"), Some(Json::Bool(true)));
            let mem = scenario_mem(scenario);
            let source = scenario.workload.clone().expect("kind shape");
            let key = soft_faults_key(policy, enabled);
            let job = Job::new(key.clone(), move || {
                let workload = source.workload();
                let mut sim = SpurSystem::new(SimConfig {
                    mem,
                    dirty: DirtyPolicy::Spur,
                    ref_policy: policy,
                    soft_faults: enabled,
                    ..SimConfig::default()
                })
                .map_err(|e| e.to_string())?;
                if let Some(p) = obs {
                    sim.enable_obs(p);
                }
                sim.load_workload(&workload).map_err(|e| e.to_string())?;
                sim.run(&mut workload.generator(scale.seed), scale.refs)
                    .map_err(|e| e.to_string())?;
                let rep = sim.finish_obs();
                let stats = sim.vm().stats();
                let row = PagingCell {
                    page_ins: stats.page_ins,
                    soft_faults: stats.soft_faults,
                    elapsed_secs: sim.events().elapsed_seconds(),
                };
                let artifact = Json::object([
                    ("policy", Json::from(policy.to_string())),
                    ("soft_faults_enabled", Json::from(enabled)),
                    ("page_ins", Json::from(row.page_ins)),
                    ("soft_faults_taken", Json::from(row.soft_faults)),
                    ("elapsed_secs", Json::from(row.elapsed_secs)),
                ]);
                Ok(attach_obs(
                    JobOutput::new(CellValue::Paging(row), artifact),
                    rep,
                ))
            });
            Ok((key, job))
        }
        Kind::Watermarks => {
            let high = coord_u64(cell, "high_water") as u32;
            let policy: RefPolicy = coord_str(cell, "ref").parse().expect("canonical policy");
            let mem = scenario_mem(scenario);
            let source = scenario.workload.clone().expect("kind shape");
            let key = watermarks_key(high, policy);
            let job = Job::new(key.clone(), move || {
                let workload = source.workload();
                let mut sim = SpurSystem::new(SimConfig {
                    mem,
                    dirty: DirtyPolicy::Spur,
                    ref_policy: policy,
                    free_low_water: (high / 4).max(8),
                    free_high_water: high,
                    ..SimConfig::default()
                })
                .map_err(|e| e.to_string())?;
                if let Some(p) = obs {
                    sim.enable_obs(p);
                }
                sim.load_workload(&workload).map_err(|e| e.to_string())?;
                sim.run(&mut workload.generator(scale.seed), scale.refs)
                    .map_err(|e| e.to_string())?;
                let rep = sim.finish_obs();
                let stats = sim.vm().stats();
                let row = PagingCell {
                    page_ins: stats.page_ins,
                    soft_faults: stats.soft_faults,
                    elapsed_secs: sim.events().elapsed_seconds(),
                };
                let artifact = Json::object([
                    ("free_high_water", Json::from(high)),
                    ("policy", Json::from(policy.to_string())),
                    ("page_ins", Json::from(row.page_ins)),
                    ("soft_faults_taken", Json::from(row.soft_faults)),
                    ("elapsed_secs", Json::from(row.elapsed_secs)),
                ]);
                Ok(attach_obs(
                    JobOutput::new(CellValue::Paging(row), artifact),
                    rep,
                ))
            });
            Ok((key, job))
        }
        Kind::Sim => build_sim_cell(scenario, cell, scale, obs),
    }
}

/// The general matrix point: one full `SpurSystem` (or lockstep
/// oracle) run per (mem, dirty, ref, cpus) coordinate, over a builtin
/// workload, a spec, or a recorded trace.
fn build_sim_cell(
    scenario: &Scenario,
    cell: &Cell,
    scale: Scale,
    obs: Option<ObsParams>,
) -> Result<(String, Job<CellValue>), String> {
    let mb = coord_u64(cell, "mem_mb") as u32;
    let dirty: DirtyPolicy = match cell.coord("dirty") {
        Some(Json::Str(s)) => s.parse().expect("canonical policy"),
        _ => DirtyPolicy::Spur,
    };
    let policy: RefPolicy = match cell.coord("ref") {
        Some(Json::Str(s)) => s.parse().expect("canonical policy"),
        _ => RefPolicy::Miss,
    };
    let cpus = match cell.coord("cpus") {
        Some(Json::UInt(n)) => *n as usize,
        _ => 1,
    };
    let source = scenario.workload.clone().expect("kind shape");
    let name = source.workload().name().to_string();
    let key = sim_key(&name, mb, dirty, policy, cpus);
    let lockstep = scenario.run.lockstep;

    let job = Job::new(key.clone(), move || {
        let workload = source.workload();
        let cfg = SimConfig {
            mem: MemSize::new(mb),
            dirty,
            ref_policy: policy,
            cpus,
            ..SimConfig::default()
        };
        let trace = match source.trace_path() {
            None => None,
            Some(path) => Some(
                RecordedTrace::load(path)
                    .map_err(|e| format!("loading recorded trace {path:?}: {e}"))?,
            ),
        };
        let (ev, page_ins, soft_faults, rep) = if lockstep {
            let mut check = Lockstep::new(cfg)?;
            check.load_workload(&workload)?;
            let run_result = match &trace {
                Some(t) => check.run(&mut t.iter(), scale.refs),
                None => check.run(&mut workload.generator(scale.seed), scale.refs),
            };
            run_result.map_err(|d| format!("lockstep divergence: {d}"))?;
            let sys = check.system();
            let stats = sys.vm().stats();
            (sys.events(), stats.page_ins, stats.soft_faults, None)
        } else {
            let mut sim = SpurSystem::new(cfg).map_err(|e| e.to_string())?;
            if let Some(p) = obs {
                sim.enable_obs(p);
            }
            sim.load_workload(&workload).map_err(|e| e.to_string())?;
            match &trace {
                Some(t) => sim.run(&mut t.iter(), scale.refs),
                None => sim.run(&mut workload.generator(scale.seed), scale.refs),
            }
            .map_err(|e| e.to_string())?;
            let rep = sim.finish_obs();
            let stats = sim.vm().stats();
            (sim.events(), stats.page_ins, stats.soft_faults, rep)
        };
        let row = SimCell {
            dirty_faults: ev.n_ds + ev.n_ef,
            page_ins,
            soft_faults,
            elapsed_secs: ev.elapsed_seconds(),
            events: ev,
        };
        let artifact = Json::object([
            ("workload", Json::from(workload.name())),
            ("mem_mb", Json::from(mb)),
            ("dirty", Json::from(dirty.to_string())),
            ("ref", Json::from(policy.to_string())),
            ("cpus", Json::from(cpus)),
            ("dirty_faults", Json::from(row.dirty_faults)),
            ("page_ins", Json::from(row.page_ins)),
            ("soft_faults_taken", Json::from(row.soft_faults)),
            ("elapsed_secs", Json::from(row.elapsed_secs)),
            ("events", ev.to_json()),
        ]);
        Ok(attach_obs(
            JobOutput::new(CellValue::Sim(row), artifact),
            rep,
        ))
    });
    Ok((key, job))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cfg: &str) -> Scenario {
        Scenario::parse_str(cfg).unwrap()
    }

    #[test]
    fn expansion_keys_match_the_legacy_schemes() {
        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"crossover",
                "workload":"WORKLOAD1","mem_mb":8,
                "matrix":{"period":[null,500000,100000],"ref":["MISS","REF","NOREF"]}}"#,
        );
        let cells = enumerate(&s, Scale::quick()).unwrap();
        let keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys[0], "crossover/off/MISS");
        assert_eq!(keys[3], "crossover/0500000/MISS");
        assert_eq!(keys[8], "crossover/0100000/NOREF");
        assert_eq!(cells.len(), 9);
    }

    #[test]
    fn expansion_order_is_first_axis_outermost() {
        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"assoc",
                "matrix":{"workload":["SLC","WORKLOAD1"],"ways":[1,2,4,8]}}"#,
        );
        let cells = enumerate(&s, Scale::quick()).unwrap();
        let keys: Vec<&str> = cells.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "assoc/SLC/1way",
                "assoc/SLC/2way",
                "assoc/SLC/4way",
                "assoc/SLC/8way",
                "assoc/WORKLOAD1/1way",
                "assoc/WORKLOAD1/2way",
                "assoc/WORKLOAD1/4way",
                "assoc/WORKLOAD1/8way",
            ]
        );
    }

    #[test]
    fn flush_and_watermark_keys_zero_pad_like_the_binaries() {
        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"flush",
                "matrix":{"occupancy_pct":[5,10,100]}}"#,
        );
        let keys: Vec<String> = enumerate(&s, Scale::quick())
            .unwrap()
            .into_iter()
            .map(|c| c.key)
            .collect();
        assert_eq!(keys, ["flush/005pct", "flush/010pct", "flush/100pct"]);

        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"watermarks",
                "workload":"WORKLOAD1","mem_mb":5,
                "matrix":{"high_water":[32,320],"ref":["MISS"]}}"#,
        );
        let keys: Vec<String> = enumerate(&s, Scale::quick())
            .unwrap()
            .into_iter()
            .map(|c| c.key)
            .collect();
        assert_eq!(keys, ["watermarks/032/MISS", "watermarks/320/MISS"]);
    }

    #[test]
    fn sim_keys_carry_effective_defaults_for_undeclared_axes() {
        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"sim",
                "workload":"SLC","matrix":{"mem_mb":[5],"dirty":["MIN","FAULT"]}}"#,
        );
        let keys: Vec<String> = enumerate(&s, Scale::quick())
            .unwrap()
            .into_iter()
            .map(|c| c.key)
            .collect();
        assert_eq!(
            keys,
            ["sim/SLC/5MB/MIN/MISS/1cpu", "sim/SLC/5MB/FAULT/MISS/1cpu"]
        );
    }

    #[test]
    fn coords_follow_declared_axis_order() {
        let s = parse(
            r#"{"schema_version":1,"name":"t","experiment":"soft_faults",
                "workload":"WORKLOAD1","mem_mb":5,
                "matrix":{"ref":["MISS","NOREF"],"soft_faults":[true,false]}}"#,
        );
        let cells = enumerate(&s, Scale::quick()).unwrap();
        assert_eq!(
            cells[0].coords[0],
            ("ref".to_string(), Json::Str("MISS".into()))
        );
        assert_eq!(
            cells[0].coords[1],
            ("soft_faults".to_string(), Json::Bool(true))
        );
        assert_eq!(cells[1].key, "soft_faults/MISS/off");
        assert_eq!(cells[2].key, "soft_faults/NOREF/on");
    }
}
