//! Byte-parity between the scenario engine and the legacy `ablation_*`
//! binaries it folded in.
//!
//! Each test reconstructs the *original* binary's job construction and
//! stdout assembly inline (copied from the pre-fold code, legacy
//! constants and all), runs both that and the committed scenario config
//! through the harness, and diffs:
//!
//! - per-key artifact documents, byte for byte (`job_artifact_json`
//!   encode of both sides), and
//! - the legacy stdout (banner + tables + closing prose) against
//!   `render_legacy`.
//!
//! Observability stays off on both sides so the comparison is exact.

use spur_cache::assoc::{synonym_hazard_demo, SetAssocCache};
use spur_cache::cache::VirtualCache;
use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::ablation::{
    flush_cost_comparison, handler_tuning, measure_cache_scaling_point_obs, render_cache_scaling,
    render_handler_tuning, tdc_sensitivity,
};
use spur_core::experiments::crossover::{measure_crossover_obs, render_crossover};
use spur_core::experiments::Scale;
use spur_core::jobs::events_job_obs;
use spur_core::report::Table;
use spur_core::system::{SimConfig, SpurSystem};
use spur_harness::{job_artifact_json, run_jobs, Job, JobOutput, Json, RunReport};
use spur_scenario::cells::expand;
use spur_scenario::render::{legacy_banner, render_legacy};
use spur_scenario::{CellValue, Scenario};
use spur_trace::workloads::{slc, workload1, Workload};
use spur_types::{CostParams, MemSize, Protection, CACHE_LINES};
use spur_vm::policy::RefPolicy;

/// A small custom scale so the whole parity suite stays fast; both
/// sides use it, so the artifact bytes still have to agree.
fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.refs = 150_000;
    scale
}

fn scenario(config: &str) -> Scenario {
    Scenario::parse_str(config).expect("committed config parses")
}

/// Runs the scenario side of a config at `scale`, no observability.
fn run_scenario_side(s: &Scenario, scale: Scale) -> RunReport<CellValue> {
    let expanded = expand(s, scale, None).expect("expansion succeeds");
    let jobs: Vec<Job<CellValue>> = expanded.into_iter().map(|(_, job)| job).collect();
    run_jobs(jobs, 2)
}

/// Byte-compares every legacy job's artifact document against the
/// scenario report's document for the same key.
fn assert_artifact_parity<T>(legacy: &RunReport<T>, ours: &RunReport<CellValue>) {
    assert_eq!(legacy.jobs().len(), ours.jobs().len(), "cell count differs");
    for job in legacy.jobs() {
        let twin = ours
            .jobs()
            .iter()
            .find(|j| j.key == job.key)
            .unwrap_or_else(|| panic!("scenario run missing key {}", job.key));
        assert_eq!(
            job_artifact_json(job).encode_pretty(),
            job_artifact_json(twin).encode_pretty(),
            "artifact bytes differ for key {}",
            job.key
        );
    }
}

/// What `print_header` in the legacy binaries wrote.
fn legacy_print_header(what: &str, scale: &Scale) -> String {
    format!(
        "SPUR reference/dirty-bit reproduction — {what}\nscale: {} references/run, {} rep(s), seed {}\n\n",
        scale.refs, scale.reps, scale.seed
    )
}

// ---------------------------------------------------------------------------
// ablation_flush
// ---------------------------------------------------------------------------

#[test]
fn flush_parity() {
    const FRACS: [f64; 5] = [0.05, 0.10, 0.25, 0.50, 1.00];
    let key = |frac: f64| format!("flush/{:03}pct", (frac * 100.0).round() as u64);
    let scale = tiny();

    let legacy_jobs: Vec<_> = FRACS
        .iter()
        .map(|&frac| {
            Job::new(key(frac), move || {
                let cmp = flush_cost_comparison(frac, &CostParams::paper());
                let artifact = cmp.to_json();
                Ok(JobOutput::new(cmp, artifact))
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!("../../../scenarios/ablation_flush.json"));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    // The original assemble() + epilogue prose, via println! semantics.
    let mut t = Table::new("Page flush: tag-checked vs SPUR's tag-blind operation");
    t.headers(&[
        "page occupancy",
        "checked flushed",
        "checked cycles",
        "blind flushed",
        "blind cycles",
        "collateral blocks",
    ]);
    for frac in FRACS {
        let cmp = legacy.require(&key(frac)).unwrap();
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            cmp.checked_flushed.to_string(),
            cmp.checked_cycles.to_string(),
            cmp.blind_flushed.to_string(),
            cmp.blind_cycles.to_string(),
            cmp.collateral.to_string(),
        ]);
    }
    let mut expected = format!("{}\n", t.render());
    expected.push_str("Section 3.2 assumed ~10% occupancy: the checked flush lands near the\n");
    expected.push_str("paper's ~500 cycles while the blind flush is several times costlier and\n");
    expected.push_str("destroys aliasing blocks from unrelated pages.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale),
        None,
        "ablation_flush printed no header"
    );
}

// ---------------------------------------------------------------------------
// ablation_associativity
// ---------------------------------------------------------------------------

#[test]
fn associativity_parity() {
    type NamedWorkload = (&'static str, fn() -> Workload);
    const WORKLOADS: [NamedWorkload; 2] = [("SLC", slc), ("WORKLOAD1", workload1)];
    const WAYS: [usize; 4] = [1, 2, 4, 8];
    let key = |workload: &str, ways: usize| format!("assoc/{workload}/{ways}way");
    let mut scale = tiny();
    scale.refs = scale.refs.min(6_000_000);

    let legacy_jobs: Vec<_> = WORKLOADS
        .iter()
        .flat_map(|&(name, make)| {
            WAYS.map(|ways| {
                Job::new(key(name, ways), move || {
                    let workload = make();
                    let mut misses = 0u64;
                    if ways == 1 {
                        let mut cache = VirtualCache::prototype();
                        for r in workload.generator(scale.seed).take(scale.refs as usize) {
                            if !cache.probe(r.addr).hit {
                                misses += 1;
                                cache.fill_for_read(r.addr, Protection::ReadWrite, false);
                            }
                        }
                    } else {
                        let mut cache = SetAssocCache::new(CACHE_LINES as usize, ways);
                        for r in workload.generator(scale.seed).take(scale.refs as usize) {
                            if !cache.probe(r.addr) {
                                misses += 1;
                                cache.fill(r.addr, Protection::ReadWrite, false, false);
                            }
                        }
                    }
                    let ratio = misses as f64 / scale.refs as f64;
                    let artifact = Json::object([
                        ("workload", Json::from(workload.name())),
                        ("ways", Json::from(ways)),
                        ("misses", Json::from(misses)),
                        ("refs", Json::from(scale.refs)),
                        ("miss_ratio", Json::from(ratio)),
                    ]);
                    Ok(JobOutput::new(ratio, artifact))
                })
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!(
        "../../../scenarios/ablation_associativity.json"
    ));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let mut t = Table::new("128 KB virtual cache, miss ratio by associativity");
    t.headers(&["Workload", "direct", "2-way", "4-way", "8-way"]);
    for (name, _) in WORKLOADS {
        let mut cells = vec![name.to_string()];
        for ways in WAYS {
            let ratio = legacy.require(&key(name, ways)).unwrap();
            cells.push(format!("{:.2}%", 100.0 * ratio));
        }
        t.row(cells);
    }
    let (direct, assoc) = synonym_hazard_demo();
    let mut expected = format!("{}\n", t.render());
    expected.push_str("Synonym hazard demo (why Sun-3 cannot follow): one datum, two legal\n");
    expected.push_str(&format!(
        "Sun-3 aliases -> {direct} copy in a direct map, {assoc} incoherent copies 2-way.\n"
    ));
    expected.push_str("SPUR's one-global-address rule is what makes associativity an option.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: cache associativity (miss ratio, no VM)", &scale)
    );
}

// ---------------------------------------------------------------------------
// ablation_cache_scaling
// ---------------------------------------------------------------------------

#[test]
fn cache_scaling_parity() {
    const CACHE_KBS: [usize; 4] = [32, 128, 512, 2048];
    let key = |kb: usize| format!("cache_scaling/{kb:04}KB");
    let mut scale = tiny();
    scale.refs = scale.refs.min(8_000_000);

    let legacy_jobs: Vec<_> = CACHE_KBS
        .iter()
        .map(|&kb| {
            Job::new(key(kb), move || {
                let workload = slc();
                let (row, _rep) =
                    measure_cache_scaling_point_obs(&workload, MemSize::MB5, &scale, kb, None)
                        .map_err(|e| e.to_string())?;
                let artifact = row.to_json();
                Ok(JobOutput::new(row, artifact))
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!(
        "../../../scenarios/ablation_cache_scaling.json"
    ));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let rows: Vec<_> = CACHE_KBS
        .iter()
        .map(|&kb| legacy.require(&key(kb)).unwrap().clone())
        .collect();
    let mut expected = format!("{}\n", render_cache_scaling(&rows));
    expected.push_str("Expected trend: the MISS/REF page-in ratio grows with cache size,\n");
    expected.push_str("and MISS's ref faults (its chances to re-set R) shrink.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: MISS approximation vs cache size", &scale)
    );
}

// ---------------------------------------------------------------------------
// ablation_periodic_daemon (crossover)
// ---------------------------------------------------------------------------

#[test]
fn periodic_daemon_parity() {
    const PERIODS: [Option<u64>; 3] = [None, Some(500_000), Some(100_000)];
    let key = |period: Option<u64>, policy: RefPolicy| {
        let p = period.map_or("off".to_string(), |p| format!("{p:07}"));
        format!("crossover/{p}/{policy}")
    };
    let mut scale = tiny();
    scale.refs = scale.refs.min(12_000_000);

    let legacy_jobs: Vec<_> = PERIODS
        .iter()
        .flat_map(|&period| {
            RefPolicy::ALL.map(|policy| {
                Job::new(key(period, policy), move || {
                    let workload = workload1();
                    let (row, _rep) = measure_crossover_obs(
                        &workload,
                        MemSize::MB8,
                        period,
                        policy,
                        &scale,
                        None,
                    )
                    .map_err(|e| e.to_string())?;
                    let artifact = row.to_json();
                    Ok(JobOutput::new(row, artifact))
                })
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!(
        "../../../scenarios/ablation_periodic_daemon.json"
    ));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let mut rows = Vec::new();
    for period in PERIODS {
        for policy in RefPolicy::ALL {
            rows.push(legacy.require(&key(period, policy)).unwrap().clone());
        }
    }
    let mut expected = format!("{}\n", render_crossover(&rows));
    expected.push_str("Paper, Section 4.2 (WORKLOAD1 @ 8 MB): NOREF ran 2% FASTER than MISS\n");
    expected.push_str("because maintaining bits nobody needs is pure overhead. The periodic\n");
    expected.push_str("hand reproduces that crossover; pressure-only daemons hide it.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: periodic daemon (WORKLOAD1 @ 8 MB)", &scale)
    );
}

// ---------------------------------------------------------------------------
// ablation_sensitivity (events, key_prefix "sensitivity")
// ---------------------------------------------------------------------------

#[test]
fn sensitivity_parity() {
    let scale = tiny();

    let legacy = run_jobs(
        vec![events_job_obs(
            "sensitivity/SLC/5MB".to_string(),
            slc,
            MemSize::MB5,
            scale,
            None,
        )],
        1,
    );

    let s = scenario(include_str!("../../../scenarios/ablation_sensitivity.json"));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let row = legacy.require("sensitivity/SLC/5MB").unwrap();
    let mut t = Table::new("t_dc sensitivity: does WRITE ever stop losing?");
    t.headers(&[
        "t_dc",
        "O(WRITE) Mcycles",
        "worst other Mcycles",
        "WRITE still worst?",
    ]);
    for r in tdc_sensitivity(&row.events) {
        t.row(vec![
            r.t_dc.to_string(),
            format!("{:.3}", r.write_overhead.millions()),
            format!("{:.3}", r.best_other.millions()),
            if r.write_still_loses { "yes" } else { "no" }.to_string(),
        ]);
    }
    let mut expected = format!("{}\n", t.render());
    expected.push_str(&format!(
        "{}\n",
        render_handler_tuning(&handler_tuning(&row.events))
    ));

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: cost-parameter sensitivity", &scale)
    );
}

// ---------------------------------------------------------------------------
// ablation_soft_faults
// ---------------------------------------------------------------------------

#[test]
fn soft_faults_parity() {
    const POLICIES: [RefPolicy; 2] = [RefPolicy::Miss, RefPolicy::Noref];
    let key = |policy: RefPolicy, enabled: bool| {
        format!(
            "soft_faults/{policy}/{}",
            if enabled { "on" } else { "off" }
        )
    };
    let mut scale = tiny();
    scale.refs = scale.refs.min(6_000_000);

    let legacy_jobs: Vec<_> = POLICIES
        .iter()
        .flat_map(|&policy| {
            [true, false].map(|enabled| {
                Job::new(key(policy, enabled), move || {
                    let workload = workload1();
                    let mut sim = SpurSystem::new(SimConfig {
                        mem: MemSize::MB5,
                        dirty: DirtyPolicy::Spur,
                        ref_policy: policy,
                        soft_faults: enabled,
                        ..SimConfig::default()
                    })
                    .map_err(|e| e.to_string())?;
                    sim.load_workload(&workload).map_err(|e| e.to_string())?;
                    sim.run(&mut workload.generator(scale.seed), scale.refs)
                        .map_err(|e| e.to_string())?;
                    let stats = sim.vm().stats();
                    let artifact = Json::object([
                        ("policy", Json::from(policy.to_string())),
                        ("soft_faults_enabled", Json::from(enabled)),
                        ("page_ins", Json::from(stats.page_ins)),
                        ("soft_faults_taken", Json::from(stats.soft_faults)),
                        ("elapsed_secs", Json::from(sim.events().elapsed_seconds())),
                    ]);
                    Ok(JobOutput::new(
                        (
                            stats.page_ins,
                            stats.soft_faults,
                            sim.events().elapsed_seconds(),
                        ),
                        artifact,
                    ))
                })
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!("../../../scenarios/ablation_soft_faults.json"));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let mut t = Table::new("Soft-fault window on/off");
    t.headers(&[
        "Policy",
        "Soft faults",
        "Page-Ins",
        "Soft-faults taken",
        "Elapsed(s)",
    ]);
    for policy in POLICIES {
        for enabled in [true, false] {
            let (page_ins, soft_faults, elapsed_secs) =
                legacy.require(&key(policy, enabled)).unwrap();
            t.row(vec![
                policy.to_string(),
                if enabled { "on" } else { "off" }.to_string(),
                page_ins.to_string(),
                soft_faults.to_string(),
                format!("{elapsed_secs:.1}"),
            ]);
        }
    }
    let mut expected = format!("{}\n", t.render());
    expected.push_str("Expected: MISS barely changes (its R bits already protect hot pages),\n");
    expected.push_str("but NOREF without the soft-fault window thrashes.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: free-list soft faults (WORKLOAD1 @ 5 MB)", &scale)
    );
}

// ---------------------------------------------------------------------------
// ablation_watermarks
// ---------------------------------------------------------------------------

#[test]
fn watermarks_parity() {
    const HIGHS: [u32; 5] = [32, 64, 107, 160, 320];
    const POLICIES: [RefPolicy; 2] = [RefPolicy::Miss, RefPolicy::Noref];
    let key = |high: u32, policy: RefPolicy| format!("watermarks/{high:03}/{policy}");
    let mut scale = tiny();
    scale.refs = scale.refs.min(6_000_000);

    let legacy_jobs: Vec<_> = HIGHS
        .iter()
        .flat_map(|&high| {
            POLICIES.map(|policy| {
                Job::new(key(high, policy), move || {
                    let workload = workload1();
                    let mut sim = SpurSystem::new(SimConfig {
                        mem: MemSize::MB5,
                        dirty: DirtyPolicy::Spur,
                        ref_policy: policy,
                        free_low_water: (high / 4).max(8),
                        free_high_water: high,
                        ..SimConfig::default()
                    })
                    .map_err(|e| e.to_string())?;
                    sim.load_workload(&workload).map_err(|e| e.to_string())?;
                    sim.run(&mut workload.generator(scale.seed), scale.refs)
                        .map_err(|e| e.to_string())?;
                    let stats = sim.vm().stats();
                    let artifact = Json::object([
                        ("free_high_water", Json::from(high)),
                        ("policy", Json::from(policy.to_string())),
                        ("page_ins", Json::from(stats.page_ins)),
                        ("soft_faults_taken", Json::from(stats.soft_faults)),
                        ("elapsed_secs", Json::from(sim.events().elapsed_seconds())),
                    ]);
                    Ok(JobOutput::new(
                        (
                            stats.page_ins,
                            stats.soft_faults,
                            sim.events().elapsed_seconds(),
                        ),
                        artifact,
                    ))
                })
            })
        })
        .collect();
    let legacy = run_jobs(legacy_jobs, 2);

    let s = scenario(include_str!("../../../scenarios/ablation_watermarks.json"));
    let ours = run_scenario_side(&s, scale);
    assert_artifact_parity(&legacy, &ours);

    let mut t = Table::new("High watermark (= soft-fault window) vs paging");
    t.headers(&[
        "high water",
        "policy",
        "page-ins",
        "soft faults",
        "elapsed(s)",
    ]);
    for high in HIGHS {
        for policy in POLICIES {
            let (page_ins, soft_faults, elapsed_secs) = legacy.require(&key(high, policy)).unwrap();
            t.row(vec![
                high.to_string(),
                policy.to_string(),
                page_ins.to_string(),
                soft_faults.to_string(),
                format!("{elapsed_secs:.1}"),
            ]);
        }
    }
    let mut expected = format!("{}\n", t.render());
    expected.push_str("The window trades resident capacity for forgiveness: tiny windows\n");
    expected.push_str("punish NOREF's mis-reclaims with page-ins; huge ones shrink usable\n");
    expected.push_str("memory and push page-ins up for everyone.\n");

    assert_eq!(render_legacy(&s, &ours).unwrap(), expected);
    assert_eq!(
        legacy_banner(&s, &scale).unwrap(),
        legacy_print_header("ablation: daemon watermarks (WORKLOAD1 @ 5 MB)", &scale)
    );
}
