//! Determinism guarantees the scenario engine inherits from the
//! simulator: same seed → same bytes, and a recorded trace replayed
//! through the engine reproduces the live generator run exactly.

use spur_core::experiments::Scale;
use spur_harness::{job_artifact_json, run_jobs, Job, RunReport};
use spur_scenario::cells::expand;
use spur_scenario::{CellValue, Scenario};
use spur_trace::record::RecordedTrace;
use spur_trace::workloads::workload1;

const REFS: u64 = 150_000;

fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.refs = REFS;
    scale
}

fn run(s: &Scenario, scale: Scale) -> RunReport<CellValue> {
    let expanded = expand(s, scale, None).expect("expansion succeeds");
    let jobs: Vec<Job<CellValue>> = expanded.into_iter().map(|(_, job)| job).collect();
    run_jobs(jobs, 2)
}

/// Encoded artifact docs keyed by job key, for byte comparison.
fn docs(report: &RunReport<CellValue>) -> Vec<(String, String)> {
    let mut out: Vec<_> = report
        .jobs()
        .iter()
        .map(|j| (j.key.clone(), job_artifact_json(j).encode_pretty()))
        .collect();
    out.sort();
    out
}

const SIM_CONFIG: &str = r#"{
  "schema_version": 1,
  "name": "determinism_probe",
  "description": "same-seed sim matrix for the determinism test",
  "experiment": "sim",
  "workload": "WORKLOAD1",
  "matrix": {
    "mem_mb": [5, 6],
    "dirty": ["MIN", "FAULT"]
  }
}"#;

#[test]
fn same_seed_runs_are_byte_identical() {
    let s = Scenario::parse_str(SIM_CONFIG).unwrap();
    let first = run(&s, tiny());
    let second = run(&s, tiny());
    let a = docs(&first);
    let b = docs(&second);
    assert_eq!(a.len(), 4);
    for ((ka, da), (kb, db)) in a.iter().zip(b.iter()) {
        assert_eq!(ka, kb);
        assert_eq!(da, db, "same-seed artifact bytes differ for {ka}");
    }
}

/// Records the workload generator to a `SPURTRC1` file, then runs the
/// same matrix once from the live generator and once from the trace
/// (via a trace-workload scenario). Both paths register WORKLOAD1's
/// regions, so keys and artifact bytes must match exactly.
#[test]
fn recorded_trace_replays_byte_identically() {
    let scale = tiny();
    let workload = workload1();
    let trace = RecordedTrace::record(workload.generator(scale.seed).take(REFS as usize));
    assert_eq!(trace.len(), REFS);

    let dir = std::env::temp_dir().join(format!("spur-scenario-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("probe.spurtrace");
    trace.save(&path).unwrap();

    let live = Scenario::parse_str(
        r#"{
          "schema_version": 1,
          "name": "replay_probe_live",
          "description": "generator side of the record/replay determinism test",
          "experiment": "sim",
          "workload": "WORKLOAD1",
          "matrix": { "mem_mb": [6], "ref": ["MISS", "NOREF"] }
        }"#,
    )
    .unwrap();
    let replay = Scenario::parse_str(&format!(
        r#"{{
          "schema_version": 1,
          "name": "replay_probe_trace",
          "description": "trace side of the record/replay determinism test",
          "experiment": "sim",
          "workload": {{ "trace": {}, "regions": "WORKLOAD1" }},
          "matrix": {{ "mem_mb": [6], "ref": ["MISS", "NOREF"] }}
        }}"#,
        spur_harness::Json::from(path.to_str().unwrap()).encode()
    ))
    .unwrap();

    let live_docs = docs(&run(&live, scale));
    let replay_docs = docs(&run(&replay, scale));
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(live_docs.len(), 2);
    for ((ka, da), (kb, db)) in live_docs.iter().zip(replay_docs.iter()) {
        assert_eq!(ka, kb, "replay run produced a different key");
        assert_eq!(da, db, "record→replay artifact bytes differ for {ka}");
    }
}
