//! Bounded-queue admission under real contention: with workers parked
//! at zero, N parallel submitters racing a capacity-8 queue must get
//! exactly 8 accepts and N−8 sheds — no lost submissions, no duplicate
//! ids, and every 429 carrying `Retry-After`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use spur_obs::validate::{get_field, parse};
use spur_serve::client::post_json;
use spur_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Distinct seed per submitter: identical specs would *coalesce* onto
/// one leader instead of racing for queue slots, which is its own
/// tested behavior (see `coalesce.rs`) — this test wants 32 distinct
/// jobs contending for 8 slots.
fn spec(seed: u64) -> String {
    format!(
        r#"{{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
        "scale":{{"refs":20000,"seed":{seed},"reps":1}}}}"#
    )
}

#[test]
fn racing_submitters_get_exactly_capacity_accepts_and_the_rest_shed() {
    const SUBMITTERS: usize = 32;
    const CAPACITY: usize = 8;

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        // Zero workers: nothing drains the queue, so admission is a
        // pure race for the 8 slots.
        workers: 0,
        queue_bound: CAPACITY,
        accept_threads: 8,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let barrier = Arc::new(Barrier::new(SUBMITTERS));
    let other_status = Arc::new(AtomicU64::new(0));
    let mut accepted_ids = Vec::new();
    let mut shed = 0u64;

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|i| {
                let addr = addr.clone();
                let barrier = Arc::clone(&barrier);
                let other_status = Arc::clone(&other_status);
                scope.spawn(move || {
                    let body = spec(1989 + i as u64);
                    barrier.wait();
                    let resp = post_json(&addr, "/v1/jobs", &body, TIMEOUT).unwrap();
                    match resp.status {
                        202 => {
                            let doc = parse(&resp.text()).unwrap();
                            let id = match get_field(&doc, "id") {
                                Some(spur_harness::Json::UInt(id)) => *id,
                                other => panic!("202 without id: {other:?}"),
                            };
                            Some(id)
                        }
                        429 => {
                            let retry: u64 = resp
                                .header("retry-after")
                                .expect("429 must tell the client when to retry")
                                .parse()
                                .expect("retry-after must be integral seconds");
                            assert!(
                                (1..=60).contains(&retry),
                                "retry-after {retry} outside its pinned bounds"
                            );
                            None
                        }
                        other => {
                            other_status.store(u64::from(other), Ordering::Relaxed);
                            None
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            match handle.join().unwrap() {
                Some(id) => accepted_ids.push(id),
                None => shed += 1,
            }
        }
    });

    assert_eq!(
        other_status.load(Ordering::Relaxed),
        0,
        "every response must be 202 or 429"
    );
    assert_eq!(
        accepted_ids.len(),
        CAPACITY,
        "exactly the queue bound admitted"
    );
    assert_eq!(shed as usize, SUBMITTERS - CAPACITY);

    accepted_ids.sort_unstable();
    accepted_ids.dedup();
    assert_eq!(accepted_ids.len(), CAPACITY, "no duplicate job ids");

    let summary = server.shutdown();
    assert_eq!(summary.unstarted, CAPACITY as u64, "{summary:?}");
    assert_eq!(summary.rejected, (SUBMITTERS - CAPACITY) as u64);
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 0);
}
