//! Per-client fairness over real sockets: a greedy client hammering
//! the service hits its own quota with 429s and its own Retry-After,
//! while a polite client riding alongside is admitted and completes
//! unaffected.

use std::time::{Duration, Instant};

use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, http_request_headers};
use spur_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Heavy pin for the single worker (distinct experiment family).
const BLOCKER: &str = r#"{"experiment":"events","workload":"SLC","mem_mb":5,
    "scale":{"refs":400000,"seed":7,"reps":2},"obs":false}"#;

fn spec(seed: u64) -> String {
    format!(
        r#"{{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
        "scale":{{"refs":20000,"seed":{seed},"reps":1}},"obs":false}}"#
    )
}

/// Submits as `client` and returns the raw response.
fn submit_as(addr: &str, client: &str, body: &str) -> spur_serve::HttpResponse {
    http_request_headers(
        addr,
        "POST",
        "/v1/jobs",
        Some(body.as_bytes()),
        &[("x-client-id", client)],
        TIMEOUT,
    )
    .unwrap()
}

fn job_id(resp: &spur_serve::HttpResponse) -> u64 {
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    let doc = parse(&resp.text()).unwrap();
    match get_field(&doc, "id") {
        Some(spur_harness::Json::UInt(id)) => *id,
        other => panic!("202 body without id: {other:?}"),
    }
}

fn await_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        let doc = parse(&resp.text()).unwrap();
        match get_field(&doc, "status") {
            Some(spur_harness::Json::Str(s)) if s == "done" => return,
            Some(spur_harness::Json::Str(s)) if s == "failed" => panic!("job {id} failed"),
            _ if Instant::now() > deadline => panic!("job {id} never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn metric(addr: &str, name: &str) -> u64 {
    let text = get(addr, "/metrics", TIMEOUT).unwrap().text();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn greedy_client_hits_its_quota_while_the_polite_client_is_unaffected() {
    const QUOTA: usize = 4;
    const GREEDY_ATTEMPTS: u64 = 10;

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        // Plenty of global room: every shed below is the *quota*
        // refusing the offender, never the queue being full.
        queue_bound: 64,
        client_quota: QUOTA,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Pin the worker so admissions pile up deterministically.
    let blocker_id = job_id(&submit_as(&addr, "setup", BLOCKER));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = get(&addr, &format!("/v1/jobs/{blocker_id}"), TIMEOUT).unwrap();
        let doc = parse(&resp.text()).unwrap();
        if matches!(get_field(&doc, "status"), Some(spur_harness::Json::Str(s)) if s == "running") {
            break;
        }
        assert!(Instant::now() < deadline, "blocker never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The greedy client burns through its quota; every attempt past
    // QUOTA is shed with a quota-specific 429 naming the client.
    let mut greedy_accepted = Vec::new();
    let mut greedy_shed = 0u64;
    for i in 0..GREEDY_ATTEMPTS {
        let resp = submit_as(&addr, "greedy", &spec(100 + i));
        match resp.status {
            202 => greedy_accepted.push(job_id(&resp)),
            429 => {
                greedy_shed += 1;
                let text = resp.text();
                assert!(text.contains("client over quota"), "{text}");
                assert!(text.contains("greedy"), "429 names the offender: {text}");
                let retry: u64 = resp
                    .header("retry-after")
                    .expect("quota 429 must carry retry-after")
                    .parse()
                    .expect("retry-after must be integral seconds");
                assert!(
                    (1..=60).contains(&retry),
                    "retry-after {retry} out of bounds"
                );
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert_eq!(greedy_accepted.len(), QUOTA, "exactly the quota admitted");
    assert_eq!(greedy_shed, GREEDY_ATTEMPTS - QUOTA as u64);

    // The polite client is entirely unaffected by greedy's saturation:
    // both of its submissions are admitted with no shed.
    let polite_ids: Vec<u64> = (0..2)
        .map(|i| job_id(&submit_as(&addr, "polite", &spec(200 + i))))
        .collect();

    // Everything admitted completes once the blocker releases the
    // worker — the greedy backlog cannot starve the polite jobs.
    for &id in polite_ids.iter().chain(&greedy_accepted) {
        await_done(&addr, id);
    }

    assert_eq!(
        metric(&addr, "spur_serve_quota_rejected_total"),
        greedy_shed,
        "every shed was a quota shed"
    );
    assert_eq!(
        metric(&addr, "spur_serve_jobs_rejected_total"),
        greedy_shed,
        "no queue-full sheds mixed in"
    );

    let summary = server.shutdown();
    assert_eq!(summary.failed, 0, "{summary:?}");
    // Blocker + greedy's quota + polite's two all simulated.
    assert_eq!(summary.completed, 1 + QUOTA as u64 + 2, "{summary:?}");
}
