//! Chaos tests: seeded deterministic fault injection against a live
//! server. Injected worker panics must be retried into byte-identical
//! artifacts (or cleanly failed when there is no retry budget), and
//! client-side pathology — truncated requests, silent clients, dropped
//! responses — must never wedge or corrupt the service.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{ChaosConfig, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

const SPEC: &str = r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
    "scale":{"refs":20000,"seed":1989,"reps":1},"obs":{"epoch":10000}}"#;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 8,
        accept_threads: 2,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    }
}

fn submit(addr: &str, body: &str) -> u64 {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    let doc = parse(&resp.text()).unwrap();
    match get_field(&doc, "id") {
        Some(spur_harness::Json::UInt(id)) => *id,
        other => panic!("202 body without id: {other:?}"),
    }
}

fn await_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        let status = match get_field(&doc, "status") {
            Some(spur_harness::Json::Str(s)) => s.clone(),
            other => panic!("status body without status: {other:?}"),
        };
        match status.as_str() {
            "done" | "failed" => return status,
            _ if Instant::now() > deadline => panic!("job {id} stuck in {status}"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[test]
fn injected_panic_is_retried_into_a_byte_identical_artifact() {
    // Chaos server: every job's worker panics once, one retry allowed.
    let chaotic = Server::start(ServeConfig {
        panic_retries: 1,
        chaos: Some(ChaosConfig {
            seed: 11,
            worker_panic_ppm: 1_000_000,
            drop_response_ppm: 0,
        }),
        ..test_config()
    })
    .unwrap();
    let chaotic_addr = chaotic.addr().to_string();
    let id = submit(&chaotic_addr, SPEC);
    assert_eq!(await_done(&chaotic_addr, id), "done");
    let disturbed = get(&chaotic_addr, &format!("/v1/jobs/{id}/result"), TIMEOUT).unwrap();
    assert_eq!(disturbed.status, 200);

    // The retry actually happened (not a no-op chaos config).
    let metrics = get(&chaotic_addr, "/metrics", TIMEOUT).unwrap();
    let text = String::from_utf8(metrics.body.clone()).unwrap();
    assert!(
        text.contains("spur_serve_jobs_retried_total 1\n"),
        "expected exactly one retry:\n{text}"
    );
    assert!(
        text.contains("spur_serve_jobs_completed_total 1\n"),
        "{text}"
    );
    assert!(text.contains("spur_serve_jobs_failed_total 0\n"), "{text}");
    chaotic.shutdown();

    // Undisturbed server, same spec: the artifacts must match
    // byte-for-byte — jobs are pure functions of their request bytes.
    let calm = Server::start(test_config()).unwrap();
    let calm_addr = calm.addr().to_string();
    let id = submit(&calm_addr, SPEC);
    assert_eq!(await_done(&calm_addr, id), "done");
    let undisturbed = get(&calm_addr, &format!("/v1/jobs/{id}/result"), TIMEOUT).unwrap();
    calm.shutdown();
    assert_eq!(
        disturbed.body, undisturbed.body,
        "a retried job's artifact must be byte-identical to an undisturbed run"
    );
}

#[test]
fn injected_panic_without_retry_budget_fails_cleanly() {
    let server = Server::start(ServeConfig {
        panic_retries: 0,
        chaos: Some(ChaosConfig {
            seed: 7,
            worker_panic_ppm: 1_000_000,
            drop_response_ppm: 0,
        }),
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let id = submit(&addr, SPEC);
    assert_eq!(await_done(&addr, id), "failed");
    let status = get(&addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
    let text = status.text();
    assert!(
        text.contains("injected fault"),
        "failure must carry the injected panic message: {text}"
    );
    // The artifact endpoint serves the failure document, and the server
    // is still healthy — the panic was contained to the one job.
    let result = get(&addr, &format!("/v1/jobs/{id}/result"), TIMEOUT).unwrap();
    assert_eq!(result.status, 200);
    assert!(result.text().contains("\"failed\""), "{}", result.text());
    let health = get(&addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);

    let summary = server.shutdown();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.completed, 0);
}

#[test]
fn truncated_and_silent_clients_do_not_wedge_the_server() {
    let server = Server::start(ServeConfig {
        read_timeout: Duration::from_millis(200),
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // A request cut off mid-headers.
    let mut truncated = TcpStream::connect(&addr).unwrap();
    truncated
        .write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-le")
        .unwrap();
    drop(truncated);

    // A client that connects and never says anything (holds an
    // acceptor until the read timeout fires).
    let silent = TcpStream::connect(&addr).unwrap();

    // A request whose declared body never arrives.
    let mut short_body = TcpStream::connect(&addr).unwrap();
    short_body
        .write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 999\r\n\r\n{\"exp")
        .unwrap();

    // The server must shrug all three off and keep serving.
    let id = submit(&addr, SPEC);
    assert_eq!(await_done(&addr, id), "done");
    drop(silent);
    drop(short_body);

    let summary = server.shutdown();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.failed, 0);
}

#[test]
fn dropped_responses_do_not_lose_committed_work() {
    // Every response is dropped before writing: clients see broken
    // connections, but queued work still runs to completion.
    let server = Server::start(ServeConfig {
        chaos: Some(ChaosConfig {
            seed: 3,
            worker_panic_ppm: 0,
            drop_response_ppm: 1_000_000,
        }),
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let resp = post_json(&addr, "/v1/jobs", SPEC, TIMEOUT);
    assert!(resp.is_err(), "the response must have been dropped");

    // The submission was committed before the drop; the drain (which
    // finishes the backlog before exiting) proves it ran.
    let summary = server.shutdown();
    assert_eq!(summary.completed, 1, "{summary:?}");
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.unstarted, 0);
}
