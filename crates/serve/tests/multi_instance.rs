//! Two in-process instances sharing a results dir and a static peer
//! list: every job identity has exactly one owning instance, requests
//! landing on the wrong instance are proxied to the owner, ids are
//! namespaced per instance, and the cache stays key-partitioned (only
//! the owner ever caches an identity).

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{parse_job_spec, HashRing, ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// Mirrors the server's per-instance job-id namespace stride.
const ID_STRIDE: u64 = 1_000_000_000;

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spur-serve-multi-{tag}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves an ephemeral port by binding and immediately releasing it.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn spec(seed: u64) -> String {
    format!(
        r#"{{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
        "scale":{{"refs":20000,"seed":{seed},"reps":1}},"obs":false}}"#
    )
}

/// The seed whose job identity the given peer owns, per the same ring
/// both instances build.
fn seed_owned_by(ring: &HashRing, peer: &str) -> u64 {
    (1..500)
        .find(|&seed| {
            let s = parse_job_spec(spec(seed).as_bytes()).unwrap();
            ring.owner(&s.identity()) == peer
        })
        .expect("some seed must hash to this peer")
}

fn submit(addr: &str, body: &str) -> spur_harness::Json {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    parse(&resp.text()).unwrap()
}

fn uint(doc: &spur_harness::Json, field: &str) -> u64 {
    match get_field(doc, field) {
        Some(spur_harness::Json::UInt(v)) => *v,
        other => panic!("field {field} not a uint: {other:?}"),
    }
}

fn await_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        match get_field(&doc, "status") {
            Some(spur_harness::Json::Str(s)) if s == "done" => return,
            Some(spur_harness::Json::Str(s)) if s == "failed" => panic!("job {id} failed"),
            _ if Instant::now() > deadline => panic!("job {id} never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn metric(addr: &str, name: &str) -> u64 {
    let text = get(addr, "/metrics", TIMEOUT).unwrap().text();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn wrong_instance_requests_are_proxied_to_the_owner() {
    let results = temp_dir("shared");
    let peer_a = format!("127.0.0.1:{}", free_port());
    let peer_b = format!("127.0.0.1:{}", free_port());
    let peers = vec![peer_a.clone(), peer_b.clone()];
    let config = |addr: &str| ServeConfig {
        addr: addr.to_string(),
        workers: 1,
        cache_entries: 8,
        peers: peers.clone(),
        self_peer: Some(addr.to_string()),
        results_dir: Some(results.clone()),
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    };
    let server_a = Server::start(config(&peer_a)).unwrap();
    let server_b = Server::start(config(&peer_b)).unwrap();

    // The servers sort the peer list; mirror that to predict each
    // instance's id namespace index.
    let mut sorted = peers.clone();
    sorted.sort();
    let index_of = |peer: &str| sorted.iter().position(|p| p == peer).unwrap() as u64;
    let ring = HashRing::new(&sorted);
    let seed_a = seed_owned_by(&ring, &peer_a);
    let seed_b = seed_owned_by(&ring, &peer_b);

    // A-owned work submitted to A stays local, in A's id namespace.
    let local = submit(&peer_a, &spec(seed_a));
    let local_id = uint(&local, "id");
    assert_eq!(local_id / ID_STRIDE, index_of(&peer_a));

    // B-owned work submitted to A is proxied: the 202 comes back from
    // B (its id sits in B's namespace) and A counts the forward.
    let proxied = submit(&peer_a, &spec(seed_b));
    let proxied_id = uint(&proxied, "id");
    assert_eq!(
        proxied_id / ID_STRIDE,
        index_of(&peer_b),
        "proxied submission must be numbered by the owner"
    );
    assert_eq!(metric(&peer_a, "spur_serve_jobs_proxied_total"), 1);

    // Polling the foreign id on the wrong instance is proxied too —
    // the client never has to care where a job lives.
    await_done(&peer_a, proxied_id);
    await_done(&peer_a, local_id);
    let via_a = get(&peer_a, &format!("/v1/jobs/{proxied_id}/result"), TIMEOUT).unwrap();
    assert_eq!(via_a.status, 200, "{}", via_a.text());
    let via_b = get(&peer_b, &format!("/v1/jobs/{proxied_id}/result"), TIMEOUT).unwrap();
    assert_eq!(via_b.status, 200, "{}", via_b.text());
    assert_eq!(
        via_a.body, via_b.body,
        "proxied result must be byte-identical to the owner's"
    );
    assert!(!via_a.body.is_empty());

    // The id that does not exist on either instance 404s, not 502s.
    let missing = get(&peer_a, &format!("/v1/jobs/{}", ID_STRIDE * 2 + 7), TIMEOUT).unwrap();
    assert_eq!(missing.status, 404, "{}", missing.text());

    // Cache partitioning: resubmitting the B-owned spec to A is
    // answered from *B's* cache (the hit travels through the proxy);
    // A never caches a foreign identity. Every status poll above was
    // itself a proxied GET, so count the forward as a delta.
    let proxied_before = metric(&peer_a, "spur_serve_jobs_proxied_total");
    let resubmit = submit(&peer_a, &spec(seed_b));
    assert_eq!(
        get_field(&resubmit, "cached"),
        Some(&spur_harness::Json::Bool(true)),
        "owner must answer the resubmission from its cache: {resubmit:?}"
    );
    assert_eq!(metric(&peer_b, "spur_serve_cache_hits_total"), 1);
    assert_eq!(metric(&peer_a, "spur_serve_cache_hits_total"), 0);
    assert_eq!(
        metric(&peer_a, "spur_serve_jobs_proxied_total"),
        proxied_before + 1
    );

    // Both instances persisted into the shared results dir under
    // their own namespaced job ids — no collisions.
    let persisted: Vec<String> = std::fs::read_dir(&results)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        persisted.iter().any(|n| n.contains(&format!("{local_id}"))),
        "A's artifact dir missing from {persisted:?}"
    );
    assert!(
        persisted
            .iter()
            .any(|n| n.contains(&format!("{proxied_id}"))),
        "B's artifact dir missing from {persisted:?}"
    );

    let summary_a = server_a.shutdown();
    let summary_b = server_b.shutdown();
    assert_eq!(summary_a.failed + summary_b.failed, 0);
    let _ = std::fs::remove_dir_all(&results);
}
