//! Golden-file test for the `/metrics` Prometheus exposition.
//!
//! The rendered text is an external contract: scrape configs, alert
//! rules, and dashboards key on these exact series names, label
//! spellings, and HELP/TYPE lines. Any drift must show up as a failing
//! diff against `tests/golden/metrics.prom`, reviewed like an API
//! change. To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p spur-serve --test metrics_golden
//! ```

use std::sync::atomic::Ordering;

use spur_serve::{PhaseSample, ServeMetrics};

fn sample(queue_wait_ms: u64, run_ms: u64, serialize_ms: u64, ok: bool) -> PhaseSample {
    PhaseSample {
        queue_wait_ms,
        run_ms,
        serialize_ms,
        e2e_ms: queue_wait_ms + run_ms + serialize_ms,
        ok,
    }
}

/// A fixed, fully deterministic metrics state covering every series:
/// counters at distinct values, span-derived phase samples across two
/// experiment families (including a zero and a large duration so
/// bucket edges are exercised), submit latencies, one retry, and a
/// non-empty queue.
fn canned_metrics() -> ServeMetrics {
    let m = ServeMetrics::new();
    m.http_requests.store(12, Ordering::Relaxed);
    m.http_client_errors.store(2, Ordering::Relaxed);
    m.jobs_submitted.store(5, Ordering::Relaxed);
    m.jobs_rejected.store(1, Ordering::Relaxed);
    m.jobs_retried.store(1, Ordering::Relaxed);
    m.jobs_coalesced.store(3, Ordering::Relaxed);
    m.cache_hits.store(4, Ordering::Relaxed);
    m.cache_misses.store(6, Ordering::Relaxed);
    m.cache_evictions.store(1, Ordering::Relaxed);
    m.quota_rejected.store(1, Ordering::Relaxed);
    m.jobs_proxied.store(2, Ordering::Relaxed);
    m.observe_submit(0);
    m.observe_submit(2);
    m.observe_phases("refbit", sample(0, 40, 1, true));
    m.observe_phases("refbit", sample(3, 55, 1, true));
    m.observe_phases("events", sample(7, 61, 2, true));
    m.observe_phases("refbit", sample(2, 9_000, 1, false));
    m
}

#[test]
fn metrics_exposition_matches_the_golden_file() {
    // Uptime is pinned: the golden file is byte-exact.
    let rendered = canned_metrics().render_prometheus(2, 64, 4, 128, false, 123);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("tests/golden/metrics.prom missing — run with UPDATE_GOLDEN=1 to create it");
    assert!(
        rendered == golden,
        "/metrics drifted from the golden exposition.\n\
         If intentional, regenerate with UPDATE_GOLDEN=1 and review the diff.\n\
         --- golden ---\n{golden}\n--- rendered ---\n{rendered}"
    );
}
