//! End-to-end tests for request tracing and SLO evidence over real
//! sockets: the span tree's reconciliation contract (phases sum to the
//! observed wall), sim-cycle attribution on the run span, the merged
//! Chrome-trace export, and the `/v1/slo` verdict in both the healthy
//! and the deliberately-impossible configurations.

use std::time::{Duration, Instant};

use spur_core::experiments::Scale;
use spur_core::jobs::{refbit_job_obs, trace_cycle_bounds};
use spur_core::obs::ObsParams;
use spur_harness::{run_one, Json};
use spur_obs::slo::SloTarget;
use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{ServeConfig, Server};
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

const TIMEOUT: Duration = Duration::from_secs(10);

/// The submission every tracing test uses: fully pinned scale so the
/// served run and a local harness run are the same pure function.
const BODY: &str = r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,
    "scale":{"refs":20000,"seed":1989,"reps":1}}"#;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 8,
        accept_threads: 2,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    }
}

fn submit(addr: &str, body: &str) -> u64 {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    field_u64(&parse(&resp.text()).unwrap(), "id").expect("202 body has id")
}

fn await_done(addr: &str, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        match get_field(&doc, "status") {
            Some(Json::Str(s)) if s == "done" || s == "failed" => return doc,
            _ if Instant::now() > deadline => panic!("job {id} never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn get_json(addr: &str, path: &str) -> (u16, Json) {
    let resp = get(addr, path, TIMEOUT).unwrap();
    let doc = parse(&resp.text())
        .unwrap_or_else(|e| panic!("{path} answered invalid JSON: {e:?}\n{}", resp.text()));
    (resp.status, doc)
}

fn field_u64(doc: &Json, key: &str) -> Option<u64> {
    match get_field(doc, key)? {
        Json::UInt(u) => Some(*u),
        Json::Int(i) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

/// Duration of a named phase from the trace document's `phases` map.
fn phase_us(trace: &Json, name: &str) -> u64 {
    let phases = get_field(trace, "phases").expect("trace has phases");
    field_u64(phases, name).unwrap_or_else(|| panic!("phase {name} missing: {phases:?}"))
}

/// First span with this name in the nested tree, depth-first.
fn find_span<'a>(span: &'a Json, name: &str) -> Option<&'a Json> {
    if matches!(get_field(span, "name"), Some(Json::Str(s)) if s == name) {
        return Some(span);
    }
    if let Some(Json::Arr(children)) = get_field(span, "children") {
        return children.iter().find_map(|c| find_span(c, name));
    }
    None
}

#[test]
fn trace_endpoint_returns_a_reconciling_span_tree() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, BODY);
    let status = await_done(&addr, id);
    assert_eq!(
        get_field(&status, "status"),
        Some(&Json::Str("done".into()))
    );

    let (code, trace) = get_json(&addr, &format!("/v1/jobs/{id}/trace"));
    assert_eq!(code, 200);
    assert_eq!(get_field(&trace, "complete"), Some(&Json::Bool(true)));
    assert_eq!(field_u64(&trace, "job_id"), Some(id));

    // Reconciliation: the contiguous causal phases sum to the observed
    // wall time within scheduling slack. `respond` overlaps
    // `queue_wait` by design, so it is excluded from the sum.
    let wall_us = field_u64(&trace, "wall_us").expect("complete trace has wall_us");
    let contiguous: u64 = [
        "accept",
        "parse",
        "route",
        "cache_lookup",
        "queue_wait",
        "run",
        "serialize",
    ]
    .iter()
    .map(|p| phase_us(&trace, p))
    .sum();
    let tolerance = 25_000.max(wall_us / 4);
    assert!(
        contiguous.abs_diff(wall_us) <= tolerance,
        "phases must sum to the wall: contiguous={contiguous}us wall={wall_us}us tol={tolerance}us\n{}",
        trace.encode_pretty()
    );

    // queue_wait starts exactly at the queue's own admission
    // timestamp, surfaced on the status endpoint.
    let admitted_us = field_u64(&status, "admitted_us").expect("status has admitted_us");
    let root = get_field(&trace, "root").expect("trace has root");
    let queue_span = find_span(root, "queue_wait").expect("queue_wait span");
    assert_eq!(
        field_u64(queue_span, "start_us"),
        Some(admitted_us),
        "queue_wait must start at admission"
    );

    // The run span names the slice of simulated time it paid for, and
    // that slice matches a local run of the identical cell.
    let run_span = find_span(root, "run").expect("run span");
    let attrs = get_field(run_span, "attrs").expect("run span attrs");
    let cycles = |key: &str| -> u64 {
        match get_field(attrs, key) {
            Some(Json::Str(s)) => s.parse().unwrap(),
            other => panic!("run span missing {key}: {other:?}"),
        }
    };
    let scale = Scale {
        refs: 20_000,
        seed: 1989,
        reps: 1,
        dev_refs_per_hour: 120_000,
    };
    let local = run_one(refbit_job_obs(
        "k".into(),
        spur_trace::workloads::slc,
        MemSize::MB5,
        RefPolicy::Miss,
        scale,
        Some(ObsParams::default()),
    ));
    let local_trace = local.outcome.as_ref().unwrap().trace.as_ref().unwrap();
    let (first, last) = trace_cycle_bounds(local_trace).expect("local run has events");
    assert_eq!(cycles("sim_cycles_first"), first);
    assert_eq!(cycles("sim_cycles_last"), last);

    server.shutdown();
}

#[test]
fn merged_chrome_trace_validates_and_carries_both_timelines() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, BODY);
    await_done(&addr, id);

    let resp = get(&addr, &format!("/v1/jobs/{id}/trace/chrome"), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    // The strict RFC 8259 validator is the acceptance gate.
    let doc = parse(&resp.text()).expect("merged Chrome trace is strictly valid JSON");

    let Some(Json::Arr(events)) = get_field(&doc, "traceEvents") else {
        panic!("merged trace has no traceEvents array");
    };
    let ph = |e: &Json| match get_field(e, "ph") {
        Some(Json::Str(s)) => s.clone(),
        _ => String::new(),
    };
    let names: Vec<String> = events
        .iter()
        .filter(|e| ph(e) == "X")
        .filter_map(|e| match get_field(e, "name") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect();
    for want in ["job", "accept", "queue_wait", "run", "serialize"] {
        assert!(names.iter().any(|n| n == want), "missing span {want:?}");
    }
    // Both timelines are present: process metadata for the server-time
    // and sim-time tracks, and rescaled sim events carrying their
    // original cycle stamps.
    let metas = events.iter().filter(|e| ph(e) == "M").count();
    assert!(metas >= 2, "expected process_name metadata for both pids");
    let sim_events = events
        .iter()
        .filter(|e| get_field(e, "args").is_some_and(|a| get_field(a, "cycle").is_some()))
        .count();
    assert!(sim_events > 0, "merged trace carries rescaled sim events");

    // The run span brackets every rescaled sim event.
    let run = events
        .iter()
        .find(|e| matches!(get_field(e, "name"), Some(Json::Str(s)) if s == "run"))
        .expect("run span in merged trace");
    let run_ts = field_u64(run, "ts").unwrap();
    let run_end = run_ts + field_u64(run, "dur").unwrap();
    for e in events
        .iter()
        .filter(|e| get_field(e, "args").is_some_and(|a| get_field(a, "cycle").is_some()))
    {
        let ts = field_u64(e, "ts").unwrap();
        let dur = field_u64(e, "dur").unwrap_or(0);
        assert!(
            ts >= run_ts && ts + dur <= run_end.max(ts + dur),
            "sim event outside run span: ts={ts} dur={dur} run=[{run_ts},{run_end}]"
        );
        assert!(ts <= run_end, "sim event starts after run ends");
    }

    server.shutdown();
}

#[test]
fn live_traces_serve_mid_flight_but_chrome_requires_completion() {
    // Zero workers: the job is admitted and then waits forever, which
    // is exactly the stuck state live tracing exists to diagnose.
    let server = Server::start(ServeConfig {
        workers: 0,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, BODY);

    let (code, trace) = get_json(&addr, &format!("/v1/jobs/{id}/trace"));
    assert_eq!(code, 200, "live traces are readable mid-flight");
    assert_eq!(get_field(&trace, "complete"), Some(&Json::Bool(false)));
    assert_eq!(get_field(&trace, "wall_us"), Some(&Json::Null));
    let root = get_field(&trace, "root").unwrap();
    assert!(
        find_span(root, "queue_wait").is_some(),
        "the stuck phase is visible"
    );
    assert_eq!(
        find_span(root, "queue_wait").and_then(|s| field_u64(s, "end_us")),
        None,
        "queue_wait is still open"
    );

    let chrome = get(&addr, &format!("/v1/jobs/{id}/trace/chrome"), TIMEOUT).unwrap();
    assert_eq!(chrome.status, 409, "incomplete traces cannot merge");

    let missing = get(&addr, "/v1/jobs/999999/trace", TIMEOUT).unwrap();
    assert_eq!(missing.status, 404);

    server.shutdown();
}

#[test]
fn healthy_slos_verify_and_undeclared_slos_404() {
    let no_slo = Server::start(test_config()).unwrap();
    let addr = no_slo.addr().to_string();
    assert_eq!(get(&addr, "/v1/slo", TIMEOUT).unwrap().status, 404);
    no_slo.shutdown();

    let server = Server::start(ServeConfig {
        slos: vec![
            SloTarget::parse("p99_submit_ms=10000").unwrap(),
            SloTarget::parse("p99_e2e_ms=60000").unwrap(),
            SloTarget::parse("max_error_ratio=0").unwrap(),
        ],
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, BODY);
    await_done(&addr, id);

    let (code, report) = get_json(&addr, "/v1/slo");
    assert_eq!(code, 200);
    assert_eq!(get_field(&report, "ok"), Some(&Json::Bool(true)));
    let Some(Json::Arr(targets)) = get_field(&report, "targets") else {
        panic!("report has no targets: {report:?}");
    };
    assert_eq!(targets.len(), 3);

    let metrics = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(metrics.contains("spur_serve_slo_ok 1\n"), "{metrics}");
    assert!(metrics.contains("spur_serve_build_info{version=\""));
    assert!(metrics.contains("spur_serve_uptime_seconds"));
    assert!(metrics.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"}"));
    assert!(metrics.contains("spur_serve_slo_target_violations_total{slo=\"p99_submit_ms\"} 0"));

    server.shutdown();
}

#[test]
fn impossible_slo_reports_a_failing_breakdown() {
    let server = Server::start(ServeConfig {
        slos: vec![
            SloTarget::parse("min_jobs_per_sec=1000000").unwrap(),
            SloTarget::parse("p99_submit_ms=10000").unwrap(),
        ],
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let id = submit(&addr, BODY);
    await_done(&addr, id);
    // Give the 250 ms ticker at least one evaluation with the evidence
    // in the window.
    std::thread::sleep(Duration::from_millis(600));

    let (code, report) = get_json(&addr, "/v1/slo");
    assert_eq!(code, 200);
    assert_eq!(get_field(&report, "ok"), Some(&Json::Bool(false)));
    assert!(
        field_u64(&report, "violations_total").unwrap() > 0,
        "the ticker recorded violations: {report:?}"
    );
    let Some(Json::Arr(targets)) = get_field(&report, "targets") else {
        panic!("report has no targets");
    };
    let by_name = |name: &str| {
        targets
            .iter()
            .find(|t| matches!(get_field(t, "name"), Some(Json::Str(s)) if s == name))
            .unwrap_or_else(|| panic!("target {name} missing"))
    };
    assert_eq!(
        get_field(by_name("min_jobs_per_sec"), "ok"),
        Some(&Json::Bool(false)),
        "a million jobs/sec is impossible here"
    );
    assert_eq!(
        get_field(by_name("p99_submit_ms"), "ok"),
        Some(&Json::Bool(true)),
        "the generous submit target still holds"
    );

    let metrics = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(metrics.contains("spur_serve_slo_ok 0\n"));

    server.shutdown();
}
