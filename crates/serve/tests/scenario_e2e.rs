//! End-to-end tests for scenario serving over real sockets: the whole
//! matrix queued atomically, per-cell artifacts byte-identical to the
//! CLI expansion, assertion verdicts on the scenario result, strict
//! 400s for bad configs, and all-or-nothing 429 backpressure.

use std::time::{Duration, Instant};

use spur_harness::{job_artifact_json, run_one, Json};
use spur_obs::validate::{get_field, parse};
use spur_scenario::cells::expand;
use spur_scenario::Scenario;
use spur_serve::client::{get, post_json};
use spur_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// A two-cell sim matrix with one passing cross-policy assertion —
/// small enough to finish in well under a second per cell.
const HAPPY: &str = r#"{
  "schema_version": 1,
  "name": "served_happy",
  "description": "scenario-serving e2e happy path",
  "experiment": "sim",
  "workload": "WORKLOAD1",
  "scale": {"refs": 20000, "seed": 1989, "reps": 1},
  "run": {"obs": false},
  "matrix": { "mem_mb": [5], "dirty": ["MIN", "FAULT"] },
  "assertions": [
    {
      "check": "relation",
      "name": "fault_ge_min",
      "metric": "data.dirty_faults",
      "op": ">=",
      "left": {"dirty": "FAULT"},
      "right": {"dirty": "MIN"}
    }
  ]
}"#;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 8,
        accept_threads: 2,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    }
}

fn str_field(doc: &Json, key: &str) -> String {
    match get_field(doc, key) {
        Some(Json::Str(s)) => s.clone(),
        other => panic!("missing string field {key}: {other:?}"),
    }
}

fn uint_field(doc: &Json, key: &str) -> u64 {
    match get_field(doc, key) {
        Some(Json::UInt(n)) => *n,
        other => panic!("missing uint field {key}: {other:?}"),
    }
}

fn arr_field<'a>(doc: &'a Json, key: &str) -> &'a [Json] {
    match get_field(doc, key) {
        Some(Json::Arr(items)) => items,
        other => panic!("missing array field {key}: {other:?}"),
    }
}

/// Submits a scenario, asserting 202, and returns the parsed body.
fn submit_scenario(addr: &str, body: &str) -> Json {
    let resp = post_json(addr, "/v1/scenarios", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "scenario submit failed: {}", resp.text());
    parse(&resp.text()).unwrap()
}

/// Polls `GET /v1/scenarios/{id}` until the scenario leaves
/// queued/running, returning the final document.
fn await_scenario(addr: &str, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/scenarios/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        match str_field(&doc, "status").as_str() {
            "done" => return doc,
            status if Instant::now() > deadline => panic!("scenario {id} stuck in {status}"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[test]
fn scenario_runs_to_verdicts_with_cli_identical_artifacts() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();

    let accepted = submit_scenario(&addr, HAPPY);
    let id = uint_field(&accepted, "id");
    assert_eq!(str_field(&accepted, "name"), "served_happy");
    let cells = arr_field(&accepted, "cells").to_vec();
    assert_eq!(cells.len(), 2);

    let result = await_scenario(&addr, id);
    assert_eq!(get_field(&result, "passed"), Some(&Json::Bool(true)));
    let verdicts = arr_field(&result, "assertions");
    assert_eq!(verdicts.len(), 1);
    assert_eq!(str_field(&verdicts[0], "name"), "fault_ge_min");
    assert_eq!(get_field(&verdicts[0], "passed"), Some(&Json::Bool(true)));
    for cell in arr_field(&result, "cells") {
        assert_eq!(str_field(cell, "status"), "done");
    }

    // Every served cell's artifact must be byte-identical to the same
    // cell expanded and run directly by the scenario engine.
    let scenario = Scenario::parse_str(HAPPY).unwrap();
    let scale = scenario.resolve_scale(None);
    let direct = expand(&scenario, scale, None).unwrap();
    for cell in &cells {
        let cell_id = uint_field(cell, "id");
        let key = str_field(cell, "key");
        let served = get(&addr, &format!("/v1/jobs/{cell_id}/result"), TIMEOUT).unwrap();
        assert_eq!(served.status, 200);
        let completed = direct
            .iter()
            .find(|(c, _)| c.key == key)
            .map(|_| {
                let (_, job) = expand(&scenario, scale, None)
                    .unwrap()
                    .into_iter()
                    .find(|(c, _)| c.key == key)
                    .unwrap();
                run_one(job.map(|_| ()))
            })
            .unwrap();
        assert_eq!(
            served.text(),
            job_artifact_json(&completed).encode_pretty(),
            "served cell {key} must match the CLI expansion byte-for-byte"
        );
    }

    server.shutdown();
}

#[test]
fn malformed_scenarios_get_path_qualified_400s() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();

    for (body, needle) in [
        ("{not json", "not valid JSON"),
        (
            r#"{"schema_version": 1, "name": "x", "description": "d",
                "experiment": "sim", "workload": "SLC",
                "matrix": {"mem_mb": [5], "bogus_axis": [1]}}"#,
            "bogus_axis",
        ),
        (
            r#"{"schema_version": 1, "name": "x", "description": "d",
                "experiment": "sim",
                "workload": {"trace": "t.spurtrace", "regions": "SLC"},
                "matrix": {"mem_mb": [5]}}"#,
            "workload.trace",
        ),
        (
            r#"{"schema_version": 1, "name": "x", "description": "d",
                "experiment": "sim", "workload": "SLC",
                "matrix": {"mem_mb": [5], "unknown_field_here": [1]},
                "surprise": true}"#,
            "surprise",
        ),
    ] {
        let resp = post_json(&addr, "/v1/scenarios", body, TIMEOUT).unwrap();
        assert_eq!(resp.status, 400, "{body:?} should be rejected");
        let text = resp.text();
        assert!(
            text.contains(needle),
            "400 for {body:?} should mention {needle:?}, got {text}"
        );
    }

    server.shutdown();
}

#[test]
fn scenario_admission_is_all_or_nothing_under_backpressure() {
    // No workers: everything queued stays queued, so admission
    // arithmetic is exact. Queue bound 3 fits one two-cell scenario
    // but not two of them.
    let server = Server::start(ServeConfig {
        workers: 0,
        queue_bound: 3,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let first = submit_scenario(&addr, HAPPY);
    let first_id = uint_field(&first, "id");

    let refused = post_json(&addr, "/v1/scenarios", HAPPY, TIMEOUT).unwrap();
    assert_eq!(refused.status, 429, "{}", refused.text());
    let doc = parse(&refused.text()).unwrap();
    assert_eq!(uint_field(&doc, "cells"), 2);
    let retry: u64 = refused
        .header("retry-after")
        .expect("429 must carry retry-after")
        .parse()
        .expect("retry-after must be integral seconds");
    assert!(
        (1..=60).contains(&retry),
        "retry-after {retry} out of bounds"
    );

    // Nothing of the refused scenario survives: no record, no queue
    // slots beyond the first scenario's two cells.
    let gone = get(&addr, &format!("/v1/scenarios/{}", first_id + 1), TIMEOUT).unwrap();
    assert_eq!(gone.status, 404);
    let health = get(&addr, "/healthz", TIMEOUT).unwrap();
    let health_doc = parse(&health.text()).unwrap();
    assert_eq!(uint_field(&health_doc, "queue_depth"), 2);

    // The admitted scenario is still fully queued and pollable.
    let status = get(&addr, &format!("/v1/scenarios/{first_id}"), TIMEOUT).unwrap();
    assert_eq!(status.status, 200);
    let status_doc = parse(&status.text()).unwrap();
    assert_eq!(str_field(&status_doc, "status"), "queued");

    server.shutdown();
}

#[test]
fn failed_assertions_surface_on_the_scenario_result() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();

    // The negative-control shape: blind flushes always destroy
    // bystander blocks, so asserting zero collateral must fail.
    let body = r#"{
      "schema_version": 1,
      "name": "served_negative",
      "description": "deliberately failing assertion over the serve path",
      "experiment": "flush",
      "matrix": { "occupancy_pct": [10] },
      "assertions": [
        {
          "check": "range",
          "name": "blind_flush_is_harmless",
          "metric": "data.collateral",
          "max": 0
        }
      ]
    }"#;
    let accepted = submit_scenario(&addr, body);
    let id = uint_field(&accepted, "id");

    let result = await_scenario(&addr, id);
    assert_eq!(get_field(&result, "passed"), Some(&Json::Bool(false)));
    let verdicts = arr_field(&result, "assertions");
    assert_eq!(verdicts.len(), 1);
    assert_eq!(str_field(&verdicts[0], "name"), "blind_flush_is_harmless");
    assert_eq!(get_field(&verdicts[0], "passed"), Some(&Json::Bool(false)));
    let failures = arr_field(&verdicts[0], "failures");
    assert!(
        !failures.is_empty(),
        "a failed verdict must carry failure detail"
    );
    // The cells themselves succeeded — only the expectation failed.
    for cell in arr_field(&result, "cells") {
        assert_eq!(str_field(cell, "status"), "done");
    }

    server.shutdown();
}
