//! End-to-end tests for the `spur-serve` daemon over real sockets:
//! the byte-identical-artifact contract, queue backpressure, malformed
//! input handling, and drain-then-exit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spur_core::experiments::Scale;
use spur_core::jobs::refbit_job_for;
use spur_core::obs::ObsParams;
use spur_core::system::SimOverrides;
use spur_harness::{run_jobs, write_run};
use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{ServeConfig, Server};
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spur-serve-e2e-{tag}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_bound: 8,
        accept_threads: 2,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    }
}

fn submit(addr: &str, body: &str) -> u64 {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    let doc = parse(&resp.text()).unwrap();
    match get_field(&doc, "id") {
        Some(spur_harness::Json::UInt(id)) => *id,
        other => panic!("202 body without id: {other:?}"),
    }
}

/// Polls until the job leaves the queued/running states.
fn await_done(addr: &str, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        let status = match get_field(&doc, "status") {
            Some(spur_harness::Json::Str(s)) => s.clone(),
            other => panic!("status body without status: {other:?}"),
        };
        match status.as_str() {
            "done" | "failed" => return status,
            _ if Instant::now() > deadline => panic!("job {id} stuck in {status}"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

#[test]
fn served_artifact_is_byte_identical_to_direct_harness_run() {
    let results = temp_dir("served");
    let server = Server::start(ServeConfig {
        results_dir: Some(results.clone()),
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let id = submit(
        &addr,
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
            "scale":{"refs":30000,"seed":1989,"reps":1},"obs":{"epoch":10000}}"#,
    );
    assert_eq!(await_done(&addr, id), "done");
    let served = get(&addr, &format!("/v1/jobs/{id}/result"), TIMEOUT).unwrap();
    assert_eq!(served.status, 200);
    let served_bytes = served.body.clone();

    // The same cell through the batch path: same builder, same key,
    // same scale — write_run's job file must match the served bytes.
    let direct_root = temp_dir("direct");
    let job = refbit_job_for(
        "table_4_1/SLC/5MB/MISS".to_string(),
        slc,
        MemSize::MB5,
        RefPolicy::Miss,
        Scale {
            refs: 30_000,
            seed: 1989,
            reps: 1,
            dev_refs_per_hour: 120_000,
        },
        Some(ObsParams {
            epoch: Some(10_000),
            ..ObsParams::default()
        }),
        SimOverrides::default(),
    );
    let report = run_jobs(vec![job], 1);
    let artifacts = write_run(&direct_root, "direct", &report, &[]).unwrap();
    let direct_bytes = std::fs::read(artifacts.dir.join("table_4_1-SLC-5MB-MISS.json")).unwrap();
    assert_eq!(
        served_bytes, direct_bytes,
        "served artifact must be byte-identical to the harness file"
    );

    // The server's own persistence wrote the identical document too.
    let persisted = std::fs::read(
        results
            .join(format!("job-{id:06}"))
            .join("table_4_1-SLC-5MB-MISS.json"),
    )
    .unwrap();
    assert_eq!(persisted, direct_bytes);

    // Metrics carry the contractual series before shutdown.
    let metrics = get(&addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    for needle in [
        "spur_serve_jobs_completed_total 1",
        "spur_serve_queue_depth 0",
        "spur_serve_job_run_ms{quantile=\"0.5\"}",
        "spur_serve_job_run_ms{quantile=\"0.9\"}",
        "spur_serve_job_run_ms{quantile=\"0.99\"}",
    ] {
        assert!(text.contains(needle), "metrics missing {needle:?}:\n{text}");
    }

    let summary = server.shutdown();
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.failed, 0);
    let _ = std::fs::remove_dir_all(&results);
    let _ = std::fs::remove_dir_all(&direct_root);
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // No workers: nothing drains the queue, so the bound is exact.
    let server = Server::start(ServeConfig {
        workers: 0,
        queue_bound: 2,
        ..test_config()
    })
    .unwrap();
    let addr = server.addr().to_string();
    // Distinct seeds: identical submissions would coalesce rather than
    // occupy queue slots.
    let body = |seed: u64| {
        format!(
            r#"{{"experiment":"events","workload":"SLC","mem_mb":5,
               "scale":{{"refs":5000,"seed":{seed},"reps":1}},"obs":false}}"#
        )
    };

    submit(&addr, &body(1));
    submit(&addr, &body(2));
    let third = post_json(&addr, "/v1/jobs", &body(3), TIMEOUT).unwrap();
    assert_eq!(third.status, 429, "{}", third.text());
    let retry: u64 = third
        .header("retry-after")
        .expect("429 must carry retry-after")
        .parse()
        .expect("retry-after must be integral seconds");
    assert!(
        (1..=60).contains(&retry),
        "retry-after {retry} out of bounds"
    );
    assert!(third.text().contains("queue full"));

    let health = get(&addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"queue_depth\":2"));
    let metrics = get(&addr, "/metrics", TIMEOUT).unwrap();
    assert!(metrics.text().contains("spur_serve_jobs_rejected_total 1"));

    let summary = server.shutdown();
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.unstarted, 2, "nobody ran the queued jobs");
}

#[test]
fn malformed_requests_get_4xx_never_a_panic() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();

    // Bad JSON bodies and bad specs → 400 with a message.
    for body in [
        "",
        "not json",
        "[]",
        r#"{"experiment":"refbit"}"#,
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":0}"#,
        r#"{"experiment":"warp","workload":"SLC","mem_mb":5}"#,
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"lru"}"#,
        r#"{"experiment":"refbit","workload_spec":"gibberish","mem_mb":5}"#,
    ] {
        let resp = post_json(&addr, "/v1/jobs", body, TIMEOUT).unwrap();
        assert_eq!(resp.status, 400, "body {body:?} got {}", resp.text());
        assert!(resp.text().contains("error"));
    }

    // Wrong method, wrong route, bad ids.
    let resp = post_json(&addr, "/healthz", "{}", TIMEOUT).unwrap();
    assert_eq!(resp.status, 405);
    let resp = get(&addr, "/v1/nothing", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    let resp = get(&addr, "/v1/jobs/999", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);
    let resp = get(&addr, "/v1/jobs/banana", TIMEOUT).unwrap();
    assert_eq!(resp.status, 404);

    // Raw socket garbage: the server answers 400 (or drops the
    // connection) and keeps serving.
    {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"\x01\x02 nonsense \r\n\r\n").unwrap();
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
    }

    // Still healthy after all of the abuse.
    let health = get(&addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"ok\""));

    let summary = server.shutdown();
    assert_eq!(summary.completed + summary.failed, 0);
}

#[test]
fn graceful_drain_runs_the_backlog_then_refuses() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.addr().to_string();
    // Distinct seeds so all three occupy the queue (identical bodies
    // would coalesce onto one run).
    let body = |seed: u64| {
        format!(
            r#"{{"experiment":"refbit","workload":"SLC","mem_mb":5,
               "scale":{{"refs":5000,"seed":{seed},"reps":1}},"obs":false}}"#
        )
    };
    let ids = [
        submit(&addr, &body(1)),
        submit(&addr, &body(2)),
        submit(&addr, &body(3)),
    ];

    let resp = post_json(&addr, "/v1/shutdown", "", TIMEOUT).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("draining"));

    // New submissions are refused while the backlog drains...
    let refused = post_json(&addr, "/v1/jobs", &body(4), TIMEOUT).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.text());

    // ...but the accepted jobs all run to completion before exit.
    let summary = server.wait();
    assert_eq!(summary.completed, 3, "drain must finish the backlog");
    assert_eq!(summary.unstarted, 0);
    let _ = ids;

    // The listener is gone: connecting now fails.
    let gone =
        std::net::TcpStream::connect_timeout(&addr.parse().unwrap(), Duration::from_millis(500));
    assert!(gone.is_err(), "server must stop listening after drain");
}
