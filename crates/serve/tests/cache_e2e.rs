//! The results cache over real sockets: a hit returns the exact bytes
//! the cold run produced (which are themselves the bytes a
//! `reproduce_all`-style harness run writes), eviction follows LRU
//! order under a tiny capacity, and the hit/miss/eviction counters
//! reconcile with the observed request pattern.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use spur_core::experiments::Scale;
use spur_core::jobs::refbit_job_for;
use spur_core::obs::ObsParams;
use spur_core::system::SimOverrides;
use spur_harness::{run_jobs, write_run};
use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{ServeConfig, Server};
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

const TIMEOUT: Duration = Duration::from_secs(10);

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spur-serve-cache-{tag}-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec(seed: u64) -> String {
    format!(
        r#"{{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
        "scale":{{"refs":30000,"seed":{seed},"reps":1}},"obs":{{"epoch":10000}}}}"#
    )
}

/// Submits and returns `(id, cached)` from the 202 body.
fn submit(addr: &str, body: &str) -> (u64, bool) {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    let doc = parse(&resp.text()).unwrap();
    let id = match get_field(&doc, "id") {
        Some(spur_harness::Json::UInt(id)) => *id,
        other => panic!("202 body without id: {other:?}"),
    };
    let cached = matches!(
        get_field(&doc, "cached"),
        Some(spur_harness::Json::Bool(true))
    );
    (id, cached)
}

fn await_done(addr: &str, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let doc = parse(&resp.text()).unwrap();
        match get_field(&doc, "status") {
            Some(spur_harness::Json::Str(s)) if s == "done" => return,
            Some(spur_harness::Json::Str(s)) if s == "failed" => panic!("job {id} failed"),
            _ if Instant::now() > deadline => panic!("job {id} never finished"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn result_bytes(addr: &str, id: u64) -> Vec<u8> {
    let resp = get(addr, &format!("/v1/jobs/{id}/result"), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    resp.body
}

fn metric(addr: &str, name: &str) -> u64 {
    let text = get(addr, "/metrics", TIMEOUT).unwrap().text();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn cache_hit_bytes_equal_the_cold_run_and_the_harness_artifact() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_entries: 8,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let (cold_id, cached) = submit(&addr, &spec(1989));
    assert!(!cached, "first submission can't hit the cache");
    await_done(&addr, cold_id);
    let cold_bytes = result_bytes(&addr, cold_id);

    // Identical resubmission: answered from the cache, already done,
    // no second simulation.
    let (hit_id, cached) = submit(&addr, &spec(1989));
    assert!(cached, "identical resubmission must hit the cache");
    assert_ne!(hit_id, cold_id, "a hit still gets its own job id");
    let hit_bytes = result_bytes(&addr, hit_id);
    assert_eq!(
        hit_bytes, cold_bytes,
        "cache hit must serve the cold run's exact bytes"
    );

    // ...and those bytes are the very artifact a direct harness run
    // (the reproduce_all path) writes for this cell.
    let direct_root = temp_dir("direct");
    let job = refbit_job_for(
        "table_4_1/SLC/5MB/MISS".to_string(),
        slc,
        MemSize::MB5,
        RefPolicy::Miss,
        Scale {
            refs: 30_000,
            seed: 1989,
            reps: 1,
            dev_refs_per_hour: 120_000,
        },
        Some(ObsParams {
            epoch: Some(10_000),
            ..ObsParams::default()
        }),
        SimOverrides::default(),
    );
    let report = run_jobs(vec![job], 1);
    let artifacts = write_run(&direct_root, "direct", &report, &[]).unwrap();
    let direct_bytes = std::fs::read(artifacts.dir.join("table_4_1-SLC-5MB-MISS.json")).unwrap();
    assert_eq!(
        hit_bytes, direct_bytes,
        "cache hit must be byte-identical to the harness artifact"
    );

    // Exactly one simulation happened for two answered submissions.
    let text = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(
        text.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"} 1\n"),
        "{text}"
    );
    assert_eq!(metric(&addr, "spur_serve_cache_hits_total"), 1);
    assert_eq!(metric(&addr, "spur_serve_cache_misses_total"), 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&direct_root);
}

#[test]
fn tiny_cache_evicts_in_lru_order_and_counters_reconcile() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        cache_entries: 2,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let run_cold = |seed: u64| {
        let (id, cached) = submit(&addr, &spec(seed));
        assert!(!cached, "seed {seed} expected to miss");
        await_done(&addr, id);
    };
    let expect_hit = |seed: u64| {
        let (id, cached) = submit(&addr, &spec(seed));
        assert!(cached, "seed {seed} expected to hit");
        await_done(&addr, id);
    };

    // Fill capacity-2: cache = {A, B}, recency [A, B].
    run_cold(1); // A
    run_cold(2); // B
                 // Touch A: recency [B, A].
    expect_hit(1);
    // Insert C at capacity: evicts B (the LRU), keeps A.
    run_cold(3); // C; cache = {A, C}
    expect_hit(1); // A survived the eviction
                   // B is gone — it re-runs cold, evicting A in turn.
    run_cold(2);

    // Reconciliation: 4 cold runs + 2 hits = 6 lookups; every cold
    // insert past capacity evicted exactly one entry (C's insert and
    // B's re-insert).
    assert_eq!(metric(&addr, "spur_serve_cache_hits_total"), 2);
    assert_eq!(metric(&addr, "spur_serve_cache_misses_total"), 4);
    assert_eq!(metric(&addr, "spur_serve_cache_evictions_total"), 2);
    assert_eq!(
        metric(&addr, "spur_serve_cache_hits_total")
            + metric(&addr, "spur_serve_cache_misses_total"),
        6,
        "every submission is exactly one hit or one miss"
    );
    // 4 simulations for 6 submissions.
    let text = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(
        text.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"} 4\n"),
        "{text}"
    );

    server.shutdown();
}
