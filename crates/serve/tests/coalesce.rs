//! Job coalescing over real sockets: identical in-flight submissions
//! collapse onto one underlying run whose artifact fans out to every
//! waiter byte-for-byte, while different specs never coalesce.

use std::time::{Duration, Instant};

use spur_obs::validate::{get_field, parse};
use spur_serve::client::{get, post_json};
use spur_serve::{ServeConfig, Server};

const TIMEOUT: Duration = Duration::from_secs(10);

/// A deliberately heavy cell that pins the single worker long enough
/// for the coalescing window to be deterministic, under a different
/// experiment family so its `run` histogram row never pollutes the
/// target's.
const BLOCKER: &str = r#"{"experiment":"events","workload":"SLC","mem_mb":5,
    "scale":{"refs":400000,"seed":7,"reps":2},"obs":false}"#;

/// The spec every racer submits — full identity equality.
const TARGET: &str = r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
    "scale":{"refs":30000,"seed":1989,"reps":1},"obs":{"epoch":10000}}"#;

fn submit_json(addr: &str, body: &str) -> spur_harness::Json {
    let resp = post_json(addr, "/v1/jobs", body, TIMEOUT).unwrap();
    assert_eq!(resp.status, 202, "submit failed: {}", resp.text());
    parse(&resp.text()).unwrap()
}

fn uint(doc: &spur_harness::Json, field: &str) -> u64 {
    match get_field(doc, field) {
        Some(spur_harness::Json::UInt(v)) => *v,
        other => panic!("field {field} not a uint: {other:?}"),
    }
}

fn status_of(addr: &str, id: u64) -> String {
    let resp = get(addr, &format!("/v1/jobs/{id}"), TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc = parse(&resp.text()).unwrap();
    match get_field(&doc, "status") {
        Some(spur_harness::Json::Str(s)) => s.clone(),
        other => panic!("status body without status: {other:?}"),
    }
}

fn await_status(addr: &str, id: u64, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = status_of(addr, id);
        if status == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in {status}, wanted {want}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn metric(addr: &str, name: &str) -> u64 {
    let text = get(addr, "/metrics", TIMEOUT).unwrap().text();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .unwrap_or_else(|| panic!("metric {name} missing:\n{text}"))
        .split(' ')
        .nth(1)
        .unwrap()
        .parse()
        .unwrap()
}

#[test]
fn identical_inflight_submissions_coalesce_onto_one_run() {
    const FOLLOWERS: usize = 6;
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        queue_bound: 32,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    // Pin the only worker, then wait until it has actually started so
    // the leader below is guaranteed to still be queued when the
    // followers arrive.
    let blocker_id = uint(&submit_json(&addr, BLOCKER), "id");
    await_status(&addr, blocker_id, "running");

    let leader = submit_json(&addr, TARGET);
    let leader_id = uint(&leader, "id");
    assert!(
        get_field(&leader, "coalesced").is_none(),
        "first submission must lead, not coalesce: {leader:?}"
    );

    let mut follower_ids = Vec::new();
    for _ in 0..FOLLOWERS {
        let doc = submit_json(&addr, TARGET);
        assert_eq!(
            get_field(&doc, "coalesced"),
            Some(&spur_harness::Json::Bool(true)),
            "identical in-flight submission must coalesce: {doc:?}"
        );
        assert_eq!(uint(&doc, "leader_id"), leader_id);
        follower_ids.push(uint(&doc, "id"));
    }
    follower_ids.sort_unstable();
    follower_ids.dedup();
    assert_eq!(
        follower_ids.len(),
        FOLLOWERS,
        "every follower has its own id"
    );

    // The leader's completion resolves every follower.
    await_status(&addr, leader_id, "done");
    for &id in &follower_ids {
        await_status(&addr, id, "done");
    }

    // Exactly one underlying run: the refbit run histogram saw one
    // sample even though 1 + FOLLOWERS submissions were answered.
    let text = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(
        text.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"} 1\n"),
        "coalesced family must run exactly once:\n{text}"
    );
    assert_eq!(
        metric(&addr, "spur_serve_jobs_coalesced_total"),
        FOLLOWERS as u64
    );

    // Every waiter got byte-identical artifact bytes.
    let leader_bytes = get(&addr, &format!("/v1/jobs/{leader_id}/result"), TIMEOUT)
        .unwrap()
        .body;
    assert!(!leader_bytes.is_empty());
    for &id in &follower_ids {
        let follower_bytes = get(&addr, &format!("/v1/jobs/{id}/result"), TIMEOUT)
            .unwrap()
            .body;
        assert_eq!(
            follower_bytes, leader_bytes,
            "follower {id} artifact must be byte-identical to the leader's"
        );
    }

    let summary = server.shutdown();
    // Blocker + leader simulated; followers completed logically.
    assert_eq!(summary.failed, 0, "{summary:?}");
}

#[test]
fn different_specs_never_coalesce() {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        shards: 1,
        queue_bound: 32,
        read_timeout: TIMEOUT,
        write_timeout: TIMEOUT,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();

    let blocker_id = uint(&submit_json(&addr, BLOCKER), "id");
    await_status(&addr, blocker_id, "running");

    // Same harness key, different seed — the identity (not the key)
    // is what coalesces, so these must both lead. A third with a
    // different mem_mb differs in key too.
    let specs = [
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
            "scale":{"refs":20000,"seed":1,"reps":1},"obs":false}"#,
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"MISS",
            "scale":{"refs":20000,"seed":2,"reps":1},"obs":false}"#,
        r#"{"experiment":"refbit","workload":"SLC","mem_mb":10,"policy":"MISS",
            "scale":{"refs":20000,"seed":1,"reps":1},"obs":false}"#,
    ];
    let mut ids = Vec::new();
    for spec in specs {
        let doc = submit_json(&addr, spec);
        assert!(
            get_field(&doc, "coalesced").is_none(),
            "distinct specs must not coalesce: {doc:?}"
        );
        ids.push(uint(&doc, "id"));
    }
    for id in ids {
        await_status(&addr, id, "done");
    }
    assert_eq!(metric(&addr, "spur_serve_jobs_coalesced_total"), 0);
    // Three distinct runs of the refbit family really happened.
    let text = get(&addr, "/metrics", TIMEOUT).unwrap().text();
    assert!(
        text.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"} 3\n"),
        "{text}"
    );

    server.shutdown();
}
