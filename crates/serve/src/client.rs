//! A blocking HTTP/1.1 client for the service's own dialect.
//!
//! One request per connection, `Connection: close`, `Content-Length`
//! bodies. This is what the load generator and the integration tests
//! drive the daemon with — deliberately the same minimal HTTP subset
//! the server speaks, and std-only like everything else here.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — error bodies are for humans).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_input(message: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message)
}

/// Issues one request and reads the full response.
///
/// `timeout` applies to connect, read, and write independently.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    http_request_headers(addr, method, path, body, &[], timeout)
}

/// Like [`http_request`], with extra request headers — how a caller
/// identifies itself (`x-client-id`) or a proxying instance marks a
/// forwarded hop (`x-spur-forwarded`).
pub fn http_request_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    extra_headers: &[(&str, &str)],
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let sockaddr: SocketAddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad_input(format!("address {addr:?} resolves to nothing")))?;
    let mut stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;

    let body = body.unwrap_or(&[]);
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::with_capacity(1024);
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience: POST with a JSON body.
pub fn post_json(
    addr: &str,
    path: &str,
    json: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    http_request(addr, "POST", path, Some(json.as_bytes()), timeout)
}

/// Convenience: GET.
pub fn get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    http_request(addr, "GET", path, None, timeout)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad_input("response without head terminator".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| bad_input("response head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_input(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    // Connection: close — the body is simply the rest of the stream,
    // cross-checked against content-length when present.
    let body = raw[head_end + 4..].to_vec();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        if let Ok(expected) = v.parse::<usize>() {
            if body.len() != expected {
                return Err(bad_input(format!(
                    "body length {} != content-length {expected}",
                    body.len()
                )));
            }
        }
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_wire_response() {
        let raw = b"HTTP/1.1 202 Accepted\r\nContent-Type: application/json\r\nContent-Length: 10\r\n\r\n{\"id\": 12}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 202);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.text(), "{\"id\": 12}");
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(parse_response(raw).is_err());
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_response(b"not http at all\r\n\r\n").is_err());
        assert!(parse_response(b"").is_err());
    }
}
