//! The daemon: accept pool, worker pool, routing, and drain-then-exit.
//!
//! Two thread families share one [`Shared`] state. *Acceptors* block in
//! `accept()` on a cloned listener, parse one request per connection,
//! and answer; *workers* block in [`BoundedQueue::pop`] and execute
//! jobs with [`run_one`] — the exact per-job body the batch harness
//! uses, so a served job's artifact is byte-identical to a sweep's.
//!
//! Shutdown is drain-then-exit: `POST /v1/shutdown` (or
//! [`Server::shutdown`]) stops the queue from accepting, workers finish
//! the backlog and exit, and only then do the acceptors stop — so
//! clients can keep polling results while the backlog drains.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spur_harness::fault::{arm, roll, FaultPlan};
use spur_harness::{job_artifact_json, run_one, write_run, FailureKind, Job, Json, RunReport};

use crate::api::parse_job_spec;
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::metrics::ServeMetrics;
use crate::queue::{BoundedQueue, PushError};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7979"`. Port 0 asks the OS for an
    /// ephemeral port (the bound address is [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. Zero is allowed (jobs queue but
    /// never run — useful for tests; a real deployment wants ≥ 1).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are shed with 429.
    pub queue_bound: usize,
    /// Threads blocked in `accept()` — the concurrent-connection cap.
    pub accept_threads: usize,
    /// Socket read timeout per connection.
    pub read_timeout: Duration,
    /// Socket write timeout per connection.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// When set, every finished job is also persisted under this root
    /// as a single-job run (`write_run`), so served artifacts can be
    /// validated on disk by the same tooling as CLI sweeps.
    pub results_dir: Option<PathBuf>,
    /// How many times a job whose worker *panicked* is re-queued and
    /// re-run before being recorded as failed. Jobs are rebuilt from
    /// the original request bytes, so a retried job's artifact is
    /// byte-identical to an undisturbed run. Zero (the default)
    /// preserves the original fail-fast behavior; `Err` results are
    /// never retried (they are deterministic).
    pub panic_retries: u32,
    /// Deterministic fault injection for chaos testing. `None` (the
    /// default) injects nothing.
    pub chaos: Option<ChaosConfig>,
}

/// Seeded fault-injection knobs, all decided deterministically from
/// `(seed, site)` — see [`spur_harness::fault`]. Rates are parts per
/// million.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Rate of injected worker panics (fired at most once per job, so
    /// a retry models a transient fault).
    pub worker_panic_ppm: u64,
    /// Rate of responses dropped before writing (the client sees a
    /// truncated connection; server state must stay consistent).
    pub drop_response_ppm: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_bound: 64,
            accept_threads: 8,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1024 * 1024,
            results_dir: None,
            panic_retries: 0,
            chaos: None,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    key: String,
    state: JobState,
    /// The pretty-encoded job artifact, present once the job ran —
    /// byte-for-byte the document `write_run` puts in the job's file.
    artifact: Option<String>,
    error: Option<String>,
    wall_ms: Option<u64>,
}

/// A queued submission holds the validated *request bytes*, not a
/// built job: the worker rebuilds the job at pop time (and again on
/// each retry). Jobs are pure functions of their spec, so a rebuild
/// after an injected panic reproduces the artifact byte-for-byte.
struct QueuedJob {
    id: u64,
    key: String,
    body: Vec<u8>,
    enqueued: Instant,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<QueuedJob>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next_id: AtomicU64,
    metrics: ServeMetrics,
    stop_accepting: AtomicBool,
    local_addr: SocketAddr,
    shutdown_flag: Mutex<bool>,
    shutdown_signal: Condvar,
    /// Worker-panic injection plan, present when chaos is configured.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Connection counter feeding the drop-response injection site.
    connections: AtomicU64,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn request_shutdown(&self) {
        self.queue.drain();
        *lock_unpoisoned(&self.shutdown_flag) = true;
        self.shutdown_signal.notify_all();
    }
}

/// What the drain left behind, returned by [`Server::wait`] /
/// [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs that ran to successful completion over the server's life.
    pub completed: u64,
    /// Jobs that ran and failed.
    pub failed: u64,
    /// Submissions shed with 429.
    pub rejected: u64,
    /// Jobs still queued at exit (only possible with zero workers).
    pub unstarted: u64,
}

/// A running `spur-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, then spawns the worker and acceptor pools.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let fault_plan = cfg
            .chaos
            .filter(|c| c.worker_panic_ppm > 0)
            .map(|c| Arc::new(FaultPlan::new(c.seed, c.worker_panic_ppm)));
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_bound),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
            stop_accepting: AtomicBool::new(false),
            local_addr,
            shutdown_flag: Mutex::new(false),
            shutdown_signal: Condvar::new(),
            fault_plan,
            connections: AtomicU64::new(0),
            cfg,
        });

        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptors = (0..shared.cfg.accept_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let listener = listener.try_clone()?;
                Ok(std::thread::spawn(move || accept_loop(&shared, listener)))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(Server {
            shared,
            workers,
            acceptors,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Blocks until a `POST /v1/shutdown` arrives, then drains and
    /// exits. The daemon binary's main loop.
    pub fn wait(self) -> DrainSummary {
        let mut requested = lock_unpoisoned(&self.shared.shutdown_flag);
        while !*requested {
            requested = self
                .shared
                .shutdown_signal
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(requested);
        self.join_all()
    }

    /// Initiates the drain programmatically and blocks until done.
    pub fn shutdown(self) -> DrainSummary {
        self.shared.request_shutdown();
        self.join_all()
    }

    fn join_all(self) -> DrainSummary {
        // Workers first: they exit once the draining queue is empty.
        // Acceptors stay up meanwhile so result polls keep working.
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        // Each blocked acceptor needs one wake-up connection; a
        // zero-byte connection parses as "empty" and is dropped.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect_timeout(&self.shared.local_addr, Duration::from_secs(1));
        }
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }

        let jobs = lock_unpoisoned(&self.shared.jobs);
        let unstarted = jobs
            .values()
            .filter(|r| matches!(r.state, JobState::Queued | JobState::Running))
            .count() as u64;
        DrainSummary {
            completed: self.shared.metrics.jobs_completed.load(Ordering::Relaxed),
            failed: self.shared.metrics.jobs_failed.load(Ordering::Relaxed),
            rejected: self.shared.metrics.jobs_rejected.load(Ordering::Relaxed),
            unstarted,
        }
    }
}

/// Rebuilds a queued submission's job from its stored request bytes.
/// The bytes were validated at submit time, so a parse failure here is
/// a bug — it degrades to a job that records the error.
fn rebuild_job(queued: &QueuedJob) -> Job<()> {
    match parse_job_spec(&queued.body) {
        Ok(spec) => spec.build(),
        Err(message) => Job::new(queued.key.clone(), move || {
            Err(format!("stored request no longer parses: {message}"))
        }),
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(queued) = shared.queue.pop() {
        let queue_ms = queued.enqueued.elapsed().as_millis() as u64;
        if let Some(record) = lock_unpoisoned(&shared.jobs).get_mut(&queued.id) {
            record.state = JobState::Running;
        }

        // Run, retrying panics (injected or real) up to the configured
        // budget. The injection site keys on the job id, so whether a
        // given job is hit does not depend on worker scheduling; the
        // plan's once-semantics make the retry succeed.
        let fault_key = format!("worker/{}", queued.id);
        let mut attempts = 0u32;
        let completed = loop {
            let mut job = rebuild_job(&queued);
            if let Some(plan) = &shared.fault_plan {
                job = arm(plan, job, &fault_key);
            }
            let completed = run_one(job);
            let panicked = completed
                .failure()
                .is_some_and(|f| f.kind == FailureKind::Panic);
            if panicked && attempts < shared.cfg.panic_retries {
                attempts += 1;
                shared.metrics.jobs_retried.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break completed;
        };
        let ok = completed.outcome.is_ok();
        let run_ms = completed.wall.as_millis() as u64;
        let error = completed
            .failure()
            .map(|f| format!("{}: {}", f.kind.as_str(), f.reason));
        let artifact = job_artifact_json(&completed).encode_pretty();
        persist(shared, queued.id, completed);

        if let Some(record) = lock_unpoisoned(&shared.jobs).get_mut(&queued.id) {
            record.state = if ok { JobState::Done } else { JobState::Failed };
            record.artifact = Some(artifact);
            record.error = error;
            record.wall_ms = Some(run_ms);
        }
        shared.metrics.observe_job(queue_ms, run_ms, ok);
    }
}

/// Persists one finished job as a single-job run under the configured
/// results root. A filesystem error degrades to a stderr line — the
/// in-memory record (and the client's result fetch) survive regardless.
fn persist(shared: &Shared, id: u64, completed: spur_harness::CompletedJob<()>) {
    let Some(root) = &shared.cfg.results_dir else {
        return;
    };
    let key = completed.key.clone();
    let wall = completed.wall;
    let report = RunReport::from_jobs(vec![completed], 1, wall);
    let meta = [("served_job_id", Json::UInt(id)), ("key", Json::Str(key))];
    if let Err(e) = write_run(root, &format!("job-{id:06}"), &report, &meta) {
        eprintln!("spur-serve: failed to persist job {id}: {e}");
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop_accepting.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                // Transient accept errors (EMFILE, ECONNABORTED):
                // breathe and retry rather than spin or die.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let response = match read_request(&mut stream, shared.cfg.max_body_bytes) {
        Ok(request) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            route(shared, &request)
        }
        // Socket-level failure (timeout, reset, empty probe): nobody
        // is listening for an answer.
        Err(ReadError::Io(_)) => return,
        Err(ReadError::Malformed(what)) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            error_response(400, what)
        }
        Err(ReadError::TooLarge(what)) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            let status = if what == "request body" { 413 } else { 431 };
            error_response(status, what)
        }
    };
    if (400..500).contains(&response.status) {
        shared
            .metrics
            .http_client_errors
            .fetch_add(1, Ordering::Relaxed);
    }
    // Chaos: drop the connection without answering. All server-side
    // effects of the request (queueing, records, metrics) are already
    // committed — exactly the window a crashed proxy would expose.
    if let Some(chaos) = &shared.cfg.chaos {
        let n = shared.connections.fetch_add(1, Ordering::Relaxed);
        if roll(
            chaos.seed ^ 0x5e1e_c7ed,
            &format!("resp/{n}"),
            chaos.drop_response_ppm,
        ) {
            return;
        }
    }
    let _ = write_response(&mut stream, &response);
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("GET", "/metrics") => Response::text(
            200,
            shared.metrics.render_prometheus(
                shared.queue.depth(),
                shared.queue.bound(),
                shared.queue.is_draining(),
            ),
        ),
        ("POST", "/v1/jobs") => submit(shared, request),
        ("POST", "/v1/shutdown") => {
            let queued = shared.queue.depth();
            shared.request_shutdown();
            Response::json(
                200,
                Json::object([
                    ("status", Json::Str("draining".into())),
                    ("queued", Json::UInt(queued as u64)),
                ])
                .encode(),
            )
        }
        (_, "/healthz" | "/metrics" | "/v1/jobs" | "/v1/shutdown") => {
            error_response(405, "method not allowed")
        }
        ("GET", path) => match parse_job_path(path) {
            Some((id, false)) => job_status(shared, id),
            Some((id, true)) => job_result(shared, id),
            None => error_response(404, "no such route"),
        },
        _ => error_response(404, "no such route"),
    }
}

/// `/v1/jobs/{id}` → `(id, false)`; `/v1/jobs/{id}/result` → `(id, true)`.
fn parse_job_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    let (id_part, result) = match rest.strip_suffix("/result") {
        Some(id_part) => (id_part, true),
        None => (rest, false),
    };
    id_part.parse::<u64>().ok().map(|id| (id, result))
}

fn healthz(shared: &Shared) -> Response {
    let draining = shared.queue.is_draining();
    Response::json(
        200,
        Json::object([
            (
                "status",
                Json::Str(if draining { "draining" } else { "ok" }.into()),
            ),
            ("queue_depth", Json::UInt(shared.queue.depth() as u64)),
            ("queue_bound", Json::UInt(shared.queue.bound() as u64)),
            ("workers", Json::UInt(shared.cfg.workers as u64)),
            (
                "jobs_submitted",
                Json::UInt(shared.metrics.jobs_submitted.load(Ordering::Relaxed)),
            ),
        ])
        .encode(),
    )
}

fn submit(shared: &Shared, request: &Request) -> Response {
    let spec = match parse_job_spec(&request.body) {
        Ok(spec) => spec,
        Err(message) => return error_response_owned(400, message),
    };
    let key = spec.key();
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    lock_unpoisoned(&shared.jobs).insert(
        id,
        JobRecord {
            key: key.clone(),
            state: JobState::Queued,
            artifact: None,
            error: None,
            wall_ms: None,
        },
    );
    match shared.queue.try_push(QueuedJob {
        id,
        key: key.clone(),
        body: request.body.clone(),
        enqueued: Instant::now(),
    }) {
        Ok(depth) => {
            shared
                .metrics
                .jobs_submitted
                .fetch_add(1, Ordering::Relaxed);
            Response::json(
                202,
                Json::object([
                    ("id", Json::UInt(id)),
                    ("key", Json::Str(key)),
                    ("status", Json::Str("queued".into())),
                    ("queue_depth", Json::UInt(depth as u64)),
                ])
                .encode(),
            )
        }
        Err(PushError::Full(_)) => {
            lock_unpoisoned(&shared.jobs).remove(&id);
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            Response::json(
                429,
                Json::object([
                    ("error", Json::Str("queue full".into())),
                    ("queue_bound", Json::UInt(shared.queue.bound() as u64)),
                ])
                .encode(),
            )
            .with_header("retry-after", "1".to_string())
        }
        Err(PushError::Draining(_)) => {
            lock_unpoisoned(&shared.jobs).remove(&id);
            error_response(503, "draining")
        }
    }
}

fn job_status(shared: &Shared, id: u64) -> Response {
    let jobs = lock_unpoisoned(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return error_response(404, "no such job");
    };
    let mut fields = vec![
        ("id".to_string(), Json::UInt(id)),
        ("key".to_string(), Json::Str(record.key.clone())),
        (
            "status".to_string(),
            Json::Str(record.state.as_str().into()),
        ),
    ];
    if let Some(wall_ms) = record.wall_ms {
        fields.push(("wall_ms".to_string(), Json::UInt(wall_ms)));
    }
    if let Some(error) = &record.error {
        fields.push(("error".to_string(), Json::Str(error.clone())));
    }
    Response::json(200, Json::Obj(fields).encode())
}

fn job_result(shared: &Shared, id: u64) -> Response {
    let jobs = lock_unpoisoned(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return error_response(404, "no such job");
    };
    match &record.artifact {
        // The artifact document covers failures too (status "failed",
        // kind, reason) — exactly what write_run would have persisted.
        Some(artifact) => Response::json(200, artifact.clone()),
        None => Response::json(
            409,
            Json::object([
                ("error", Json::Str("job not finished".into())),
                ("status", Json::Str(record.state.as_str().into())),
            ])
            .encode(),
        )
        .with_header("retry-after", "1".to_string()),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    error_response_owned(status, message.to_string())
}

fn error_response_owned(status: u16, message: String) -> Response {
    Response::json(
        status,
        Json::object([("error", Json::Str(message))]).encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_paths_parse_strictly() {
        assert_eq!(parse_job_path("/v1/jobs/7"), Some((7, false)));
        assert_eq!(parse_job_path("/v1/jobs/7/result"), Some((7, true)));
        assert_eq!(parse_job_path("/v1/jobs/"), None);
        assert_eq!(parse_job_path("/v1/jobs/abc"), None);
        assert_eq!(parse_job_path("/v1/jobs/7/logs"), None);
        assert_eq!(parse_job_path("/v2/jobs/7"), None);
    }
}
