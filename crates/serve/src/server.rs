//! The daemon: accept pool, sharded worker pool, routing, coalescing,
//! the results cache, and drain-then-exit.
//!
//! Two thread families share one [`Shared`] state. *Acceptors* block in
//! `accept()` on a cloned listener, parse one request per connection,
//! and answer; *workers* pin to a shard of the [`FairQueue`] and
//! execute jobs with [`run_one`] — the exact per-job body the batch
//! harness uses, so a served job's artifact is byte-identical to a
//! sweep's.
//!
//! A submission's path after parse is a fixed pipeline:
//! **route** (hash the full-spec identity to a worker shard — or, in
//! multi-instance mode, to the owning peer, proxying if that isn't
//! us), **cache lookup** (a previously computed artifact answers
//! immediately; determinism makes that answer byte-exact, not
//! approximate), **coalesce** (an identical in-flight submission joins
//! the running leader as a *follower* and receives the leader's bytes
//! when it lands), and finally the shard's per-client
//! deficit-round-robin lane. Every stage is a span phase (`route`,
//! `cache_lookup`, `coalesce_wait`), so `/v1/jobs/{id}/trace` still
//! reconciles with root wall time.
//!
//! Every accepted submission carries a [`SpanContext`] from the moment
//! its socket was read: the acceptor opens the trace and its `accept`
//! and `parse` phases, queue admission opens `queue_wait`, and the
//! worker that pops the job closes it, brackets `run` (closed with the
//! harness's own wall clock, so span trees and job records cannot
//! disagree) and `serialize`, then seals the trace. Phase latencies on
//! `/metrics` are read *off the sealed trace* — the span tree is the
//! single source of latency truth. Declared SLOs ([`SloTracker`]) are
//! fed from the same spans and evaluated by a ticker thread.
//!
//! Shutdown is drain-then-exit: `POST /v1/shutdown` (or
//! [`Server::shutdown`]) stops the queue from accepting, workers finish
//! the backlog and exit, and only then do the acceptors stop — so
//! clients can keep polling results while the backlog drains.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spur_core::jobs::trace_cycle_bounds;
use spur_harness::fault::{arm, roll, FaultPlan};
use spur_harness::{job_artifact_json, run_one, write_run, FailureKind, Job, Json, RunReport};
use spur_obs::merged_chrome_trace;
use spur_obs::prometheus::{render_counter, render_counter_labeled, render_gauge};
use spur_obs::slo::{SloTarget, SloTracker};
use spur_obs::span::{SpanContext, SpanSink};

use crate::api::{parse_job_spec, JobSpec};
use crate::cache::{CachedResult, ResultsCache};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::metrics::{PhaseSample, ServeMetrics};
use crate::queue::{retry_after_secs, Admission, FairPushError, FairQueue, Priority};
use crate::ring::HashRing;
use crate::scenario::{build_scenario_cell, evaluate_finished, parse_scenario_submission};
use spur_scenario::Verdict;

/// Simulator traces retained in memory for `GET /v1/jobs/{id}/trace/chrome`
/// merging. Instrumented sim traces are large (up to the job's
/// `trace_capacity` events), so only the most recent few are kept; the
/// *span* trees are small and keep their own, much larger ring.
const SIM_TRACE_RETAIN: usize = 32;

/// Job/scenario id stride between instances: instance *k* of a
/// multi-instance deployment numbers its jobs from `k * ID_STRIDE`, so
/// any instance can tell from a bare id which peer owns its records
/// (and proxy the poll there). A single instance runs out of ids after
/// a billion jobs — a non-problem for a simulator service.
const ID_STRIDE: u64 = 1_000_000_000;

/// DRR refill per client lane per rotation, in units of
/// `JobSpec::cost` (simulated refs). One quantum ≈ one quick-scale
/// job: clients trading small jobs interleave one-for-one, and a
/// full-scale job (2M refs) bills ~40 rotations of patience.
const DRR_QUANTUM: u64 = 50_000;

/// Flat DRR cost billed per scenario cell (cells don't carry a
/// parsed-out Scale here; a mid-size constant keeps a big matrix from
/// starving interactive clients without special-casing the lane math).
const SCENARIO_CELL_COST: u64 = 20_000;

/// Sliding window for the drain-rate estimate behind `Retry-After`.
const DRAIN_WINDOW_US: u64 = 30_000_000;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:7979"`. Port 0 asks the OS for an
    /// ephemeral port (the bound address is [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs. Zero is allowed (jobs queue but
    /// never run — useful for tests; a real deployment wants ≥ 1).
    pub workers: usize,
    /// Queue capacity; submissions beyond it are shed with 429.
    pub queue_bound: usize,
    /// Threads blocked in `accept()` — the concurrent-connection cap.
    pub accept_threads: usize,
    /// Socket read timeout per connection.
    pub read_timeout: Duration,
    /// Socket write timeout per connection.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// When set, every finished job is also persisted under this root
    /// as a single-job run (`write_run`), so served artifacts can be
    /// validated on disk by the same tooling as CLI sweeps.
    pub results_dir: Option<PathBuf>,
    /// How many times a job whose worker *panicked* is re-queued and
    /// re-run before being recorded as failed. Jobs are rebuilt from
    /// the original request bytes, so a retried job's artifact is
    /// byte-identical to an undisturbed run. Zero (the default)
    /// preserves the original fail-fast behavior; `Err` results are
    /// never retried (they are deterministic).
    pub panic_retries: u32,
    /// Deterministic fault injection for chaos testing. `None` (the
    /// default) injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Declared service-level objectives (`--slo name=value`). Empty
    /// means no SLO tracking: no ticker thread, no `/v1/slo` data.
    pub slos: Vec<SloTarget>,
    /// Sliding window SLOs are evaluated over.
    pub slo_window: Duration,
    /// Completed span traces retained for `GET /v1/jobs/{id}/trace`.
    pub trace_capacity: usize,
    /// Worker shards. Workers pin round-robin to shards; submissions
    /// route to a shard by hashing their full-spec identity, so
    /// identical jobs always land (and coalesce) on the same shard.
    pub shards: usize,
    /// Results-cache capacity in entries (LRU by full-spec identity).
    /// Zero disables caching.
    pub cache_entries: usize,
    /// Per-client queued-job quota (0 = unlimited). A client at its
    /// quota is shed with 429 + its own Retry-After while the queue
    /// keeps serving everyone else.
    pub client_quota: usize,
    /// Multi-instance membership: every instance's address, identical
    /// on every instance (order-insensitive). Empty = single instance.
    /// When set, `self_peer` must name this instance's own entry;
    /// submissions whose identity hashes to another peer are proxied
    /// there, keeping the cache key-partitioned.
    pub peers: Vec<String>,
    /// This instance's entry in `peers`.
    pub self_peer: Option<String>,
}

/// Seeded fault-injection knobs, all decided deterministically from
/// `(seed, site)` — see [`spur_harness::fault`]. Rates are parts per
/// million.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Rate of injected worker panics (fired at most once per job, so
    /// a retry models a transient fault).
    pub worker_panic_ppm: u64,
    /// Rate of responses dropped before writing (the client sees a
    /// truncated connection; server state must stay consistent).
    pub drop_response_ppm: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_bound: 64,
            accept_threads: 8,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1024 * 1024,
            results_dir: None,
            panic_retries: 0,
            chaos: None,
            slos: Vec::new(),
            slo_window: Duration::from_secs(60),
            trace_capacity: SpanSink::DEFAULT_CAPACITY,
            shards: 1,
            cache_entries: 128,
            client_quota: 0,
            peers: Vec::new(),
            self_peer: None,
        }
    }
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobRecord {
    key: String,
    state: JobState,
    /// The pretty-encoded job artifact, present once the job ran —
    /// byte-for-byte the document `write_run` puts in the job's file.
    artifact: Option<String>,
    error: Option<String>,
    wall_ms: Option<u64>,
    /// The request's span-trace id (`GET /v1/jobs/{id}/trace`).
    trace_id: u64,
    /// Experiment family, the label on span-derived phase histograms.
    experiment: &'static str,
    /// Queue-admission timestamp on the span clock — the queue's own
    /// record of when `queue_wait` began, which the span must match.
    admitted_us: u64,
}

/// Where a queued job came from — what the worker rebuilds it from.
enum JobSource {
    /// A single-cell `POST /v1/jobs` submission: its request bytes.
    Spec(Vec<u8>),
    /// One cell of a `POST /v1/scenarios` submission: the scenario
    /// bytes, shared across the whole matrix; the cell is selected by
    /// the queued job's key.
    ScenarioCell(Arc<Vec<u8>>),
}

/// A queued submission holds the validated *request bytes*, not a
/// built job: the worker rebuilds the job at pop time (and again on
/// each retry). Jobs are pure functions of their spec, so a rebuild
/// after an injected panic reproduces the artifact byte-for-byte.
struct QueuedJob {
    id: u64,
    key: String,
    source: JobSource,
    /// Root span of the request's trace.
    trace: SpanContext,
    /// The open `queue_wait` span, closed by the worker that pops it.
    queue_span: SpanContext,
    /// Experiment family for metric labels.
    experiment: &'static str,
    /// Full-spec identity for Spec jobs — the coalescing/cache unit.
    /// `None` for scenario cells (matrix context isn't
    /// identity-addressable, so they neither coalesce nor cache).
    identity: Option<String>,
}

/// A submission waiting on an identical in-flight leader run.
struct Follower {
    id: u64,
    /// Root span of the follower's own trace.
    root: SpanContext,
    /// Its open `coalesce_wait` span, closed at fan-out.
    coalesce_span: SpanContext,
}

/// One in-flight Spec run, keyed by full-spec identity.
struct Inflight {
    leader_id: u64,
    followers: Vec<Follower>,
}

/// The dedup core: the results cache and the in-flight map live under
/// ONE mutex, so "check cache → check inflight → enqueue as leader"
/// is atomic against "leader finished → populate cache → fan out".
/// Without that atomicity a submission could miss the cache, then miss
/// the inflight entry the finishing worker just removed, and re-run a
/// job whose result was computed a microsecond ago.
struct Dedup {
    cache: ResultsCache,
    inflight: HashMap<String, Inflight>,
}

/// One accepted scenario submission: the stored config bytes plus the
/// job ids its matrix expanded to, in expansion order.
struct ScenarioRecord {
    name: String,
    /// The validated scenario document — cells are rebuilt from it at
    /// pop time, and assertions re-read it at result time.
    body: Arc<Vec<u8>>,
    /// `(job id, cell key)` for every expanded cell.
    cells: Vec<(u64, String)>,
}

struct Shared {
    cfg: ServeConfig,
    queue: FairQueue<QueuedJob>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    scenarios: Mutex<HashMap<u64, ScenarioRecord>>,
    /// Cache + inflight coalescing state (see [`Dedup`]). Lock order:
    /// `dedup` before `jobs`; never taken while holding `jobs`.
    dedup: Mutex<Dedup>,
    /// Consistent-hash ring over `cfg.peers`, present in
    /// multi-instance mode.
    ring: Option<HashRing>,
    /// This instance's index into the (sorted) peer list — the id
    /// namespace selector.
    instance_index: usize,
    /// Worker-completion timestamps (span clock, µs) feeding the
    /// drain-rate estimate behind `Retry-After`. Only actual runs
    /// count: followers and cache hits consume no worker time.
    completions: Mutex<VecDeque<u64>>,
    next_id: AtomicU64,
    next_scenario_id: AtomicU64,
    metrics: ServeMetrics,
    stop_accepting: AtomicBool,
    local_addr: SocketAddr,
    shutdown_flag: Mutex<bool>,
    shutdown_signal: Condvar,
    /// Worker-panic injection plan, present when chaos is configured.
    fault_plan: Option<Arc<FaultPlan>>,
    /// Connection counter feeding the drop-response injection site.
    connections: AtomicU64,
    /// Request span collector — the latency source of truth.
    spans: SpanSink,
    /// Declared-SLO evaluator, present when any `--slo` was given.
    slo: Option<SloTracker>,
    /// Recent instrumented sim traces for merged Chrome export.
    sim_traces: Mutex<VecDeque<(u64, Json)>>,
    /// Stops the SLO ticker thread at drain.
    stop_ticker: AtomicBool,
    started: Instant,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn request_shutdown(&self) {
        self.queue.drain();
        *lock_unpoisoned(&self.shutdown_flag) = true;
        self.shutdown_signal.notify_all();
    }
}

/// What the drain left behind, returned by [`Server::wait`] /
/// [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs that ran to successful completion over the server's life.
    pub completed: u64,
    /// Jobs that ran and failed.
    pub failed: u64,
    /// Submissions shed with 429.
    pub rejected: u64,
    /// Jobs still queued at exit (only possible with zero workers).
    pub unstarted: u64,
}

/// A running `spur-serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    acceptors: Vec<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, then spawns the worker, acceptor, and (with SLOs
    /// declared) ticker threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        // Multi-instance membership must be self-consistent before we
        // bind anything: an instance that isn't in its own peer list
        // would proxy every request somewhere else forever.
        let (ring, instance_index) = if cfg.peers.is_empty() {
            (None, 0)
        } else {
            let Some(self_peer) = &cfg.self_peer else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "peers configured without self_peer",
                ));
            };
            // Sort so every instance numbers the same peer list the
            // same way regardless of flag order.
            let mut peers = cfg.peers.clone();
            peers.sort();
            peers.dedup();
            let Some(idx) = peers.iter().position(|p| p == self_peer) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("self_peer {self_peer:?} is not in the peer list {peers:?}"),
                ));
            };
            (Some(HashRing::new(&peers)), idx)
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let fault_plan = cfg
            .chaos
            .filter(|c| c.worker_panic_ppm > 0)
            .map(|c| Arc::new(FaultPlan::new(c.seed, c.worker_panic_ppm)));
        let slo = (!cfg.slos.is_empty())
            .then(|| SloTracker::new(cfg.slos.clone(), cfg.slo_window.as_micros() as u64));
        let spans = SpanSink::new(cfg.trace_capacity);
        let shared = Arc::new(Shared {
            // A shard with no pinned worker would strand its jobs, so
            // the effective shard count never exceeds the worker pool
            // (zero-worker test configs keep their shards: nothing
            // runs anyway).
            queue: FairQueue::new(
                if cfg.workers == 0 {
                    cfg.shards
                } else {
                    cfg.shards.min(cfg.workers)
                },
                cfg.queue_bound,
                cfg.client_quota,
                DRR_QUANTUM,
            ),
            jobs: Mutex::new(HashMap::new()),
            scenarios: Mutex::new(HashMap::new()),
            dedup: Mutex::new(Dedup {
                cache: ResultsCache::new(cfg.cache_entries),
                inflight: HashMap::new(),
            }),
            ring,
            instance_index,
            completions: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(instance_index as u64 * ID_STRIDE),
            next_scenario_id: AtomicU64::new(instance_index as u64 * ID_STRIDE),
            metrics: ServeMetrics::new(),
            stop_accepting: AtomicBool::new(false),
            local_addr,
            shutdown_flag: Mutex::new(false),
            shutdown_signal: Condvar::new(),
            fault_plan,
            connections: AtomicU64::new(0),
            spans,
            slo,
            sim_traces: Mutex::new(VecDeque::new()),
            stop_ticker: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        });

        let shard_count = shared.queue.shard_count();
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let shard = i % shard_count;
                std::thread::spawn(move || worker_loop(&shared, shard))
            })
            .collect();
        let acceptors = (0..shared.cfg.accept_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let listener = listener.try_clone()?;
                Ok(std::thread::spawn(move || accept_loop(&shared, listener)))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let ticker = shared.slo.is_some().then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || slo_ticker_loop(&shared))
        });

        Ok(Server {
            shared,
            workers,
            acceptors,
            ticker,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Blocks until a `POST /v1/shutdown` arrives, then drains and
    /// exits. The daemon binary's main loop.
    pub fn wait(self) -> DrainSummary {
        let mut requested = lock_unpoisoned(&self.shared.shutdown_flag);
        while !*requested {
            requested = self
                .shared
                .shutdown_signal
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(requested);
        self.join_all()
    }

    /// Initiates the drain programmatically and blocks until done.
    pub fn shutdown(self) -> DrainSummary {
        self.shared.request_shutdown();
        self.join_all()
    }

    fn join_all(self) -> DrainSummary {
        // Workers first: they exit once the draining queue is empty.
        // Acceptors stay up meanwhile so result polls keep working.
        for worker in self.workers {
            let _ = worker.join();
        }
        self.shared.stop_accepting.store(true, Ordering::SeqCst);
        // Each blocked acceptor needs one wake-up connection; a
        // zero-byte connection parses as "empty" and is dropped.
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect_timeout(&self.shared.local_addr, Duration::from_secs(1));
        }
        for acceptor in self.acceptors {
            let _ = acceptor.join();
        }
        self.shared.stop_ticker.store(true, Ordering::SeqCst);
        if let Some(ticker) = self.ticker {
            let _ = ticker.join();
        }

        let jobs = lock_unpoisoned(&self.shared.jobs);
        let unstarted = jobs
            .values()
            .filter(|r| matches!(r.state, JobState::Queued | JobState::Running))
            .count() as u64;
        DrainSummary {
            completed: self.shared.metrics.jobs_completed.load(Ordering::Relaxed),
            failed: self.shared.metrics.jobs_failed.load(Ordering::Relaxed),
            rejected: self.shared.metrics.jobs_rejected.load(Ordering::Relaxed),
            unstarted,
        }
    }
}

/// SLO ticker: one periodic evaluator owns the violation counters.
/// Scrapes and `GET /v1/slo` use the read-only `peek` path, so counter
/// growth is a function of time and traffic, never scrape frequency.
fn slo_ticker_loop(shared: &Shared) {
    const TICK: Duration = Duration::from_millis(250);
    while !shared.stop_ticker.load(Ordering::SeqCst) {
        std::thread::sleep(TICK);
        if let Some(slo) = &shared.slo {
            slo.evaluate_mut(shared.spans.now_us());
        }
    }
}

/// Rebuilds a queued submission's job from its stored request bytes.
/// The bytes were validated at submit time, so a parse failure here is
/// a bug — it degrades to a job that records the error.
fn rebuild_job(queued: &QueuedJob) -> Job<()> {
    let built = match &queued.source {
        JobSource::Spec(body) => parse_job_spec(body).map(JobSpec::build),
        JobSource::ScenarioCell(body) => build_scenario_cell(body, &queued.key),
    };
    built.unwrap_or_else(|message| {
        Job::new(queued.key.clone(), move || {
            Err(format!("stored request no longer parses: {message}"))
        })
    })
}

fn worker_loop(shared: &Shared, shard: usize) {
    while let Some(queued) = shared.queue.pop(shard) {
        let picked_us = shared.spans.now_us();
        shared.spans.end_span(queued.queue_span, Some(picked_us));
        if let Some(record) = lock_unpoisoned(&shared.jobs).get_mut(&queued.id) {
            record.state = JobState::Running;
        }

        // Run, retrying panics (injected or real) up to the configured
        // budget. The injection site keys on the job id, so whether a
        // given job is hit does not depend on worker scheduling; the
        // plan's once-semantics make the retry succeed.
        let run_span = shared
            .spans
            .begin_span(queued.trace, "run", Some(picked_us), 0);
        let fault_key = format!("worker/{}", queued.id);
        let mut attempts = 0u32;
        let mut run_wall_us = 0u64;
        let completed = loop {
            let mut job = rebuild_job(&queued);
            if let Some(plan) = &shared.fault_plan {
                job = arm(plan, job, &fault_key);
            }
            let completed = run_one(job);
            run_wall_us += completed.wall_us();
            let panicked = completed
                .failure()
                .is_some_and(|f| f.kind == FailureKind::Panic);
            if panicked && attempts < shared.cfg.panic_retries {
                attempts += 1;
                shared.metrics.jobs_retried.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break completed;
        };
        // The run span closes on the harness's accumulated wall clock —
        // the single authority for execution time — so the span, the
        // record's wall_ms, and the artifact's timing agree by
        // construction.
        let run_end_us = picked_us + run_wall_us;
        shared
            .spans
            .annotate(run_span, "experiment", queued.experiment);
        if attempts > 0 {
            shared
                .spans
                .annotate(run_span, "attempts", (attempts + 1).to_string());
        }
        let sim_trace = completed
            .outcome
            .as_ref()
            .ok()
            .and_then(|out| out.trace.clone());
        if let Some((first, last)) = sim_trace.as_ref().and_then(trace_cycle_bounds) {
            shared
                .spans
                .annotate(run_span, "sim_cycles_first", first.to_string());
            shared
                .spans
                .annotate(run_span, "sim_cycles_last", last.to_string());
        }
        shared.spans.end_span(run_span, Some(run_end_us));

        // Serialize: artifact encoding plus optional persistence,
        // bracketed contiguously with the run span's end.
        let serialize_span =
            shared
                .spans
                .begin_span(queued.trace, "serialize", Some(run_end_us), 0);
        let ok = completed.outcome.is_ok();
        let wall_ms = completed.wall.as_millis() as u64;
        let error = completed
            .failure()
            .map(|f| format!("{}: {}", f.kind.as_str(), f.reason));
        let artifact = job_artifact_json(&completed).encode_pretty();
        persist(shared, queued.id, completed);
        shared.spans.end_span(serialize_span, None);

        if let Some(sim) = sim_trace {
            let mut ring = lock_unpoisoned(&shared.sim_traces);
            ring.push_back((queued.id, sim));
            while ring.len() > SIM_TRACE_RETAIN {
                ring.pop_front();
            }
        }
        // This worker just drained one queued job: feed the
        // Retry-After drain-rate estimator.
        let finished_us = shared.spans.now_us();
        {
            let mut comps = lock_unpoisoned(&shared.completions);
            comps.push_back(finished_us);
            while comps
                .front()
                .is_some_and(|&t| finished_us.saturating_sub(t) > DRAIN_WINDOW_US)
            {
                comps.pop_front();
            }
        }

        // Leader bookkeeping: populate the cache (success only — a
        // failure may be an injected fault, and re-running is the only
        // honest answer), then resolve every coalesced follower with
        // the leader's exact bytes. Cache insert and inflight removal
        // happen under one dedup lock so no submission can fall
        // between them. This runs BEFORE the leader's record flips to
        // done: a client that polls "done" and instantly resubmits
        // must find the cache already populated, not re-run the job.
        if let Some(identity) = &queued.identity {
            let followers = {
                let mut dedup = lock_unpoisoned(&shared.dedup);
                if ok {
                    let evicted = dedup.cache.insert(
                        identity.clone(),
                        CachedResult {
                            key: queued.key.clone(),
                            experiment: queued.experiment,
                            artifact: artifact.clone(),
                            wall_ms,
                        },
                    );
                    if evicted {
                        shared
                            .metrics
                            .cache_evictions
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                dedup
                    .inflight
                    .remove(identity)
                    .map(|i| i.followers)
                    .unwrap_or_default()
            };
            for follower in followers {
                if let Some(record) = lock_unpoisoned(&shared.jobs).get_mut(&follower.id) {
                    record.state = if ok { JobState::Done } else { JobState::Failed };
                    record.artifact = Some(artifact.clone());
                    record.error = error.clone();
                    record.wall_ms = Some(wall_ms);
                }
                shared
                    .spans
                    .end_span(follower.coalesce_span, Some(finished_us));
                if let Some(trace) = shared.spans.finish(follower.root.trace) {
                    let e2e_us = trace.root().duration_us().unwrap_or(0);
                    shared.metrics.observe_logical(e2e_us / 1_000, ok);
                    if let Some(slo) = &shared.slo {
                        slo.record_job(shared.spans.now_us(), e2e_us, ok);
                    }
                } else {
                    shared.metrics.observe_logical(0, ok);
                }
            }
        }

        if let Some(record) = lock_unpoisoned(&shared.jobs).get_mut(&queued.id) {
            record.state = if ok { JobState::Done } else { JobState::Failed };
            record.artifact = Some(artifact.clone());
            record.error = error.clone();
            record.wall_ms = Some(wall_ms);
        }

        // Seal the trace and derive every latency metric from it.
        if let Some(trace) = shared.spans.finish(queued.trace.trace) {
            let phase_ms = |name: &str| trace.phase_us(name).map_or(0, |us| us / 1_000);
            let e2e_us = trace.root().duration_us().unwrap_or(0);
            shared.metrics.observe_phases(
                queued.experiment,
                PhaseSample {
                    queue_wait_ms: phase_ms("queue_wait"),
                    run_ms: phase_ms("run"),
                    serialize_ms: phase_ms("serialize"),
                    e2e_ms: e2e_us / 1_000,
                    ok,
                },
            );
            if let Some(slo) = &shared.slo {
                slo.record_job(shared.spans.now_us(), e2e_us, ok);
            }
        }
    }
}

/// Persists one finished job as a single-job run under the configured
/// results root. A filesystem error degrades to a stderr line — the
/// in-memory record (and the client's result fetch) survive regardless.
fn persist(shared: &Shared, id: u64, completed: spur_harness::CompletedJob<()>) {
    let Some(root) = &shared.cfg.results_dir else {
        return;
    };
    let key = completed.key.clone();
    let wall = completed.wall;
    let report = RunReport::from_jobs(vec![completed], 1, wall);
    let meta = [("served_job_id", Json::UInt(id)), ("key", Json::Str(key))];
    if let Err(e) = write_run(root, &format!("job-{id:06}"), &report, &meta) {
        eprintln!("spur-serve: failed to persist job {id}: {e}");
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        if shared.stop_accepting.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop_accepting.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                // Transient accept errors (EMFILE, ECONNABORTED):
                // breathe and retry rather than spin or die.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// A routed response plus, for accepted submissions, the trace to
/// attach the `respond` span to once the response is actually written.
struct Routed {
    response: Response,
    /// Root span of an accepted submission's trace.
    submitted: Option<SpanContext>,
}

impl From<Response> for Routed {
    fn from(response: Response) -> Routed {
        Routed {
            response,
            submitted: None,
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let accepted_us = shared.spans.now_us();
    // The fairness fallback identity: clients that don't name
    // themselves (`x-client-id`) are billed by source IP.
    let conn_client = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    let routed = match read_request(&mut stream, shared.cfg.max_body_bytes) {
        Ok(request) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            route(shared, &request, accepted_us, &conn_client)
        }
        // Socket-level failure (timeout, reset, empty probe): nobody
        // is listening for an answer.
        Err(ReadError::Io(_)) => return,
        Err(ReadError::Malformed(what)) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            error_response(400, what).into()
        }
        Err(ReadError::TooLarge(what)) => {
            shared.metrics.http_requests.fetch_add(1, Ordering::Relaxed);
            let status = if what == "request body" { 413 } else { 431 };
            error_response(status, what).into()
        }
    };
    if (400..500).contains(&routed.response.status) {
        shared
            .metrics
            .http_client_errors
            .fetch_add(1, Ordering::Relaxed);
    }
    // Chaos: drop the connection without answering. All server-side
    // effects of the request (queueing, records, spans, metrics) are
    // already committed — exactly the window a crashed proxy would
    // expose. A dropped 202 records no `respond` span and no submit
    // latency: the client never saw an answer, so there is nothing to
    // attribute.
    if let Some(chaos) = &shared.cfg.chaos {
        let n = shared.connections.fetch_add(1, Ordering::Relaxed);
        if roll(
            chaos.seed ^ 0x5e1e_c7ed,
            &format!("resp/{n}"),
            chaos.drop_response_ppm,
        ) {
            return;
        }
    }
    let respond_start_us = shared.spans.now_us();
    let wrote = write_response(&mut stream, &routed.response).is_ok();
    if let (true, Some(root)) = (wrote, routed.submitted) {
        let respond_end_us = shared.spans.now_us();
        // The respond phase runs concurrently with queue_wait (the 202
        // cannot wait for the job), so it gets its own display track.
        let respond = shared
            .spans
            .begin_span(root, "respond", Some(respond_start_us), 1);
        shared.spans.end_span(respond, Some(respond_end_us));
        let submit_us = respond_end_us.saturating_sub(accepted_us);
        shared.metrics.observe_submit(submit_us / 1_000);
        if let Some(slo) = &shared.slo {
            slo.record_submit(respond_end_us, submit_us);
        }
    }
}

fn route(shared: &Shared, request: &Request, accepted_us: u64, conn_client: &str) -> Routed {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared).into(),
        ("GET", "/metrics") => Response::text(200, render_metrics(shared)).into(),
        ("GET", "/v1/slo") => slo_report(shared).into(),
        ("POST", "/v1/jobs") => submit(shared, request, accepted_us, conn_client),
        ("POST", "/v1/scenarios") => submit_scenario(shared, request, accepted_us, conn_client),
        ("POST", "/v1/shutdown") => {
            let queued = shared.queue.depth();
            shared.request_shutdown();
            Response::json(
                200,
                Json::object([
                    ("status", Json::Str("draining".into())),
                    ("queued", Json::UInt(queued as u64)),
                ])
                .encode(),
            )
            .into()
        }
        (
            _,
            "/healthz" | "/metrics" | "/v1/jobs" | "/v1/scenarios" | "/v1/shutdown" | "/v1/slo",
        ) => error_response(405, "method not allowed").into(),
        ("GET", path) if path.starts_with("/v1/scenarios/") => {
            match path["/v1/scenarios/".len()..].parse::<u64>() {
                Ok(id) => match foreign_owner(shared, request, id) {
                    Some(peer) => proxy_get(shared, &peer, path).into(),
                    None => scenario_status(shared, id).into(),
                },
                Err(_) => error_response(404, "no such route").into(),
            }
        }
        ("GET", path) => match parse_job_path(path) {
            Some((id, kind)) => {
                // A job id names its owning instance via the id
                // stride: polls that land on the wrong peer are
                // proxied to the one holding the record.
                if let Some(peer) = foreign_owner(shared, request, id) {
                    return proxy_get(shared, &peer, path).into();
                }
                match kind {
                    JobRoute::Status => job_status(shared, id).into(),
                    JobRoute::Result => job_result(shared, id).into(),
                    JobRoute::Trace => job_trace(shared, id).into(),
                    JobRoute::TraceChrome => job_trace_chrome(shared, id).into(),
                }
            }
            None => error_response(404, "no such route").into(),
        },
        _ => error_response(404, "no such route").into(),
    }
}

/// In multi-instance mode: the peer owning `id`'s record, when that
/// peer isn't us and the request hasn't already been forwarded once
/// (the guard header breaks proxy loops under inconsistent configs).
fn foreign_owner(shared: &Shared, request: &Request, id: u64) -> Option<String> {
    let ring = shared.ring.as_ref()?;
    if request.header("x-spur-forwarded").is_some() {
        return None;
    }
    let owner_index = (id / ID_STRIDE) as usize;
    if owner_index == shared.instance_index {
        return None;
    }
    ring.peers().get(owner_index).cloned()
}

/// Forwards a GET to the owning peer verbatim, marking the hop.
fn proxy_get(shared: &Shared, peer: &str, path: &str) -> Response {
    shared.metrics.jobs_proxied.fetch_add(1, Ordering::Relaxed);
    match crate::client::http_request_headers(
        peer,
        "GET",
        path,
        None,
        &[("x-spur-forwarded", "1")],
        shared.cfg.read_timeout,
    ) {
        Ok(upstream) => relay_response(upstream),
        Err(e) => error_response_owned(502, format!("peer {peer} unreachable: {e}")),
    }
}

/// Rebuilds a peer's response for our client: status and body
/// verbatim, plus the one header that carries semantics (Retry-After).
fn relay_response(upstream: crate::client::HttpResponse) -> Response {
    let mut response = Response::json(upstream.status, upstream.text());
    if let Some(retry) = upstream.header("retry-after") {
        response = response.with_header("retry-after", retry.to_string());
    }
    response
}

/// The client identity a submission bills to: the self-declared
/// `x-client-id` header (bounded — it becomes a lane key and a metric
/// dimension) or the connection's source IP.
fn client_id(request: &Request, conn_client: &str) -> String {
    match request.header("x-client-id") {
        Some(name) if !name.is_empty() => name.chars().take(64).collect(),
        _ => conn_client.to_string(),
    }
}

/// Which shard an identity routes to — the same hash family the peer
/// ring uses, reduced over the local shard count. Identical identities
/// always land on the same shard, which is what lets the dedup map
/// guarantee one leader per identity.
fn shard_of(shared: &Shared, identity: &str) -> usize {
    (crate::ring::hash64(identity.as_bytes()) % shared.queue.shard_count() as u64) as usize
}

/// The queue-backlog Retry-After: how long until the whole queue
/// plausibly drains at the observed completion rate.
fn dynamic_retry_after(shared: &Shared, depth: usize) -> u64 {
    retry_after_secs(depth, drain_rate(shared))
}

/// Observed worker completions per second over the sliding window
/// (clipped to uptime, so a young server isn't under-credited).
fn drain_rate(shared: &Shared) -> f64 {
    let now = shared.spans.now_us();
    let mut comps = lock_unpoisoned(&shared.completions);
    while comps
        .front()
        .is_some_and(|&t| now.saturating_sub(t) > DRAIN_WINDOW_US)
    {
        comps.pop_front();
    }
    if comps.is_empty() {
        return 0.0;
    }
    let effective_us = DRAIN_WINDOW_US.min(now.max(1));
    comps.len() as f64 / (effective_us as f64 / 1_000_000.0)
}

/// The per-job sub-resources under `/v1/jobs/{id}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobRoute {
    Status,
    Result,
    Trace,
    TraceChrome,
}

/// `/v1/jobs/{id}[/result|/trace|/trace/chrome]`.
fn parse_job_path(path: &str) -> Option<(u64, JobRoute)> {
    let rest = path.strip_prefix("/v1/jobs/")?;
    let (id_part, route) = if let Some(id_part) = rest.strip_suffix("/trace/chrome") {
        (id_part, JobRoute::TraceChrome)
    } else if let Some(id_part) = rest.strip_suffix("/trace") {
        (id_part, JobRoute::Trace)
    } else if let Some(id_part) = rest.strip_suffix("/result") {
        (id_part, JobRoute::Result)
    } else {
        (rest, JobRoute::Status)
    };
    id_part.parse::<u64>().ok().map(|id| (id, route))
}

fn render_metrics(shared: &Shared) -> String {
    let mut out = shared.metrics.render_prometheus(
        shared.queue.depth(),
        shared.queue.bound(),
        shared.queue.shard_count(),
        shared.cfg.cache_entries,
        shared.queue.is_draining(),
        shared.started.elapsed().as_secs(),
    );
    render_counter(
        &mut out,
        "spur_serve_traces_evicted_total",
        "Completed span traces evicted from the bounded retention ring.",
        shared.spans.evicted_total(),
    );
    if let Some(slo) = &shared.slo {
        let report = slo.peek(shared.spans.now_us());
        render_gauge(
            &mut out,
            "spur_serve_slo_ok",
            "1 while every declared SLO holds over the sliding window.",
            report.ok as u64,
        );
        render_counter(
            &mut out,
            "spur_serve_slo_violations_total",
            "Ticker evaluations at which any declared SLO failed.",
            report.violations_total,
        );
        let mut first = true;
        for target in &report.targets {
            render_counter_labeled(
                &mut out,
                "spur_serve_slo_target_violations_total",
                "Ticker evaluations at which this SLO target failed.",
                &[("slo", target.name)],
                target.violations_total,
                first,
            );
            first = false;
        }
    }
    out
}

fn healthz(shared: &Shared) -> Response {
    let draining = shared.queue.is_draining();
    Response::json(
        200,
        Json::object([
            (
                "status",
                Json::Str(if draining { "draining" } else { "ok" }.into()),
            ),
            ("queue_depth", Json::UInt(shared.queue.depth() as u64)),
            ("queue_bound", Json::UInt(shared.queue.bound() as u64)),
            ("workers", Json::UInt(shared.cfg.workers as u64)),
            ("shards", Json::UInt(shared.queue.shard_count() as u64)),
            (
                "jobs_submitted",
                Json::UInt(shared.metrics.jobs_submitted.load(Ordering::Relaxed)),
            ),
        ])
        .encode(),
    )
}

fn slo_report(shared: &Shared) -> Response {
    match &shared.slo {
        None => error_response(404, "no SLOs declared (start with --slo name=value)"),
        Some(slo) => Response::json(
            200,
            slo.peek(shared.spans.now_us()).to_json().encode_pretty(),
        ),
    }
}

fn submit(shared: &Shared, request: &Request, accepted_us: u64, conn_client: &str) -> Routed {
    let read_done_us = shared.spans.now_us();
    let spec = match parse_job_spec(&request.body) {
        Ok(spec) => spec,
        Err(message) => return error_response_owned(400, message).into(),
    };
    let key = spec.key();
    let experiment = spec.experiment();
    let identity = spec.identity();
    let client = client_id(request, conn_client);

    // Multi-instance: the identity's ring owner runs this job (and
    // caches it — key-partitioning falls out of routing). A request
    // that already hopped once is served locally no matter what the
    // ring says: one guarded hop can't loop, and serving locally under
    // an inconsistent peer config beats bouncing forever.
    if let Some(ring) = &shared.ring {
        if request.header("x-spur-forwarded").is_none()
            && ring.owner_index(&identity) != shared.instance_index
        {
            let owner = ring.owner(&identity).to_string();
            shared.metrics.jobs_proxied.fetch_add(1, Ordering::Relaxed);
            return match crate::client::http_request_headers(
                &owner,
                "POST",
                "/v1/jobs",
                Some(&request.body),
                &[("x-spur-forwarded", "1"), ("x-client-id", &client)],
                shared.cfg.read_timeout,
            ) {
                Ok(upstream) => relay_response(upstream).into(),
                Err(e) => {
                    error_response_owned(502, format!("peer {owner} unreachable: {e}")).into()
                }
            };
        }
    }

    let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;

    // Open the request's trace retroactively from the accept instant;
    // the accept and parse phases are already over, so they close with
    // explicit timestamps.
    let root = shared.spans.begin_trace("job", Some(accepted_us));
    shared.spans.annotate(root, "job_id", id.to_string());
    shared.spans.annotate(root, "key", key.clone());
    shared.spans.annotate(root, "client", client.clone());
    let accept = shared
        .spans
        .begin_span(root, "accept", Some(accepted_us), 0);
    shared.spans.end_span(accept, Some(read_done_us));
    let parse_span = shared
        .spans
        .begin_span(root, "parse", Some(read_done_us), 0);
    let parsed_us = shared.spans.now_us();
    shared.spans.end_span(parse_span, Some(parsed_us));

    // Route: pick the worker shard from the identity hash.
    let shard = shard_of(shared, &identity);
    let route_span = shared.spans.begin_span(root, "route", Some(parsed_us), 0);
    shared
        .spans
        .annotate(route_span, "shard", shard.to_string());
    let routed_us = shared.spans.now_us();
    shared.spans.end_span(route_span, Some(routed_us));

    // Cache lookup + coalesce decision, atomically against worker
    // completion (see [`Dedup`]).
    let cache_span = shared
        .spans
        .begin_span(root, "cache_lookup", Some(routed_us), 0);
    let mut dedup = lock_unpoisoned(&shared.dedup);

    if let Some(hit) = dedup.cache.get(&identity) {
        drop(dedup);
        shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        let looked_us = shared.spans.now_us();
        shared.spans.annotate(cache_span, "outcome", "hit");
        shared.spans.end_span(cache_span, Some(looked_us));
        lock_unpoisoned(&shared.jobs).insert(
            id,
            JobRecord {
                key: key.clone(),
                state: JobState::Done,
                artifact: Some(hit.artifact),
                error: None,
                wall_ms: Some(hit.wall_ms),
                trace_id: root.trace,
                experiment,
                admitted_us: looked_us,
            },
        );
        // The trace seals here: a cache hit's lifecycle ends at the
        // lookup. (The respond span becomes a no-op on the sealed
        // trace; submit latency is still recorded by the writer.)
        if let Some(trace) = shared.spans.finish(root.trace) {
            let e2e_us = trace.root().duration_us().unwrap_or(0);
            shared.metrics.observe_logical(e2e_us / 1_000, true);
            if let Some(slo) = &shared.slo {
                slo.record_job(shared.spans.now_us(), e2e_us, true);
            }
        }
        return Routed {
            response: Response::json(
                202,
                Json::object([
                    ("id", Json::UInt(id)),
                    ("key", Json::Str(key)),
                    ("status", Json::Str("done".into())),
                    ("cached", Json::Bool(true)),
                    ("trace_id", Json::UInt(root.trace)),
                ])
                .encode(),
            ),
            submitted: Some(root),
        };
    }
    shared.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

    if let Some(inflight) = dedup.inflight.get_mut(&identity) {
        let leader_id = inflight.leader_id;
        let looked_us = shared.spans.now_us();
        shared.spans.annotate(cache_span, "outcome", "coalesced");
        shared.spans.end_span(cache_span, Some(looked_us));
        let coalesce_span = shared
            .spans
            .begin_span(root, "coalesce_wait", Some(looked_us), 0);
        shared
            .spans
            .annotate(coalesce_span, "leader_id", leader_id.to_string());
        // Record before registering the follower: the instant the
        // dedup lock drops, the finishing leader may fan out, and it
        // must find this record to resolve.
        lock_unpoisoned(&shared.jobs).insert(
            id,
            JobRecord {
                key: key.clone(),
                state: JobState::Queued,
                artifact: None,
                error: None,
                wall_ms: None,
                trace_id: root.trace,
                experiment,
                admitted_us: looked_us,
            },
        );
        inflight.followers.push(Follower {
            id,
            root,
            coalesce_span,
        });
        drop(dedup);
        shared
            .metrics
            .jobs_coalesced
            .fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .jobs_submitted
            .fetch_add(1, Ordering::Relaxed);
        return Routed {
            response: Response::json(
                202,
                Json::object([
                    ("id", Json::UInt(id)),
                    ("key", Json::Str(key)),
                    ("status", Json::Str("queued".into())),
                    ("coalesced", Json::Bool(true)),
                    ("leader_id", Json::UInt(leader_id)),
                    ("trace_id", Json::UInt(root.trace)),
                ])
                .encode(),
            ),
            submitted: Some(root),
        };
    }

    // Leader path: this submission runs the simulation.
    let looked_us = shared.spans.now_us();
    shared.spans.annotate(cache_span, "outcome", "miss");
    shared.spans.end_span(cache_span, Some(looked_us));
    let queue_span = shared
        .spans
        .begin_span(root, "queue_wait", Some(looked_us), 0);
    lock_unpoisoned(&shared.jobs).insert(
        id,
        JobRecord {
            key: key.clone(),
            state: JobState::Queued,
            artifact: None,
            error: None,
            wall_ms: None,
            trace_id: root.trace,
            experiment,
            admitted_us: looked_us,
        },
    );
    let admission = Admission {
        shard,
        client: client.clone(),
        priority: spec.priority(),
        cost: spec.cost(),
        item: QueuedJob {
            id,
            key: key.clone(),
            source: JobSource::Spec(request.body.clone()),
            trace: root,
            queue_span,
            experiment,
            identity: Some(identity.clone()),
        },
    };
    match shared.queue.try_push(admission) {
        Ok(depth) => {
            // Register the in-flight leader while still holding the
            // dedup lock, so no identical submission can slip past
            // both the cache and this map.
            dedup.inflight.insert(
                identity,
                Inflight {
                    leader_id: id,
                    followers: Vec::new(),
                },
            );
            drop(dedup);
            shared
                .metrics
                .jobs_submitted
                .fetch_add(1, Ordering::Relaxed);
            shared
                .spans
                .annotate(queue_span, "depth_at_admit", depth.to_string());
            Routed {
                response: Response::json(
                    202,
                    Json::object([
                        ("id", Json::UInt(id)),
                        ("key", Json::Str(key)),
                        ("status", Json::Str("queued".into())),
                        ("queue_depth", Json::UInt(depth as u64)),
                        ("trace_id", Json::UInt(root.trace)),
                    ])
                    .encode(),
                ),
                submitted: Some(root),
            }
        }
        Err(FairPushError::Full(_)) => {
            drop(dedup);
            lock_unpoisoned(&shared.jobs).remove(&id);
            shared.spans.abandon(root.trace);
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            let retry = dynamic_retry_after(shared, shared.queue.depth());
            Response::json(
                429,
                Json::object([
                    ("error", Json::Str("queue full".into())),
                    ("queue_bound", Json::UInt(shared.queue.bound() as u64)),
                    ("retry_after", Json::UInt(retry)),
                ])
                .encode(),
            )
            .with_header("retry-after", retry.to_string())
            .into()
        }
        Err(FairPushError::ClientQuota { queued, .. }) => {
            drop(dedup);
            lock_unpoisoned(&shared.jobs).remove(&id);
            shared.spans.abandon(root.trace);
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .quota_rejected
                .fetch_add(1, Ordering::Relaxed);
            // The offender's Retry-After is about *its own* backlog
            // draining, not the whole queue's.
            let retry = retry_after_secs(queued, drain_rate(shared));
            Response::json(
                429,
                Json::object([
                    ("error", Json::Str("client over quota".into())),
                    ("client", Json::Str(client)),
                    ("quota", Json::UInt(shared.queue.client_quota() as u64)),
                    ("queued", Json::UInt(queued as u64)),
                    ("retry_after", Json::UInt(retry)),
                ])
                .encode(),
            )
            .with_header("retry-after", retry.to_string())
            .into()
        }
        Err(FairPushError::Draining(_)) => {
            drop(dedup);
            lock_unpoisoned(&shared.jobs).remove(&id);
            shared.spans.abandon(root.trace);
            error_response(503, "draining").into()
        }
    }
}

/// `POST /v1/scenarios`: validate a scenario document, expand its
/// matrix, and admit every cell to the queue atomically — a 202 means
/// the whole matrix is queued; a 429 means none of it is.
fn submit_scenario(
    shared: &Shared,
    request: &Request,
    accepted_us: u64,
    conn_client: &str,
) -> Routed {
    let read_done_us = shared.spans.now_us();
    let submission = match parse_scenario_submission(&request.body) {
        Ok(submission) => submission,
        Err(message) => return error_response_owned(400, message).into(),
    };
    let client = client_id(request, conn_client);
    let scenario_id = shared.next_scenario_id.fetch_add(1, Ordering::Relaxed) + 1;
    let body: Arc<Vec<u8>> = Arc::new(request.body.clone());
    let body_hash = crate::ring::hash64(&body);

    // Give every cell the full per-job treatment — its own id, record,
    // and span trace — before asking the queue for room, so a rejected
    // batch can be unwound completely.
    let mut batch = Vec::with_capacity(submission.cells.len());
    let mut admitted = Vec::with_capacity(submission.cells.len());
    {
        let mut jobs = lock_unpoisoned(&shared.jobs);
        for cell in &submission.cells {
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed) + 1;
            let root = shared.spans.begin_trace("job", Some(accepted_us));
            shared.spans.annotate(root, "job_id", id.to_string());
            shared.spans.annotate(root, "key", cell.key.clone());
            shared
                .spans
                .annotate(root, "scenario_id", scenario_id.to_string());
            let accept = shared
                .spans
                .begin_span(root, "accept", Some(accepted_us), 0);
            shared.spans.end_span(accept, Some(read_done_us));
            let parse_span = shared
                .spans
                .begin_span(root, "parse", Some(read_done_us), 0);
            let parsed_us = shared.spans.now_us();
            shared.spans.end_span(parse_span, Some(parsed_us));
            let queue_span = shared
                .spans
                .begin_span(root, "queue_wait", Some(parsed_us), 0);
            jobs.insert(
                id,
                JobRecord {
                    key: cell.key.clone(),
                    state: JobState::Queued,
                    artifact: None,
                    error: None,
                    wall_ms: None,
                    trace_id: root.trace,
                    experiment: "scenario",
                    admitted_us: parsed_us,
                },
            );
            // Scenario cells never coalesce or cache (identity: None)
            // — a matrix run is explicitly "run it now". They still
            // shard deterministically by submission + cell key so one
            // matrix spreads across the pool.
            let shard_key = format!("scenario:{body_hash:016x}/{}", cell.key);
            batch.push(Admission {
                shard: shard_of(shared, &shard_key),
                client: client.clone(),
                priority: Priority::Normal,
                cost: SCENARIO_CELL_COST,
                item: QueuedJob {
                    id,
                    key: cell.key.clone(),
                    source: JobSource::ScenarioCell(Arc::clone(&body)),
                    trace: root,
                    queue_span,
                    experiment: "scenario",
                    identity: None,
                },
            });
            admitted.push((id, cell.key.clone(), root.trace));
        }
    }

    match shared.queue.try_push_many(batch) {
        Ok(depth) => {
            shared
                .metrics
                .jobs_submitted
                .fetch_add(admitted.len() as u64, Ordering::Relaxed);
            lock_unpoisoned(&shared.scenarios).insert(
                scenario_id,
                ScenarioRecord {
                    name: submission.scenario.name.clone(),
                    body,
                    cells: admitted
                        .iter()
                        .map(|(id, key, _)| (*id, key.clone()))
                        .collect(),
                },
            );
            let cells: Vec<Json> = admitted
                .iter()
                .map(|(id, key, _)| {
                    Json::object([("id", Json::UInt(*id)), ("key", Json::Str(key.clone()))])
                })
                .collect();
            Response::json(
                202,
                Json::object([
                    ("id", Json::UInt(scenario_id)),
                    ("name", Json::Str(submission.scenario.name)),
                    ("status", Json::Str("queued".into())),
                    ("cells", Json::Arr(cells)),
                    ("queue_depth", Json::UInt(depth as u64)),
                ])
                .encode(),
            )
            .into()
        }
        Err(refused) => {
            // Unwind: the matrix never ran, so leave no trace of it.
            let mut jobs = lock_unpoisoned(&shared.jobs);
            for (id, _, trace) in &admitted {
                jobs.remove(id);
                shared.spans.abandon(*trace);
            }
            drop(jobs);
            match refused {
                FairPushError::Full(_) => {
                    shared
                        .metrics
                        .jobs_rejected
                        .fetch_add(admitted.len() as u64, Ordering::Relaxed);
                    let retry = dynamic_retry_after(shared, shared.queue.depth());
                    Response::json(
                        429,
                        Json::object([
                            ("error", Json::Str("queue full".into())),
                            ("cells", Json::UInt(admitted.len() as u64)),
                            ("queue_bound", Json::UInt(shared.queue.bound() as u64)),
                            ("retry_after", Json::UInt(retry)),
                        ])
                        .encode(),
                    )
                    .with_header("retry-after", retry.to_string())
                    .into()
                }
                FairPushError::ClientQuota { queued, .. } => {
                    shared
                        .metrics
                        .jobs_rejected
                        .fetch_add(admitted.len() as u64, Ordering::Relaxed);
                    shared
                        .metrics
                        .quota_rejected
                        .fetch_add(admitted.len() as u64, Ordering::Relaxed);
                    let retry = retry_after_secs(queued, drain_rate(shared));
                    Response::json(
                        429,
                        Json::object([
                            ("error", Json::Str("client over quota".into())),
                            ("client", Json::Str(client)),
                            ("cells", Json::UInt(admitted.len() as u64)),
                            ("quota", Json::UInt(shared.queue.client_quota() as u64)),
                            ("queued", Json::UInt(queued as u64)),
                            ("retry_after", Json::UInt(retry)),
                        ])
                        .encode(),
                    )
                    .with_header("retry-after", retry.to_string())
                    .into()
                }
                FairPushError::Draining(_) => error_response(503, "draining").into(),
            }
        }
    }
}

/// `GET /v1/scenarios/{id}`: per-cell status while the matrix runs;
/// once every cell finished, the scenario's assertions evaluated
/// against the produced artifacts, with per-assertion verdicts.
fn scenario_status(shared: &Shared, id: u64) -> Response {
    let (name, body, cells) = {
        let scenarios = lock_unpoisoned(&shared.scenarios);
        match scenarios.get(&id) {
            None => return error_response(404, "no such scenario"),
            Some(record) => (
                record.name.clone(),
                Arc::clone(&record.body),
                record.cells.clone(),
            ),
        }
    };

    let mut cell_docs = Vec::with_capacity(cells.len());
    let mut finished: Vec<(String, Option<String>)> = Vec::new();
    let mut all_finished = true;
    let mut any_started = false;
    let mut any_failed = false;
    {
        let jobs = lock_unpoisoned(&shared.jobs);
        for (job_id, key) in &cells {
            let Some(record) = jobs.get(job_id) else {
                all_finished = false;
                continue;
            };
            match record.state {
                JobState::Queued => all_finished = false,
                JobState::Running => {
                    all_finished = false;
                    any_started = true;
                }
                JobState::Done => {
                    any_started = true;
                    finished.push((key.clone(), record.artifact.clone()));
                }
                JobState::Failed => {
                    any_started = true;
                    any_failed = true;
                    finished.push((key.clone(), None));
                }
            }
            let mut fields = vec![
                ("id".to_string(), Json::UInt(*job_id)),
                ("key".to_string(), Json::Str(key.clone())),
                (
                    "status".to_string(),
                    Json::Str(record.state.as_str().into()),
                ),
            ];
            if let Some(error) = &record.error {
                fields.push(("error".to_string(), Json::Str(error.clone())));
            }
            cell_docs.push(Json::Obj(fields));
        }
    }

    let status = if all_finished {
        "done"
    } else if any_started {
        "running"
    } else {
        "queued"
    };
    let mut fields = vec![
        ("id".to_string(), Json::UInt(id)),
        ("name".to_string(), Json::Str(name)),
        ("status".to_string(), Json::Str(status.into())),
        ("cells".to_string(), Json::Arr(cell_docs)),
    ];
    if all_finished {
        match evaluate_finished(&body, &finished) {
            Ok(verdicts) => {
                let passed = !any_failed && verdicts.iter().all(|v| v.passed);
                fields.push(("passed".to_string(), Json::Bool(passed)));
                fields.push((
                    "assertions".to_string(),
                    Json::Arr(verdicts.iter().map(Verdict::to_json).collect()),
                ));
            }
            // The stored bytes validated at submit time; failing to
            // re-evaluate them is a server bug worth surfacing, not
            // hiding behind a false verdict.
            Err(message) => fields.push(("assertion_error".to_string(), Json::Str(message))),
        }
    }
    Response::json(200, Json::Obj(fields).encode_pretty())
}

fn job_status(shared: &Shared, id: u64) -> Response {
    let jobs = lock_unpoisoned(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return error_response(404, "no such job");
    };
    let mut fields = vec![
        ("id".to_string(), Json::UInt(id)),
        ("key".to_string(), Json::Str(record.key.clone())),
        (
            "status".to_string(),
            Json::Str(record.state.as_str().into()),
        ),
        ("trace_id".to_string(), Json::UInt(record.trace_id)),
        (
            "experiment".to_string(),
            Json::Str(record.experiment.into()),
        ),
        // The queue's own admission timestamp (span clock, µs) — the
        // reconciliation tests match the queue_wait span's start
        // against this value exactly.
        ("admitted_us".to_string(), Json::UInt(record.admitted_us)),
    ];
    if let Some(wall_ms) = record.wall_ms {
        fields.push(("wall_ms".to_string(), Json::UInt(wall_ms)));
    }
    if let Some(error) = &record.error {
        fields.push(("error".to_string(), Json::Str(error.clone())));
    }
    Response::json(200, Json::Obj(fields).encode())
}

fn job_result(shared: &Shared, id: u64) -> Response {
    let jobs = lock_unpoisoned(&shared.jobs);
    let Some(record) = jobs.get(&id) else {
        return error_response(404, "no such job");
    };
    match &record.artifact {
        // The artifact document covers failures too (status "failed",
        // kind, reason) — exactly what write_run would have persisted.
        Some(artifact) => Response::json(200, artifact.clone()),
        None => Response::json(
            409,
            Json::object([
                ("error", Json::Str("job not finished".into())),
                ("status", Json::Str(record.state.as_str().into())),
            ])
            .encode(),
        )
        .with_header("retry-after", "1".to_string()),
    }
}

/// `GET /v1/jobs/{id}/trace`: the request's span tree as JSON. Works
/// mid-flight (`complete: false`) so a stuck job can be diagnosed live.
fn job_trace(shared: &Shared, id: u64) -> Response {
    let trace_id = {
        let jobs = lock_unpoisoned(&shared.jobs);
        match jobs.get(&id) {
            None => return error_response(404, "no such job"),
            Some(record) => record.trace_id,
        }
    };
    match shared.spans.snapshot(trace_id) {
        Some(trace) => {
            let mut doc = trace.to_json();
            if let Json::Obj(fields) = &mut doc {
                fields.insert(0, ("job_id".to_string(), Json::UInt(id)));
            }
            Response::json(200, doc.encode_pretty())
        }
        None => error_response(404, "trace evicted from the retention ring"),
    }
}

/// `GET /v1/jobs/{id}/trace/chrome`: server spans merged with the
/// job's simulated-time event stream onto one Chrome-trace timeline.
fn job_trace_chrome(shared: &Shared, id: u64) -> Response {
    let trace_id = {
        let jobs = lock_unpoisoned(&shared.jobs);
        match jobs.get(&id) {
            None => return error_response(404, "no such job"),
            Some(record) => record.trace_id,
        }
    };
    let Some(trace) = shared.spans.snapshot(trace_id) else {
        return error_response(404, "trace evicted from the retention ring");
    };
    if !trace.complete {
        return Response::json(
            409,
            Json::object([("error", Json::Str("job not finished".into()))]).encode(),
        )
        .with_header("retry-after", "1".to_string());
    }
    let sim_traces = lock_unpoisoned(&shared.sim_traces);
    let sim = sim_traces
        .iter()
        .rev()
        .find(|(job_id, _)| *job_id == id)
        .map(|(_, doc)| doc);
    Response::json(200, merged_chrome_trace(&trace, sim).encode_pretty())
}

fn error_response(status: u16, message: &str) -> Response {
    error_response_owned(status, message.to_string())
}

fn error_response_owned(status: u16, message: String) -> Response {
    Response::json(
        status,
        Json::object([("error", Json::Str(message))]).encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_paths_parse_strictly() {
        assert_eq!(parse_job_path("/v1/jobs/7"), Some((7, JobRoute::Status)));
        assert_eq!(
            parse_job_path("/v1/jobs/7/result"),
            Some((7, JobRoute::Result))
        );
        assert_eq!(
            parse_job_path("/v1/jobs/7/trace"),
            Some((7, JobRoute::Trace))
        );
        assert_eq!(
            parse_job_path("/v1/jobs/7/trace/chrome"),
            Some((7, JobRoute::TraceChrome))
        );
        assert_eq!(parse_job_path("/v1/jobs/"), None);
        assert_eq!(parse_job_path("/v1/jobs/abc"), None);
        assert_eq!(parse_job_path("/v1/jobs/7/logs"), None);
        assert_eq!(parse_job_path("/v1/jobs/abc/trace"), None);
        assert_eq!(parse_job_path("/v2/jobs/7"), None);
    }
}
