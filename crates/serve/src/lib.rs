//! `spur-serve`: the experiment simulator as a network service.
//!
//! The batch harness answers "run this sweep"; this crate answers
//! "keep a worker pool warm and run cells on demand". A `spur-serve`
//! daemon owns a long-lived pool, accepts experiment submissions over
//! a minimal HTTP/1.1 API, and applies backpressure honestly: the job
//! queue is bounded, a full queue sheds submissions with `429` +
//! `Retry-After` derived from live queue depth and drain rate, and
//! shutdown is drain-then-exit — every accepted job still runs.
//!
//! # The serve pipeline
//!
//! Submissions flow accept → parse → **route** (consistent-hash the
//! full-spec identity to a worker shard, or to the owning peer in
//! multi-instance mode) → **cache lookup** (LRU results cache; a hit
//! answers without simulating) → **coalesce** (identical in-flight
//! submissions join the running leader instead of queuing) → the
//! shard's deficit-round-robin lane for this client. Every job is
//! deterministic and byte-reproducible, which is what makes the cache
//! and coalescing *correct*, not merely fast: a cached or coalesced
//! answer is provably the same bytes a fresh run would produce. See
//! [`queue::FairQueue`], [`cache::ResultsCache`], [`ring::HashRing`].
//!
//! # API
//!
//! | route | effect |
//! |---|---|
//! | `POST /v1/jobs` | submit a cell (JSON body, see [`api`]) → `202` with id |
//! | `POST /v1/scenarios` | submit a whole scenario matrix (see [`scenario`]) → `202` |
//! | `GET /v1/scenarios/{id}` | per-cell status; assertion verdicts once done |
//! | `GET /v1/jobs/{id}` | poll status (`queued`/`running`/`done`/`failed`) |
//! | `GET /v1/jobs/{id}/result` | the job's artifact document |
//! | `GET /v1/jobs/{id}/trace` | the request's span tree (works mid-flight) |
//! | `GET /v1/jobs/{id}/trace/chrome` | server spans + sim events, Chrome format |
//! | `GET /v1/slo` | declared-SLO evaluation report (404 without `--slo`) |
//! | `GET /healthz` | liveness + queue depth |
//! | `GET /metrics` | Prometheus text exposition |
//! | `POST /v1/shutdown` | drain the queue, then exit |
//!
//! # Observability
//!
//! Every accepted submission carries a span trace from socket accept
//! to serialized artifact (`accept` → `parse` → `queue_wait` → `run` →
//! `serialize`, plus the concurrent `respond` write). The span tree is
//! the single latency source of truth: `/metrics` phase histograms and
//! SLO evaluation are both derived from sealed traces, never from
//! side-channel timers. See `docs/OBSERVABILITY.md`.
//!
//! # Determinism
//!
//! Served jobs are compiled by the same `spur_core::jobs` builders
//! under the same keys the CLI sweeps use, executed by the same
//! [`spur_harness::run_one`] body, and the result endpoint streams
//! [`spur_harness::job_artifact_json`] pretty-encoded — byte-for-byte
//! the file a `reproduce_all` run writes for the same cell. The
//! integration tests assert that equality end-to-end over a real
//! socket.
//!
//! See `docs/SERVING.md` for the operational guide.

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod ring;
pub mod scenario;
pub mod server;

pub use api::{parse_job_spec, JobSpec};
pub use cache::{CachedResult, ResultsCache};
pub use client::{get, http_request, http_request_headers, post_json, HttpResponse};
pub use metrics::{PhaseSample, ServeMetrics};
pub use queue::{
    retry_after_secs, Admission, BoundedQueue, FairPushError, FairQueue, Priority, PushError,
};
pub use ring::HashRing;
pub use scenario::MAX_SCENARIO_CELLS;
pub use server::{ChaosConfig, DrainSummary, ServeConfig, Server};
