//! The `spur-serve` daemon binary.
//!
//! ```text
//! spur-serve [--addr 127.0.0.1:7979] [--workers N] [--queue-bound N]
//!            [--shards N] [--cache-entries N] [--client-quota N]
//!            [--peers HOST:PORT,...] [--self-peer HOST:PORT]
//!            [--accept-threads N] [--read-timeout-ms N]
//!            [--write-timeout-ms N] [--max-body-bytes N]
//!            [--results-dir DIR] [--panic-retries N]
//!            [--chaos-seed N] [--chaos-panic-ppm N] [--chaos-drop-ppm N]
//!            [--slo NAME=VALUE]... [--slo-window-secs N]
//!            [--trace-capacity N]
//! ```
//!
//! Prints one `listening on <addr>` line to stdout once bound (scripts
//! wait for it), then serves until `POST /v1/shutdown`, drains the
//! queue, and exits 0. With `--results-dir` every finished job is also
//! persisted as a single-job artifact run that `check_obs` can
//! validate.
//!
//! `--slo` is repeatable and declares one target per use, e.g.
//! `--slo p99_submit_ms=500 --slo min_jobs_per_sec=1`; declared SLOs
//! are evaluated over a sliding window (`--slo-window-secs`, default
//! 60) and exposed at `GET /v1/slo` and on `/metrics`. The `--chaos-*`
//! flags arm deterministic fault injection for soak testing; any
//! chaos flag implies chaos with the other rates at zero.
//!
//! `--peers` declares the full multi-instance membership (comma
//! separated, every instance gets the same list) and `--self-peer`
//! names this instance's own entry in it; submissions whose identity
//! hashes to another peer are proxied there. `--client-quota` caps
//! queued jobs per client id (0 = unlimited); `--shards` splits the
//! worker pool into independently-ordered queues.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spur_obs::slo::SloTarget;
use spur_serve::{ChaosConfig, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: spur-serve [--addr HOST:PORT] [--workers N] [--queue-bound N]\n\
         \x20                 [--shards N] [--cache-entries N] [--client-quota N]\n\
         \x20                 [--peers HOST:PORT,...] [--self-peer HOST:PORT]\n\
         \x20                 [--accept-threads N] [--read-timeout-ms N]\n\
         \x20                 [--write-timeout-ms N] [--max-body-bytes N]\n\
         \x20                 [--results-dir DIR] [--panic-retries N]\n\
         \x20                 [--chaos-seed N] [--chaos-panic-ppm N] [--chaos-drop-ppm N]\n\
         \x20                 [--slo NAME=VALUE]... [--slo-window-secs N]\n\
         \x20                 [--trace-capacity N]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("spur-serve: {what} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-bound" => {
                cfg.queue_bound = parse_num(&value("--queue-bound"), "--queue-bound")
            }
            "--shards" => cfg.shards = parse_num(&value("--shards"), "--shards"),
            "--cache-entries" => {
                cfg.cache_entries = parse_num(&value("--cache-entries"), "--cache-entries")
            }
            "--client-quota" => {
                cfg.client_quota = parse_num(&value("--client-quota"), "--client-quota")
            }
            "--peers" => {
                cfg.peers = value("--peers")
                    .split(',')
                    .map(|p| p.trim().to_string())
                    .filter(|p| !p.is_empty())
                    .collect()
            }
            "--self-peer" => cfg.self_peer = Some(value("--self-peer")),
            "--accept-threads" => {
                cfg.accept_threads = parse_num(&value("--accept-threads"), "--accept-threads")
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(parse_num(
                    &value("--read-timeout-ms"),
                    "--read-timeout-ms",
                ))
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(parse_num(
                    &value("--write-timeout-ms"),
                    "--write-timeout-ms",
                ))
            }
            "--max-body-bytes" => {
                cfg.max_body_bytes = parse_num(&value("--max-body-bytes"), "--max-body-bytes")
            }
            "--results-dir" => cfg.results_dir = Some(PathBuf::from(value("--results-dir"))),
            "--panic-retries" => {
                cfg.panic_retries = parse_num(&value("--panic-retries"), "--panic-retries")
            }
            "--chaos-seed" => {
                chaos(&mut cfg).seed = parse_num(&value("--chaos-seed"), "--chaos-seed")
            }
            "--chaos-panic-ppm" => {
                chaos(&mut cfg).worker_panic_ppm =
                    parse_num(&value("--chaos-panic-ppm"), "--chaos-panic-ppm")
            }
            "--chaos-drop-ppm" => {
                chaos(&mut cfg).drop_response_ppm =
                    parse_num(&value("--chaos-drop-ppm"), "--chaos-drop-ppm")
            }
            "--slo" => {
                let spec = value("--slo");
                match SloTarget::parse(&spec) {
                    Ok(target) => cfg.slos.push(target),
                    Err(e) => {
                        eprintln!("spur-serve: bad --slo {spec:?}: {e}");
                        usage();
                    }
                }
            }
            "--slo-window-secs" => {
                cfg.slo_window =
                    Duration::from_secs(parse_num(&value("--slo-window-secs"), "--slo-window-secs"))
            }
            "--trace-capacity" => {
                cfg.trace_capacity = parse_num(&value("--trace-capacity"), "--trace-capacity")
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("spur-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    cfg
}

/// The chaos config a `--chaos-*` flag mutates, created zeroed on
/// first use (so `--chaos-panic-ppm` alone gets seed 0, drop rate 0).
fn chaos(cfg: &mut ServeConfig) -> &mut ChaosConfig {
    cfg.chaos.get_or_insert(ChaosConfig {
        seed: 0,
        worker_panic_ppm: 0,
        drop_response_ppm: 0,
    })
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("spur-serve: bad value {text:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let cfg = parse_config();
    let workers = cfg.workers;
    let queue_bound = cfg.queue_bound;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spur-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Scripts wait on this line; don't let block buffering hold it.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    eprintln!("spur-serve: {workers} worker(s), queue bound {queue_bound}; POST /v1/shutdown to drain and exit");
    let summary = server.wait();
    eprintln!(
        "spur-serve: drained; {} completed, {} failed, {} rejected, {} unstarted",
        summary.completed, summary.failed, summary.rejected, summary.unstarted
    );
    ExitCode::SUCCESS
}
