//! The `spur-serve` daemon binary.
//!
//! ```text
//! spur-serve [--addr 127.0.0.1:7979] [--workers N] [--queue-bound N]
//!            [--accept-threads N] [--read-timeout-ms N]
//!            [--write-timeout-ms N] [--max-body-bytes N]
//!            [--results-dir DIR]
//! ```
//!
//! Prints one `listening on <addr>` line to stdout once bound (scripts
//! wait for it), then serves until `POST /v1/shutdown`, drains the
//! queue, and exits 0. With `--results-dir` every finished job is also
//! persisted as a single-job artifact run that `check_obs` can
//! validate.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use spur_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: spur-serve [--addr HOST:PORT] [--workers N] [--queue-bound N]\n\
         \x20                 [--accept-threads N] [--read-timeout-ms N]\n\
         \x20                 [--write-timeout-ms N] [--max-body-bytes N]\n\
         \x20                 [--results-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_config() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("spur-serve: {what} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-bound" => {
                cfg.queue_bound = parse_num(&value("--queue-bound"), "--queue-bound")
            }
            "--accept-threads" => {
                cfg.accept_threads = parse_num(&value("--accept-threads"), "--accept-threads")
            }
            "--read-timeout-ms" => {
                cfg.read_timeout = Duration::from_millis(parse_num(
                    &value("--read-timeout-ms"),
                    "--read-timeout-ms",
                ))
            }
            "--write-timeout-ms" => {
                cfg.write_timeout = Duration::from_millis(parse_num(
                    &value("--write-timeout-ms"),
                    "--write-timeout-ms",
                ))
            }
            "--max-body-bytes" => {
                cfg.max_body_bytes = parse_num(&value("--max-body-bytes"), "--max-body-bytes")
            }
            "--results-dir" => cfg.results_dir = Some(PathBuf::from(value("--results-dir"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("spur-serve: unknown flag {other:?}");
                usage();
            }
        }
    }
    cfg
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("spur-serve: bad value {text:?} for {flag}");
        usage();
    })
}

fn main() -> ExitCode {
    let cfg = parse_config();
    let workers = cfg.workers;
    let queue_bound = cfg.queue_bound;
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spur-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Scripts wait on this line; don't let block buffering hold it.
    let _ = std::io::Write::flush(&mut std::io::stdout());
    eprintln!("spur-serve: {workers} worker(s), queue bound {queue_bound}; POST /v1/shutdown to drain and exit");
    let summary = server.wait();
    eprintln!(
        "spur-serve: drained; {} completed, {} failed, {} rejected, {} unstarted",
        summary.completed, summary.failed, summary.rejected, summary.unstarted
    );
    ExitCode::SUCCESS
}
