//! Scenario submissions: a whole declared matrix over one request.
//!
//! `POST /v1/scenarios` accepts the same schema-versioned document the
//! `spur-scenario` CLI runs from a file (see `docs/SCENARIOS.md`). The
//! server validates it with the same strict parser — a 400 carries the
//! parser's path-qualified message — expands the matrix with the same
//! `spur_scenario::cells` expansion, and enqueues one job per cell
//! *atomically*: either the whole matrix fits in the bounded queue or
//! the submission is shed with 429 and nothing ran.
//!
//! Each cell is rebuilt from the stored scenario bytes at pop time
//! (like single-job submissions are rebuilt from their request bytes),
//! so a served scenario cell's artifact is byte-identical to the same
//! cell run by the CLI or a folded-in `ablation_*` binary.
//!
//! When the last cell finishes, `GET /v1/scenarios/{id}` evaluates the
//! scenario's expected-shape assertions against the produced artifact
//! documents and reports per-assertion verdicts; the scenario passes
//! only if every cell succeeded *and* every assertion held.

use std::sync::Arc;

use spur_core::obs::ObsParams;
use spur_harness::fault::{arm, FaultPlan};
use spur_harness::Job;
use spur_obs::validate::parse;
use spur_scenario::asserts::evaluate;
use spur_scenario::cells::expand;
use spur_scenario::{enumerate, Cell, CellResult, Scenario, Verdict, WorkloadSource};

/// Largest matrix one HTTP submission may expand to. A scenario
/// occupies queue slots for every cell at once (admission is
/// all-or-nothing), so this also bounds how much of the queue a single
/// request can claim.
pub const MAX_SCENARIO_CELLS: usize = 64;

/// A validated scenario submission: the parsed document plus its
/// enumerated cells (in expansion order, which is also key order for
/// the scenario result's cell list).
#[derive(Debug)]
pub struct ScenarioSubmission {
    /// The parsed, validated scenario.
    pub scenario: Scenario,
    /// The enumerated matrix cells.
    pub cells: Vec<Cell>,
}

/// Parses and validates a `POST /v1/scenarios` body. Every failure is
/// a caller-readable, path-qualified message destined for a 400.
pub fn parse_scenario_submission(body: &[u8]) -> Result<ScenarioSubmission, String> {
    let scenario = Scenario::parse_bytes(body)?;
    if matches!(scenario.workload, Some(WorkloadSource::Trace { .. })) {
        return Err(
            "workload.trace: recorded-trace workloads are not served (the trace file \
             lives on the submitting host); replay traces with the spur-scenario CLI"
                .into(),
        );
    }
    let scale = scenario.resolve_scale(None);
    let cells = enumerate(&scenario, scale)?;
    if cells.len() > MAX_SCENARIO_CELLS {
        return Err(format!(
            "matrix: scenario expands to {} cells, more than the served cap of {MAX_SCENARIO_CELLS}",
            cells.len()
        ));
    }
    Ok(ScenarioSubmission { scenario, cells })
}

/// The observability parameters a served scenario runs with — the
/// scenario's own `run.obs` / `run.epoch`, exactly as the CLI runner
/// resolves them with no flags given.
fn serving_obs(scenario: &Scenario) -> Option<ObsParams> {
    scenario.run.obs.then(|| ObsParams {
        epoch: scenario.run.epoch,
        ..ObsParams::default()
    })
}

/// Rebuilds one cell's job from the stored scenario bytes. The bytes
/// were validated at submit time, so any failure here degrades to an
/// error the caller records against the job.
pub fn build_scenario_cell(body: &[u8], key: &str) -> Result<Job<()>, String> {
    let scenario = Scenario::parse_bytes(body)?;
    let scale = scenario.resolve_scale(None);
    let obs = serving_obs(&scenario);
    let expanded = expand(&scenario, scale, obs)?;
    let (cell, job) = expanded
        .into_iter()
        .find(|(cell, _)| cell.key == key)
        .ok_or_else(|| format!("scenario no longer expands a cell keyed {key}"))?;
    let mut job = job.map(|_| ());
    if let Some((seed, ppm)) = scenario.run.fault_plan {
        let plan = Arc::new(FaultPlan::new(seed, ppm));
        job = arm(&plan, job, &cell.key);
    }
    Ok(job)
}

/// Evaluates a finished scenario's assertions against the artifact
/// documents its successful cells produced. `finished` pairs each
/// cell's key with the pretty-encoded artifact of its job, `None` for
/// cells whose job failed (those simply produce no `CellResult`; an
/// assertion whose selector needs a missing cell fails with a message
/// saying so, which is the honest verdict).
pub fn evaluate_finished(
    body: &[u8],
    finished: &[(String, Option<String>)],
) -> Result<Vec<Verdict>, String> {
    let scenario = Scenario::parse_bytes(body)?;
    let scale = scenario.resolve_scale(None);
    let cells = enumerate(&scenario, scale)?;
    let results: Vec<CellResult> = cells
        .into_iter()
        .filter_map(|cell| {
            let artifact = finished
                .iter()
                .find(|(key, _)| *key == cell.key)
                .and_then(|(_, artifact)| artifact.as_deref())?;
            let doc = parse(artifact).ok()?;
            Some(CellResult {
                key: cell.key,
                coords: cell.coords,
                doc,
            })
        })
        .collect();
    Ok(evaluate(&scenario.assertions, &results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_harness::{job_artifact_json, run_one};

    const SMALL: &str = r#"{
      "schema_version": 1,
      "name": "served_probe",
      "description": "scenario-submission unit-test config",
      "experiment": "sim",
      "workload": "WORKLOAD1",
      "scale": {"refs": 20000, "seed": 1989, "reps": 1},
      "matrix": { "mem_mb": [5], "dirty": ["MIN", "FAULT"] },
      "assertions": [
        {
          "check": "relation",
          "name": "fault_ge_min",
          "metric": "data.dirty_faults",
          "op": ">=",
          "left": {"dirty": "FAULT"},
          "right": {"dirty": "MIN"}
        }
      ]
    }"#;

    #[test]
    fn submission_parses_and_enumerates() {
        let sub = parse_scenario_submission(SMALL.as_bytes()).unwrap();
        assert_eq!(sub.scenario.name, "served_probe");
        assert_eq!(sub.cells.len(), 2);
        assert_eq!(sub.cells[0].key, "sim/WORKLOAD1/5MB/MIN/MISS/1cpu");
    }

    #[test]
    fn trace_workloads_are_refused() {
        let body = r#"{
          "schema_version": 1,
          "name": "t", "description": "d", "experiment": "sim",
          "workload": {"trace": "x.spurtrace", "regions": "WORKLOAD1"},
          "matrix": {"mem_mb": [5]}
        }"#;
        let err = parse_scenario_submission(body.as_bytes()).unwrap_err();
        assert!(err.contains("workload.trace"), "{err}");
    }

    #[test]
    fn oversize_matrices_are_refused_with_the_cap() {
        let body = r#"{
          "schema_version": 1,
          "name": "big", "description": "d", "experiment": "sim",
          "workload": "SLC",
          "matrix": {
            "mem_mb": [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17],
            "dirty": ["FAULT","FLUSH","SPUR","WRITE","MIN"]
          }
        }"#;
        let err = parse_scenario_submission(body.as_bytes()).unwrap_err();
        assert!(err.contains("85 cells"), "{err}");
        assert!(err.contains("64"), "{err}");
    }

    #[test]
    fn parse_errors_stay_path_qualified() {
        let err = parse_scenario_submission(
            br#"{"schema_version": 1, "name": "x", "description": "d",
                 "experiment": "sim", "workload": "SLC",
                 "matrix": {"mem_mb": [5], "bogus_axis": [1]}}"#,
        )
        .unwrap_err();
        assert!(err.contains("bogus_axis"), "{err}");
    }

    #[test]
    fn rebuilt_cell_matches_direct_expansion_byte_for_byte() {
        let sub = parse_scenario_submission(SMALL.as_bytes()).unwrap();
        let key = &sub.cells[1].key;
        let served = run_one(build_scenario_cell(SMALL.as_bytes(), key).unwrap());
        let scale = sub.scenario.resolve_scale(None);
        let obs = serving_obs(&sub.scenario);
        let direct = expand(&sub.scenario, scale, obs)
            .unwrap()
            .into_iter()
            .find(|(cell, _)| cell.key == *key)
            .map(|(_, job)| run_one(job.map(|_| ())))
            .unwrap();
        assert_eq!(
            job_artifact_json(&served).encode_pretty(),
            job_artifact_json(&direct).encode_pretty(),
        );
    }

    #[test]
    fn finished_scenarios_evaluate_their_assertions() {
        let sub = parse_scenario_submission(SMALL.as_bytes()).unwrap();
        let finished: Vec<(String, Option<String>)> = sub
            .cells
            .iter()
            .map(|cell| {
                let completed = run_one(build_scenario_cell(SMALL.as_bytes(), &cell.key).unwrap());
                (
                    cell.key.clone(),
                    Some(job_artifact_json(&completed).encode_pretty()),
                )
            })
            .collect();
        let verdicts = evaluate_finished(SMALL.as_bytes(), &finished).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].name, "fault_ge_min");
        assert!(verdicts[0].passed, "{:?}", verdicts[0].failures);
    }

    #[test]
    fn missing_cells_fail_assertions_rather_than_vanish() {
        let sub = parse_scenario_submission(SMALL.as_bytes()).unwrap();
        // The FAULT cell failed: no artifact. The relation must report
        // a failure, not silently pass on an empty selection.
        let finished: Vec<(String, Option<String>)> = sub
            .cells
            .iter()
            .map(|cell| {
                let artifact = (!cell.key.contains("FAULT")).then(|| {
                    let completed =
                        run_one(build_scenario_cell(SMALL.as_bytes(), &cell.key).unwrap());
                    job_artifact_json(&completed).encode_pretty()
                });
                (cell.key.clone(), artifact)
            })
            .collect();
        let verdicts = evaluate_finished(SMALL.as_bytes(), &finished).unwrap();
        assert_eq!(verdicts.len(), 1);
        assert!(!verdicts[0].passed);
    }
}
