//! The bounded job queue: backpressure by refusal, drain by contract.
//!
//! A long-lived service must not buffer unboundedly — when producers
//! outrun the worker pool the queue fills, and the only honest answers
//! are "not now" (HTTP 429 upstream) or "not anymore" (draining).
//! [`BoundedQueue::try_push`] never blocks; [`BoundedQueue::pop`]
//! blocks until an item arrives or the queue is draining *and* empty,
//! which is exactly the worker-exit condition a graceful shutdown
//! needs: every accepted job still runs, no new job sneaks in.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at its bound; the item comes back to the caller.
    Full(T),
    /// The queue is draining and accepts nothing new.
    Draining(T),
}

struct State<T> {
    items: VecDeque<T>,
    draining: bool,
}

/// A fixed-capacity MPMC queue with explicit drain semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    bound: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `bound` items (`bound` is
    /// clamped to at least 1 — a zero-capacity queue could never
    /// accept work).
    pub fn new(bound: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            bound: bound.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue has stopped accepting new items.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Enqueues without blocking. Returns the depth after the push, or
    /// hands the item back if the queue is full or draining.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.draining {
            return Err(PushError::Draining(item));
        }
        if state.items.len() >= self.bound {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Enqueues a batch atomically: either every item is admitted (in
    /// order) or none is and the whole batch comes back. This is how a
    /// scenario submission claims slots for its entire matrix — a
    /// half-admitted matrix could never produce a complete result.
    /// Returns the depth after the push.
    pub fn try_push_many(&self, items: Vec<T>) -> Result<usize, PushError<Vec<T>>> {
        let mut state = self.lock();
        if state.draining {
            return Err(PushError::Draining(items));
        }
        if state.items.len() + items.len() > self.bound {
            return Err(PushError::Full(items));
        }
        let n = items.len();
        state.items.extend(items);
        let depth = state.items.len();
        drop(state);
        for _ in 0..n {
            self.available.notify_one();
        }
        Ok(depth)
    }

    /// Dequeues, blocking until an item is available. Returns `None`
    /// once the queue is draining and empty — the signal for a worker
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting new items and wakes every blocked [`pop`] so
    /// workers can finish the backlog and exit.
    ///
    /// [`pop`]: BoundedQueue::pop
    pub fn drain(&self) {
        self.lock().draining = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_til_full_then_shed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
    }

    #[test]
    fn drain_refuses_new_work_and_releases_poppers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.drain();
        assert_eq!(q.try_push(8), Err(PushError::Draining(8)));
        // The backlog still drains...
        assert_eq!(q.pop(), Some(7));
        // ...and an empty draining queue releases immediately.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_drain() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then drain: it must return None.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        // Three more would overflow: the whole batch bounces back.
        assert_eq!(
            q.try_push_many(vec![2, 3, 4]),
            Err(PushError::Full(vec![2, 3, 4]))
        );
        assert_eq!(q.depth(), 1);
        // Two fit exactly, in order.
        assert_eq!(q.try_push_many(vec![2, 3]), Ok(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        // Draining refuses batches wholesale.
        q.drain();
        assert_eq!(q.try_push_many(vec![9]), Err(PushError::Draining(vec![9])));
    }

    #[test]
    fn zero_bound_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.bound(), 1);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }
}
