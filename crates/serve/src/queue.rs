//! The bounded job queues: backpressure by refusal, drain by contract.
//!
//! A long-lived service must not buffer unboundedly — when producers
//! outrun the worker pool the queue fills, and the only honest answers
//! are "not now" (HTTP 429 upstream) or "not anymore" (draining).
//! [`BoundedQueue::try_push`] never blocks; [`BoundedQueue::pop`]
//! blocks until an item arrives or the queue is draining *and* empty,
//! which is exactly the worker-exit condition a graceful shutdown
//! needs: every accepted job still runs, no new job sneaks in.
//!
//! [`FairQueue`] is the sharded successor the serve pipeline routes
//! into: the same bound/drain contract, but items carry a shard (from
//! consistent-hashing the job identity), a client id, a [`Priority`],
//! and a deficit-round-robin cost. Inside each shard every client gets
//! a *lane*; workers pinned to a shard pull via DRR across lanes, so a
//! greedy client queues behind its own backlog instead of everyone
//! else's. An optional per-client quota refuses a single client's
//! excess with [`FairPushError::ClientQuota`] — a 429 that names the
//! offender — while the global bound still caps the whole queue.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at its bound; the item comes back to the caller.
    Full(T),
    /// The queue is draining and accepts nothing new.
    Draining(T),
}

struct State<T> {
    items: VecDeque<T>,
    draining: bool,
}

/// A fixed-capacity MPMC queue with explicit drain semantics.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    bound: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `bound` items (`bound` is
    /// clamped to at least 1 — a zero-capacity queue could never
    /// accept work).
    pub fn new(bound: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            bound: bound.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured capacity.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue has stopped accepting new items.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Enqueues without blocking. Returns the depth after the push, or
    /// hands the item back if the queue is full or draining.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.draining {
            return Err(PushError::Draining(item));
        }
        if state.items.len() >= self.bound {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Enqueues a batch atomically: either every item is admitted (in
    /// order) or none is and the whole batch comes back. This is how a
    /// scenario submission claims slots for its entire matrix — a
    /// half-admitted matrix could never produce a complete result.
    /// Returns the depth after the push.
    pub fn try_push_many(&self, items: Vec<T>) -> Result<usize, PushError<Vec<T>>> {
        let mut state = self.lock();
        if state.draining {
            return Err(PushError::Draining(items));
        }
        if state.items.len() + items.len() > self.bound {
            return Err(PushError::Full(items));
        }
        let n = items.len();
        state.items.extend(items);
        let depth = state.items.len();
        drop(state);
        for _ in 0..n {
            self.available.notify_one();
        }
        Ok(depth)
    }

    /// Dequeues, blocking until an item is available. Returns `None`
    /// once the queue is draining and empty — the signal for a worker
    /// to exit.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.draining {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting new items and wakes every blocked [`pop`] so
    /// workers can finish the backlog and exit.
    ///
    /// [`pop`]: BoundedQueue::pop
    pub fn drain(&self) {
        self.lock().draining = true;
        self.available.notify_all();
    }
}

/// How urgently a submission wants to run, *within its own client's
/// lane*. Fairness across clients dominates: a high-priority job from
/// a greedy client never jumps another client's queue, it only jumps
/// that client's own lower-priority jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    High,
    Normal,
    Low,
}

impl Priority {
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// The wire name, as accepted in the submission body.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Why a fair push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum FairPushError<T> {
    /// The queue is at its global bound.
    Full(T),
    /// The queue is draining and accepts nothing new.
    Draining(T),
    /// This *client* is over its quota; the rest of the queue has
    /// room. `queued` is the client's current depth, for a per-client
    /// Retry-After.
    ClientQuota { item: T, queued: usize },
}

/// One admission into the fair queue: the routed shard, the client it
/// bills to, its lane priority, and its DRR cost (simulated refs —
/// see `JobSpec::cost`).
#[derive(Debug, PartialEq, Eq)]
pub struct Admission<T> {
    pub shard: usize,
    pub client: String,
    pub priority: Priority,
    pub cost: u64,
    pub item: T,
}

/// A DRR cost is clamped to this many quanta so a single enormous job
/// can only force a bounded number of catch-up rounds before it runs
/// (progress guarantee: each full lane rotation adds one quantum).
const MAX_COST_QUANTA: u64 = 20;

struct Entry<T> {
    item: T,
    cost: u64,
}

/// One client's lane inside a shard: three priority FIFOs and a
/// deficit counter.
struct Lane<T> {
    client: String,
    deficit: u64,
    by_priority: [VecDeque<Entry<T>>; 3],
}

impl<T> Lane<T> {
    fn new(client: String) -> Self {
        Lane {
            client,
            deficit: 0,
            by_priority: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
        }
    }

    fn head_cost(&self) -> Option<u64> {
        self.by_priority
            .iter()
            .find_map(|q| q.front().map(|e| e.cost))
    }

    fn pop_head(&mut self) -> Option<Entry<T>> {
        self.by_priority.iter_mut().find_map(|q| q.pop_front())
    }

    fn is_empty(&self) -> bool {
        self.by_priority.iter().all(|q| q.is_empty())
    }
}

struct ShardState<T> {
    lanes: Vec<Lane<T>>,
    cursor: usize,
    depth: usize,
}

impl<T> ShardState<T> {
    /// The DRR scan: starting at the cursor, serve the first lane whose
    /// deficit covers its head's cost, then yield the turn (one serve
    /// per visit, so equal-cost clients strictly interleave instead of
    /// bursting a quantum's worth). Lanes that can't afford their head
    /// earn a quantum and yield. Costs are clamped at push time, so
    /// this terminates in at most `MAX_COST_QUANTA` full rotations.
    fn take(&mut self, quantum: u64) -> Option<(Entry<T>, String)> {
        if self.depth == 0 {
            return None;
        }
        loop {
            debug_assert!(!self.lanes.is_empty());
            let idx = self.cursor % self.lanes.len();
            let lane = &mut self.lanes[idx];
            match lane.head_cost() {
                Some(cost) if lane.deficit >= cost => {
                    let client = lane.client.clone();
                    let entry = lane.pop_head().expect("head exists");
                    lane.deficit -= cost;
                    self.depth -= 1;
                    if lane.is_empty() {
                        // An idle client keeps no credit: deficits
                        // only accumulate while waiting in line. The
                        // removal shifts the next lane into `idx`.
                        self.lanes.remove(idx);
                        self.cursor = idx;
                    } else {
                        self.cursor = idx + 1;
                    }
                    if self.lanes.is_empty() {
                        self.cursor = 0;
                    } else {
                        self.cursor %= self.lanes.len();
                    }
                    return Some((entry, client));
                }
                Some(_) => {
                    lane.deficit += quantum;
                    self.cursor = (idx + 1) % self.lanes.len();
                }
                None => {
                    self.lanes.remove(idx);
                    if !self.lanes.is_empty() {
                        self.cursor %= self.lanes.len();
                    } else {
                        self.cursor = 0;
                    }
                }
            }
        }
    }

    fn lane_mut(&mut self, client: &str) -> &mut Lane<T> {
        if let Some(i) = self.lanes.iter().position(|l| l.client == client) {
            return &mut self.lanes[i];
        }
        self.lanes.push(Lane::new(client.to_string()));
        self.lanes.last_mut().expect("just pushed")
    }
}

struct FairState<T> {
    shards: Vec<ShardState<T>>,
    total: usize,
    per_client: HashMap<String, usize>,
    draining: bool,
}

/// A sharded, client-fair, priority-aware bounded queue.
///
/// The global `bound` caps total queued items (all shards together);
/// `client_quota` (0 = unlimited) caps any one client's share of it.
/// Workers pin to a shard and call [`pop`](FairQueue::pop) with it;
/// each shard has its own condvar so a push only wakes workers that
/// can actually serve it.
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    available: Vec<Condvar>,
    bound: usize,
    client_quota: usize,
    quantum: u64,
}

impl<T> FairQueue<T> {
    /// Creates a queue with `shards` worker shards (clamped ≥ 1),
    /// holding at most `bound` items total (clamped ≥ 1). `quantum`
    /// is the DRR refill per lane per rotation, in the same unit as
    /// admission costs (simulated refs).
    pub fn new(shards: usize, bound: usize, client_quota: usize, quantum: u64) -> Self {
        let shards = shards.max(1);
        FairQueue {
            state: Mutex::new(FairState {
                shards: (0..shards)
                    .map(|_| ShardState {
                        lanes: Vec::new(),
                        cursor: 0,
                        depth: 0,
                    })
                    .collect(),
                total: 0,
                per_client: HashMap::new(),
                draining: false,
            }),
            available: (0..shards).map(|_| Condvar::new()).collect(),
            bound: bound.max(1),
            client_quota,
            quantum: quantum.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FairState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured global capacity.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.available.len()
    }

    /// The per-client quota (0 = unlimited).
    pub fn client_quota(&self) -> usize {
        self.client_quota
    }

    /// Items currently queued across all shards.
    pub fn depth(&self) -> usize {
        self.lock().total
    }

    /// Items currently queued for one client.
    pub fn client_depth(&self, client: &str) -> usize {
        self.lock().per_client.get(client).copied().unwrap_or(0)
    }

    /// Whether the queue has stopped accepting new items.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    fn clamp_cost(&self, cost: u64) -> u64 {
        cost.clamp(1, self.quantum.saturating_mul(MAX_COST_QUANTA))
    }

    /// Enqueues without blocking. Returns the total depth after the
    /// push, or hands the admission back with the refusal reason.
    pub fn try_push(&self, adm: Admission<T>) -> Result<usize, FairPushError<Admission<T>>> {
        let shard_idx = adm.shard % self.shard_count();
        let mut state = self.lock();
        if state.draining {
            return Err(FairPushError::Draining(adm));
        }
        if state.total >= self.bound {
            return Err(FairPushError::Full(adm));
        }
        let queued = state.per_client.get(&adm.client).copied().unwrap_or(0);
        if self.client_quota > 0 && queued >= self.client_quota {
            return Err(FairPushError::ClientQuota { item: adm, queued });
        }
        let cost = self.clamp_cost(adm.cost);
        *state.per_client.entry(adm.client.clone()).or_insert(0) += 1;
        state.total += 1;
        let shard = &mut state.shards[shard_idx];
        shard.depth += 1;
        shard.lane_mut(&adm.client).by_priority[adm.priority.lane()].push_back(Entry {
            item: adm.item,
            cost,
        });
        let depth = state.total;
        drop(state);
        self.available[shard_idx].notify_one();
        Ok(depth)
    }

    /// Enqueues a batch atomically: either every admission lands (in
    /// order, possibly across different shards) or none does and the
    /// whole batch comes back — the scenario matrix's all-or-nothing
    /// contract, preserved across sharding. Quotas are checked against
    /// the batch's own tallies too: a 10-cell scenario from a client
    /// with 4 quota slots left is refused whole.
    pub fn try_push_many(
        &self,
        admissions: Vec<Admission<T>>,
    ) -> Result<usize, FairPushError<Vec<Admission<T>>>> {
        let mut state = self.lock();
        if state.draining {
            return Err(FairPushError::Draining(admissions));
        }
        if state.total + admissions.len() > self.bound {
            return Err(FairPushError::Full(admissions));
        }
        if self.client_quota > 0 {
            let mut tally: HashMap<&str, usize> = HashMap::new();
            for adm in &admissions {
                *tally.entry(adm.client.as_str()).or_insert(0) += 1;
            }
            for (client, extra) in tally {
                let queued = state.per_client.get(client).copied().unwrap_or(0);
                if queued + extra > self.client_quota {
                    return Err(FairPushError::ClientQuota {
                        item: admissions,
                        queued,
                    });
                }
            }
        }
        let mut notified: Vec<usize> = vec![0; self.shard_count()];
        for adm in admissions {
            let shard_idx = adm.shard % self.shard_count();
            let cost = self.clamp_cost(adm.cost);
            *state.per_client.entry(adm.client.clone()).or_insert(0) += 1;
            state.total += 1;
            let shard = &mut state.shards[shard_idx];
            shard.depth += 1;
            shard.lane_mut(&adm.client).by_priority[adm.priority.lane()].push_back(Entry {
                item: adm.item,
                cost,
            });
            notified[shard_idx] += 1;
        }
        let depth = state.total;
        drop(state);
        for (shard_idx, n) in notified.into_iter().enumerate() {
            for _ in 0..n {
                self.available[shard_idx].notify_one();
            }
        }
        Ok(depth)
    }

    /// Dequeues from one shard, blocking until an item is available
    /// there. Returns `None` once the queue is draining and the shard
    /// is empty — the pinned worker's exit condition.
    pub fn pop(&self, shard: usize) -> Option<T> {
        let shard_idx = shard % self.shard_count();
        let mut state = self.lock();
        loop {
            if let Some((entry, client)) = state.shards[shard_idx].take(self.quantum) {
                state.total -= 1;
                match state.per_client.get_mut(&client) {
                    Some(n) if *n > 1 => *n -= 1,
                    _ => {
                        state.per_client.remove(&client);
                    }
                }
                return Some(entry.item);
            }
            if state.draining {
                return None;
            }
            state = self.available[shard_idx]
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting new items and wakes every blocked
    /// [`pop`](FairQueue::pop) so pinned workers can finish their
    /// shard's backlog and exit.
    pub fn drain(&self) {
        self.lock().draining = true;
        for cv in &self.available {
            cv.notify_all();
        }
    }
}

/// Derives an honest `Retry-After` from what the server actually
/// knows: how much work is queued ahead and how fast workers have
/// been draining it. A constant "1" tells a shedding client to hammer
/// a queue that may need a minute to clear; this tells it when a slot
/// is *plausibly* free.
///
/// Bounds (pinned by test): never below 1 s (HTTP-sane minimum, and
/// an empty queue that still refused you is a transient), never above
/// 60 s (past that the estimate is noise and clients should just
/// re-probe), and 60 s when the drain rate is unknown or zero (no
/// workers / none finished yet — the pessimistic honest answer).
pub fn retry_after_secs(queue_depth: usize, drain_per_sec: f64) -> u64 {
    if queue_depth == 0 {
        return 1;
    }
    // NaN and non-positive rates both mean "drain rate unknown".
    if drain_per_sec.is_nan() || drain_per_sec <= 0.0 {
        return 60;
    }
    let secs = (queue_depth as f64 / drain_per_sec).ceil() as u64;
    secs.clamp(1, 60)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_til_full_then_shed() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
    }

    #[test]
    fn drain_refuses_new_work_and_releases_poppers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push(7).unwrap();
        q.drain();
        assert_eq!(q.try_push(8), Err(PushError::Draining(8)));
        // The backlog still drains...
        assert_eq!(q.pop(), Some(7));
        // ...and an empty draining queue releases immediately.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_drain() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the waiter time to block, then drain: it must return None.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn batch_push_is_all_or_nothing() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        // Three more would overflow: the whole batch bounces back.
        assert_eq!(
            q.try_push_many(vec![2, 3, 4]),
            Err(PushError::Full(vec![2, 3, 4]))
        );
        assert_eq!(q.depth(), 1);
        // Two fit exactly, in order.
        assert_eq!(q.try_push_many(vec![2, 3]), Ok(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        // Draining refuses batches wholesale.
        q.drain();
        assert_eq!(q.try_push_many(vec![9]), Err(PushError::Draining(vec![9])));
    }

    #[test]
    fn zero_bound_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.bound(), 1);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    fn adm(client: &str, item: u32) -> Admission<u32> {
        Admission {
            shard: 0,
            client: client.into(),
            priority: Priority::Normal,
            cost: 1,
            item,
        }
    }

    #[test]
    fn fair_single_client_is_fifo() {
        let q = FairQueue::new(1, 8, 0, 100);
        for i in 0..4 {
            q.try_push(adm("a", i)).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(0), Some(i));
        }
        assert_eq!(q.depth(), 0);
        assert_eq!(q.client_depth("a"), 0);
    }

    #[test]
    fn priority_orders_within_a_client_lane() {
        let q = FairQueue::new(1, 8, 0, 100);
        q.try_push(Admission {
            priority: Priority::Low,
            ..adm("a", 1)
        })
        .unwrap();
        q.try_push(Admission {
            priority: Priority::Normal,
            ..adm("a", 2)
        })
        .unwrap();
        q.try_push(Admission {
            priority: Priority::High,
            ..adm("a", 3)
        })
        .unwrap();
        assert_eq!(q.pop(0), Some(3));
        assert_eq!(q.pop(0), Some(2));
        assert_eq!(q.pop(0), Some(1));
    }

    #[test]
    fn drr_interleaves_a_greedy_backlog_with_a_polite_client() {
        let q = FairQueue::new(1, 32, 0, 100);
        // Greedy floods 10 items before polite submits 2; equal costs.
        for i in 0..10 {
            q.try_push(adm("greedy", i)).unwrap();
        }
        q.try_push(adm("polite", 100)).unwrap();
        q.try_push(adm("polite", 101)).unwrap();
        let order: Vec<u32> = (0..12).map(|_| q.pop(0).unwrap()).collect();
        // Round-robin at equal cost: polite's items surface within the
        // first few pops instead of queuing behind greedy's backlog.
        let p0 = order.iter().position(|&x| x == 100).unwrap();
        let p1 = order.iter().position(|&x| x == 101).unwrap();
        assert!(p0 < 3, "polite's first item came out at {p0}: {order:?}");
        assert!(p1 < 5, "polite's second item came out at {p1}: {order:?}");
    }

    #[test]
    fn drr_bills_big_jobs_proportionally() {
        let q = FairQueue::new(1, 32, 0, 100);
        // Greedy's items each cost 3 quanta; polite's cost a fraction
        // of one. Greedy gets one serving per ~3 rotations while
        // polite drains every rotation.
        for i in 0..3 {
            q.try_push(Admission {
                cost: 300,
                ..adm("greedy", i)
            })
            .unwrap();
        }
        for i in 0..3 {
            q.try_push(Admission {
                cost: 10,
                ..adm("polite", 100 + i)
            })
            .unwrap();
        }
        let order: Vec<u32> = (0..6).map(|_| q.pop(0).unwrap()).collect();
        let last_polite = order.iter().rposition(|&x| x >= 100).unwrap();
        let first_greedy = order.iter().position(|&x| x < 100).unwrap();
        assert!(
            last_polite < 4 && first_greedy >= 1,
            "cheap jobs should clear before the expensive backlog: {order:?}"
        );
    }

    #[test]
    fn client_quota_refuses_only_the_offender() {
        let q = FairQueue::new(1, 8, 2, 100);
        q.try_push(adm("greedy", 1)).unwrap();
        q.try_push(adm("greedy", 2)).unwrap();
        match q.try_push(adm("greedy", 3)) {
            Err(FairPushError::ClientQuota { queued, .. }) => assert_eq!(queued, 2),
            other => panic!("expected ClientQuota, got {other:?}"),
        }
        // The queue itself has room: another client sails through.
        q.try_push(adm("polite", 4)).unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(q.client_depth("greedy"), 2);
        assert_eq!(q.client_depth("polite"), 1);
        // Draining the offender frees its quota.
        q.pop(0);
        q.try_push(adm("greedy", 5)).unwrap();
    }

    #[test]
    fn fair_global_bound_and_drain() {
        let q = FairQueue::new(2, 2, 0, 100);
        q.try_push(adm("a", 1)).unwrap();
        q.try_push(Admission {
            shard: 1,
            ..adm("b", 2)
        })
        .unwrap();
        assert!(matches!(
            q.try_push(adm("c", 3)),
            Err(FairPushError::Full(_))
        ));
        q.drain();
        assert!(matches!(
            q.try_push(adm("c", 3)),
            Err(FairPushError::Draining(_))
        ));
        // Backlogs still drain per shard, then pinned pops release.
        assert_eq!(q.pop(0), Some(1));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), Some(2));
        assert_eq!(q.pop(1), None);
    }

    #[test]
    fn fair_batch_push_is_all_or_nothing_across_shards() {
        let q = FairQueue::new(2, 3, 0, 100);
        q.try_push(adm("a", 1)).unwrap();
        let batch = vec![
            Admission {
                shard: 0,
                ..adm("b", 2)
            },
            Admission {
                shard: 1,
                ..adm("b", 3)
            },
            Admission {
                shard: 1,
                ..adm("b", 4)
            },
        ];
        // Three more would overflow the global bound of 3.
        assert!(matches!(
            q.try_push_many(batch),
            Err(FairPushError::Full(v)) if v.len() == 3
        ));
        assert_eq!(q.depth(), 1);
        let batch = vec![
            Admission {
                shard: 0,
                ..adm("b", 2)
            },
            Admission {
                shard: 1,
                ..adm("b", 3)
            },
        ];
        assert_eq!(q.try_push_many(batch), Ok(3));
        assert_eq!(q.pop(1), Some(3));
    }

    #[test]
    fn fair_batch_quota_counts_the_whole_batch() {
        let q = FairQueue::new(1, 16, 3, 100);
        q.try_push(adm("a", 1)).unwrap();
        q.try_push(adm("a", 2)).unwrap();
        // Two more would put "a" at 4 > quota 3: refused whole.
        let batch = vec![adm("a", 3), adm("a", 4)];
        assert!(matches!(
            q.try_push_many(batch),
            Err(FairPushError::ClientQuota { queued: 2, .. })
        ));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn blocked_fair_pop_wakes_on_push_and_on_drain() {
        let q: Arc<FairQueue<u32>> = Arc::new(FairQueue::new(2, 8, 0, 100));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(Admission {
            shard: 1,
            ..adm("a", 7)
        })
        .unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));

        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(0))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.drain();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn oversized_costs_are_clamped_so_pops_terminate() {
        let q = FairQueue::new(1, 4, 0, 10);
        // Cost astronomically above quantum * MAX_COST_QUANTA: without
        // the clamp the DRR scan would spin for u64::MAX/10 rotations.
        q.try_push(Admission {
            cost: u64::MAX,
            ..adm("a", 1)
        })
        .unwrap();
        assert_eq!(q.pop(0), Some(1));
    }

    #[test]
    fn retry_after_tracks_depth_over_drain_rate_within_bounds() {
        // Empty queue: refusal was transient, retry immediately-ish.
        assert_eq!(retry_after_secs(0, 5.0), 1);
        // No drain signal (zero/NaN rate): pessimistic cap.
        assert_eq!(retry_after_secs(10, 0.0), 60);
        assert_eq!(retry_after_secs(10, -1.0), 60);
        assert_eq!(retry_after_secs(10, f64::NAN), 60);
        // The honest middle: ceil(depth / rate).
        assert_eq!(retry_after_secs(10, 2.0), 5);
        assert_eq!(retry_after_secs(3, 2.0), 2);
        // Clamped to [1, 60] at the extremes.
        assert_eq!(retry_after_secs(1, 1000.0), 1);
        assert_eq!(retry_after_secs(100_000, 0.5), 60);
    }
}
