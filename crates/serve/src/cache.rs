//! The bounded results cache: byte-identical replays for free.
//!
//! Every served job is deterministic and stable-keyed (the invariant
//! PRs 1–8 built), so a completed artifact *is* the answer to every
//! future submission with the same full-spec identity — re-simulating
//! it would burn worker time to produce the same bytes. The cache maps
//! `JobSpec::identity()` → the exact artifact JSON the leader run
//! persisted, evicting least-recently-used entries at `--cache-entries`
//! capacity. Only successful single-job runs are cached: failures must
//! re-run (the fault may have been chaos), and scenario cells carry
//! matrix context that isn't identity-addressable.
//!
//! Counters live here (not in the metrics registry) so a cache and its
//! accounting can never drift: every `get` is exactly one hit or one
//! miss, every capacity overflow is one eviction.

use std::collections::HashMap;

/// A cached completed run: everything `job_result` and `job_status`
/// need to answer without touching a worker.
#[derive(Debug, Clone)]
pub struct CachedResult {
    /// The harness key (`table_4_1/SLC/5MB/MISS`) — kept for the
    /// status body and the experiment label.
    pub key: String,
    /// The experiment family, a static label for metrics.
    pub experiment: &'static str,
    /// The artifact JSON, byte-identical to the leader's persisted
    /// file.
    pub artifact: String,
    /// The leader run's wall time, reported verbatim so a cache hit's
    /// status is honest about what the simulation cost.
    pub wall_ms: u64,
}

/// A fixed-capacity LRU map from full-spec identity to artifact.
///
/// Plain `HashMap` + recency `VecDeque` of identities: capacities are
/// small (hundreds), so the O(n) recency splice on hit is noise next
/// to the simulation it saves. Capacity 0 disables caching entirely —
/// every lookup is a miss and nothing is stored.
pub struct ResultsCache {
    entries: HashMap<String, CachedResult>,
    /// Identities from least- to most-recently used.
    order: std::collections::VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultsCache {
    pub fn new(capacity: usize) -> Self {
        ResultsCache {
            entries: HashMap::new(),
            order: std::collections::VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up an identity, counting a hit (and refreshing recency)
    /// or a miss.
    pub fn get(&mut self, identity: &str) -> Option<CachedResult> {
        match self.entries.get(identity) {
            Some(found) => {
                let found = found.clone();
                self.hits += 1;
                if let Some(pos) = self.order.iter().position(|k| k == identity) {
                    self.order.remove(pos);
                }
                self.order.push_back(identity.to_string());
                Some(found)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a completed result, evicting the least-recently-used
    /// entry if at capacity. Re-inserting an existing identity (two
    /// leaders can race across instances) refreshes value and recency
    /// without an eviction. Returns `true` when an entry was evicted.
    pub fn insert(&mut self, identity: String, result: CachedResult) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut evicted = false;
        if self.entries.insert(identity.clone(), result).is_some() {
            if let Some(pos) = self.order.iter().position(|k| *k == identity) {
                self.order.remove(pos);
            }
        } else if self.entries.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
                self.evictions += 1;
                evicted = true;
            }
        }
        self.order.push_back(identity);
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: &str) -> CachedResult {
        CachedResult {
            key: format!("key/{tag}"),
            experiment: "refbit",
            artifact: format!("{{\"artifact\":\"{tag}\"}}"),
            wall_ms: 7,
        }
    }

    #[test]
    fn hit_returns_the_stored_bytes_and_counts() {
        let mut c = ResultsCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), result("a"));
        let hit = c.get("a").unwrap();
        assert_eq!(hit.artifact, "{\"artifact\":\"a\"}");
        assert_eq!(hit.key, "key/a");
        assert_eq!((c.hits(), c.misses(), c.evictions()), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used_in_order() {
        let mut c = ResultsCache::new(2);
        c.insert("a".into(), result("a"));
        c.insert("b".into(), result("b"));
        // Touch "a" so "b" becomes the LRU victim.
        c.get("a").unwrap();
        c.insert("c".into(), result("c"));
        assert!(c.get("b").is_none(), "b was least recently used");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.evictions(), 1);
        // Next insert evicts "a" (touched before c was inserted, but
        // the gets above refreshed both a and c — oldest is now a).
        c.insert("d".into(), result("d"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn reinserting_refreshes_without_eviction() {
        let mut c = ResultsCache::new(2);
        c.insert("a".into(), result("a"));
        c.insert("b".into(), result("b"));
        c.insert("a".into(), result("a2"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get("a").unwrap().artifact, "{\"artifact\":\"a2\"}");
        // "b" is now the LRU.
        c.insert("c".into(), result("c"));
        assert!(c.get("b").is_none());
    }

    #[test]
    fn zero_capacity_disables_storage_but_still_counts_misses() {
        let mut c = ResultsCache::new(0);
        c.insert("a".into(), result("a"));
        assert!(c.is_empty());
        assert!(c.get("a").is_none());
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }
}
