//! The job-submission API: JSON bodies in, keyed harness jobs out.
//!
//! A submission describes one experiment cell with the same vocabulary
//! the CLI regenerators use, and compiles to a [`Job`] built by the
//! *same* builders in `spur_core::jobs` under the *same* key scheme
//! `reproduce_all` uses (`table_4_1/SLC/5MB/MISS`, …). That shared
//! construction is the whole determinism story: a job submitted over
//! HTTP produces artifact bytes identical to the batch sweep's.
//!
//! ```json
//! {
//!   "experiment": "refbit",
//!   "workload": "SLC",
//!   "mem_mb": 5,
//!   "policy": "MISS",
//!   "scale": {"refs": 30000, "seed": 1989, "reps": 1},
//!   "obs": {"epoch": 10000},
//!   "overrides": {"daemon_period": 1000}
//! }
//! ```
//!
//! `workload` names a builtin (`SLC`, `WORKLOAD1`); `workload_spec`
//! instead carries a full workload-spec text (the `spur-trace::spec`
//! format) for custom workloads. `scale` is a preset name (`quick`,
//! `default`, `full`) or an object. Everything but `experiment`,
//! `workload`/`workload_spec`, and `mem_mb` is optional.

use spur_core::experiments::Scale;
use spur_core::jobs::{events_job_for, refbit_job_for};
use spur_core::obs::ObsParams;
use spur_core::system::SimOverrides;
use spur_harness::{Job, Json};
use spur_obs::validate::{get_field, parse};
use spur_trace::spec::{format_workload, parse_workload};
use spur_trace::workloads::{slc, workload1, Workload};
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

use crate::queue::Priority;

/// Guardrail on `scale.refs`: one served job may be big, but not
/// "typo'd an extra three zeros" big.
pub const MAX_REFS: u64 = 100_000_000;

/// Guardrail on `scale.reps`.
pub const MAX_REPS: u32 = 16;

/// Largest accepted `mem_mb` (the paper's machines top out at 16 MB;
/// 4 GB is beyond any sensible cell).
pub const MAX_MEM_MB: u64 = 4096;

/// Guardrail on the mp cell's sharing degree.
pub const MAX_SHARED_PAGES: u64 = 8192;

/// Which experiment family a submission runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// A Table 4.1 cell (reference-bit policy evaluation).
    Refbit(RefPolicy),
    /// A Table 3.3 cell (event frequencies).
    Events,
    /// A measured multiprocessor cell (`spur-mp` sweep). The workload
    /// and memory size are derived from the cell parameters, exactly
    /// as `reproduce_mp` derives them.
    Mp {
        policy: RefPolicy,
        cpus: usize,
        shared_pages: u64,
    },
}

/// A validated submission, ready to compile into a keyed [`Job`].
#[derive(Debug)]
pub struct JobSpec {
    kind: Kind,
    workload: Workload,
    mem: MemSize,
    scale: Scale,
    obs: Option<ObsParams>,
    overrides: SimOverrides,
    priority: Priority,
}

impl JobSpec {
    /// The experiment family name, used as the `experiment` label on
    /// span-derived Prometheus histograms (a closed, static set so
    /// label cardinality stays bounded).
    pub fn experiment(&self) -> &'static str {
        match self.kind {
            Kind::Refbit(_) => "refbit",
            Kind::Events => "events",
            Kind::Mp { .. } => "mp",
        }
    }

    /// The job's stable key, identical to the CLI sweep's for the same
    /// cell.
    pub fn key(&self) -> String {
        let name = self.workload.name();
        let mb = self.mem.megabytes();
        match self.kind {
            Kind::Refbit(policy) => format!("table_4_1/{name}/{mb}MB/{policy}"),
            Kind::Events => format!("table_3_3/{name}/{mb}MB"),
            Kind::Mp {
                policy,
                cpus,
                shared_pages,
            } => spur_mp::mp_key(cpus, shared_pages, policy),
        }
    }

    /// The submission's priority lane (`"priority"` field, default
    /// normal).
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The deficit-round-robin cost of running this cell: simulated
    /// references across repetitions, the one knob that scales run
    /// time. A greedy client submitting huge cells burns its deficit
    /// proportionally faster than one submitting quick cells.
    pub fn cost(&self) -> u64 {
        self.scale.refs.saturating_mul(u64::from(self.scale.reps))
    }

    /// The canonical *full-spec* identity, the unit of coalescing,
    /// caching, and peer routing.
    ///
    /// The harness key (`table_4_1/SLC/5MB/MISS`) deliberately omits
    /// scale, seed, observability, and overrides — two submissions with
    /// the same key can still demand different simulations. Everything
    /// that changes the produced artifact byte-for-byte is folded in
    /// here, so two equal identities are interchangeable results by
    /// construction. Custom workload text enters as a hash: identity
    /// strings stay short and never embed user payloads.
    pub fn identity(&self) -> String {
        let s = &self.scale;
        format!(
            "{}|wl={:016x}|refs={},seed={},reps={},dev={}|obs={:?}|ov={:?}",
            self.key(),
            fnv1a(format_workload(&self.workload).as_bytes()),
            s.refs,
            s.seed,
            s.reps,
            s.dev_refs_per_hour,
            self.obs,
            self.overrides,
        )
    }

    /// Compiles the spec into a harness job via the shared builders.
    /// The typed row is erased — the service only persists artifacts.
    pub fn build(self) -> Job<()> {
        let key = self.key();
        let workload = self.workload;
        match self.kind {
            Kind::Refbit(policy) => refbit_job_for(
                key,
                move || workload,
                self.mem,
                policy,
                self.scale,
                self.obs,
                self.overrides,
            )
            .map(|_| ()),
            Kind::Events => events_job_for(
                key,
                move || workload,
                self.mem,
                self.scale,
                self.obs,
                self.overrides,
            )
            .map(|_| ()),
            Kind::Mp {
                policy,
                cpus,
                shared_pages,
            } => spur_mp::mp_job(key, cpus, policy, shared_pages, self.scale, self.obs).map(|_| ()),
        }
    }
}

/// Parses and validates a submission body. Every failure is a
/// caller-readable message destined for a 400 response.
pub fn parse_job_spec(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = parse(text).map_err(|e| format!("body is not valid JSON: {e:?}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("body must be a JSON object".into());
    }

    let kind = match require_str(&doc, "experiment")? {
        "refbit" => {
            let policy = match get_field(&doc, "policy") {
                None => RefPolicy::Miss,
                Some(v) => as_str(v, "policy")?
                    .parse::<RefPolicy>()
                    .map_err(|e| e.to_string())?,
            };
            Kind::Refbit(policy)
        }
        "events" => Kind::Events,
        "mp" => {
            let policy = match get_field(&doc, "policy") {
                None => RefPolicy::Miss,
                Some(v) => as_str(v, "policy")?
                    .parse::<RefPolicy>()
                    .map_err(|e| e.to_string())?,
            };
            let cpus = opt_u64(&doc, "cpus")?.unwrap_or(2);
            if cpus == 0 || cpus > 12 {
                return Err(format!("cpus must be in 1..=12, got {cpus}"));
            }
            let shared_pages = opt_u64(&doc, "shared_pages")?.unwrap_or(256);
            if shared_pages == 0 || shared_pages > MAX_SHARED_PAGES {
                return Err(format!(
                    "shared_pages must be in 1..={MAX_SHARED_PAGES}, got {shared_pages}"
                ));
            }
            Kind::Mp {
                policy,
                cpus: cpus as usize,
                shared_pages,
            }
        }
        other => {
            return Err(format!(
                "unknown experiment {other:?} (expected refbit|events|mp)"
            ))
        }
    };

    let scale = parse_scale(&doc)?;
    let obs = parse_obs(&doc)?;
    let priority = parse_priority(&doc)?;

    if let Kind::Mp {
        cpus, shared_pages, ..
    } = kind
    {
        // The mp cell derives its workload (`mp_workers`) and memory
        // size itself, exactly as `reproduce_mp` does — accepting a
        // workload here would break the shared-key determinism story.
        for field in ["workload", "workload_spec", "mem_mb", "overrides"] {
            if get_field(&doc, field).is_some() {
                return Err(format!("{field} is not accepted for experiment \"mp\""));
            }
        }
        return Ok(JobSpec {
            kind,
            workload: spur_trace::workloads::mp_workers(cpus, shared_pages),
            mem: MemSize::MB8,
            scale,
            obs,
            overrides: SimOverrides::default(),
            priority,
        });
    }

    let workload = parse_workload_field(&doc)?;

    let mem_mb = require_u64(&doc, "mem_mb")?;
    if mem_mb == 0 || mem_mb > MAX_MEM_MB {
        return Err(format!("mem_mb must be in 1..={MAX_MEM_MB}, got {mem_mb}"));
    }
    let mem = MemSize::new(mem_mb as u32);

    let overrides = parse_overrides(&doc)?;

    Ok(JobSpec {
        kind,
        workload,
        mem,
        scale,
        obs,
        overrides,
        priority,
    })
}

fn parse_priority(doc: &Json) -> Result<Priority, String> {
    match get_field(doc, "priority") {
        None => Ok(Priority::Normal),
        Some(v) => match as_str(v, "priority")? {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!(
                "unknown priority {other:?} (expected high|normal|low)"
            )),
        },
    }
}

/// FNV-1a 64, the same tiny non-cryptographic hash the fault plan
/// uses: enough to fold arbitrary workload text into a fixed-width
/// identity component.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_workload_field(doc: &Json) -> Result<Workload, String> {
    match (get_field(doc, "workload"), get_field(doc, "workload_spec")) {
        (Some(_), Some(_)) => Err("give either workload or workload_spec, not both".into()),
        (Some(v), None) => match as_str(v, "workload")?.to_ascii_uppercase().as_str() {
            "SLC" => Ok(slc()),
            "WORKLOAD1" => Ok(workload1()),
            other => Err(format!(
                "unknown workload {other:?} (expected SLC|WORKLOAD1; use workload_spec for custom workloads)"
            )),
        },
        (None, Some(v)) => {
            let text = as_str(v, "workload_spec")?;
            parse_workload(text).map_err(|e| format!("bad workload_spec: {e}"))
        }
        (None, None) => Err("missing workload (or workload_spec)".into()),
    }
}

fn parse_scale(doc: &Json) -> Result<Scale, String> {
    let Some(value) = get_field(doc, "scale") else {
        return Ok(Scale::quick());
    };
    let mut scale = match value {
        Json::Str(preset) => {
            return match preset.as_str() {
                "quick" => Ok(Scale::quick()),
                "default" => Ok(Scale::default_scale()),
                "full" => Ok(Scale::full()),
                other => Err(format!(
                    "unknown scale preset {other:?} (expected quick|default|full)"
                )),
            }
        }
        Json::Obj(_) => Scale::quick(),
        _ => return Err("scale must be a preset name or an object".into()),
    };
    if let Some(refs) = opt_u64(value, "refs")? {
        if refs == 0 || refs > MAX_REFS {
            return Err(format!("scale.refs must be in 1..={MAX_REFS}, got {refs}"));
        }
        scale.refs = refs;
    }
    if let Some(seed) = opt_u64(value, "seed")? {
        scale.seed = seed;
    }
    if let Some(reps) = opt_u64(value, "reps")? {
        if reps == 0 || reps > MAX_REPS as u64 {
            return Err(format!("scale.reps must be in 1..={MAX_REPS}, got {reps}"));
        }
        scale.reps = reps as u32;
    }
    if let Some(per_hour) = opt_u64(value, "dev_refs_per_hour")? {
        if per_hour == 0 {
            return Err("scale.dev_refs_per_hour must be positive".into());
        }
        scale.dev_refs_per_hour = per_hour;
    }
    Ok(scale)
}

fn parse_obs(doc: &Json) -> Result<Option<ObsParams>, String> {
    match get_field(doc, "obs") {
        // Observability is on by default: a service without metrics on
        // its own jobs would be a poor advertisement for the obs layer.
        None => Ok(Some(ObsParams::default())),
        Some(Json::Bool(false)) => Ok(None),
        Some(Json::Bool(true)) => Ok(Some(ObsParams::default())),
        Some(v @ Json::Obj(_)) => {
            let mut params = ObsParams::default();
            if let Some(epoch) = opt_u64(v, "epoch")? {
                if epoch == 0 {
                    return Err("obs.epoch must be positive".into());
                }
                params.epoch = Some(epoch);
            }
            Ok(Some(params))
        }
        Some(_) => Err("obs must be a bool or an object".into()),
    }
}

fn parse_overrides(doc: &Json) -> Result<SimOverrides, String> {
    let Some(value) = get_field(doc, "overrides") else {
        return Ok(SimOverrides::default());
    };
    if !matches!(value, Json::Obj(_)) {
        return Err("overrides must be an object".into());
    }
    let mut ov = SimOverrides::default();
    if let Some(cpus) = opt_u64(value, "cpus")? {
        if cpus == 0 {
            return Err("overrides.cpus must be positive".into());
        }
        ov.cpus = Some(cpus as usize);
    }
    if let Some(v) = get_field(value, "soft_faults") {
        match v {
            Json::Bool(b) => ov.soft_faults = Some(*b),
            _ => return Err("overrides.soft_faults must be a bool".into()),
        }
    }
    if let Some(v) = get_field(value, "daemon_period") {
        match v {
            // An explicit null forces the periodic daemon *off*,
            // distinct from "don't override".
            Json::Null => ov.daemon_period = Some(None),
            _ => {
                let period = as_u64(v, "overrides.daemon_period")?;
                if period == 0 {
                    return Err("overrides.daemon_period must be positive or null".into());
                }
                ov.daemon_period = Some(Some(period));
            }
        }
    }
    if let Some(frames) = opt_u64(value, "kernel_reserved_frames")? {
        ov.kernel_reserved_frames = Some(frames as u32);
    }
    if let Some(low) = opt_u64(value, "free_low_water")? {
        ov.free_low_water = Some(low as u32);
    }
    if let Some(high) = opt_u64(value, "free_high_water")? {
        ov.free_high_water = Some(high as u32);
    }
    Ok(ov)
}

fn as_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, String> {
    match v {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{what} must be a string")),
    }
}

fn as_u64(v: &Json, what: &str) -> Result<u64, String> {
    match v {
        Json::UInt(u) => Ok(*u),
        Json::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    get_field(doc, key)
        .ok_or_else(|| format!("missing {key}"))
        .and_then(|v| as_str(v, key))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    get_field(doc, key)
        .ok_or_else(|| format!("missing {key}"))
        .and_then(|v| as_u64(v, key))
}

fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    get_field(doc, key).map(|v| as_u64(v, key)).transpose()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spur_harness::{job_artifact_json, run_one};
    use spur_trace::spec::format_workload;

    fn spec(body: &str) -> Result<JobSpec, String> {
        parse_job_spec(body.as_bytes())
    }

    #[test]
    fn minimal_refbit_submission_gets_cli_key_and_defaults() {
        let s = spec(r#"{"experiment":"refbit","workload":"slc","mem_mb":5}"#).unwrap();
        assert_eq!(s.key(), "table_4_1/SLC/5MB/MISS");
        assert_eq!(s.scale, Scale::quick());
        assert_eq!(s.obs, Some(ObsParams::default()));
        assert!(s.overrides.is_noop());
    }

    #[test]
    fn events_key_matches_the_sweep_scheme() {
        let s = spec(r#"{"experiment":"events","workload":"WORKLOAD1","mem_mb":8}"#).unwrap();
        assert_eq!(s.key(), "table_3_3/WORKLOAD1/8MB");
    }

    #[test]
    fn full_submission_round_trips_every_knob() {
        let s = spec(
            r#"{
              "experiment": "refbit", "workload": "SLC", "mem_mb": 6,
              "policy": "noref",
              "scale": {"refs": 30000, "seed": 7, "reps": 2},
              "obs": {"epoch": 5000},
              "overrides": {"daemon_period": 1000, "soft_faults": false}
            }"#,
        )
        .unwrap();
        assert_eq!(s.key(), "table_4_1/SLC/6MB/NOREF");
        assert_eq!(s.scale.refs, 30000);
        assert_eq!(s.scale.seed, 7);
        assert_eq!(s.scale.reps, 2);
        assert_eq!(s.obs.unwrap().epoch, Some(5000));
        assert_eq!(s.overrides.daemon_period, Some(Some(1000)));
        assert_eq!(s.overrides.soft_faults, Some(false));
    }

    #[test]
    fn custom_workloads_arrive_as_spec_text() {
        let text = format_workload(&slc());
        let body = Json::object([
            ("experiment", Json::Str("events".into())),
            ("workload_spec", Json::Str(text)),
            ("mem_mb", Json::UInt(5)),
        ])
        .encode();
        let s = parse_job_spec(body.as_bytes()).unwrap();
        assert_eq!(s.key(), "table_3_3/SLC/5MB");
    }

    #[test]
    fn minimal_mp_submission_gets_sweep_key_and_defaults() {
        let s = spec(r#"{"experiment":"mp"}"#).unwrap();
        assert_eq!(s.key(), "mp/02cpu/0256sh/MISS");
        assert_eq!(s.scale, Scale::quick());
    }

    #[test]
    fn full_mp_submission_round_trips() {
        let s = spec(
            r#"{"experiment":"mp","policy":"ref","cpus":4,"shared_pages":1024,
                "scale":{"refs":30000},"obs":false}"#,
        )
        .unwrap();
        assert_eq!(s.key(), "mp/04cpu/1024sh/REF");
        assert_eq!(s.scale.refs, 30000);
        assert!(s.obs.is_none());
    }

    #[test]
    fn mp_built_job_matches_the_shared_builder_byte_for_byte() {
        let scale = Scale {
            refs: 30_000,
            seed: 1989,
            reps: 1,
            dev_refs_per_hour: 120_000,
        };
        let s = spec(
            r#"{"experiment":"mp","cpus":2,"shared_pages":256,
                "scale":{"refs":30000,"seed":1989,"reps":1},"obs":false}"#,
        )
        .unwrap();
        let via_api = run_one(s.build());
        let direct = run_one(spur_mp::mp_job(
            "mp/02cpu/0256sh/MISS".into(),
            2,
            RefPolicy::Miss,
            256,
            scale,
            None,
        ));
        assert_eq!(
            job_artifact_json(&via_api).encode_pretty(),
            job_artifact_json(&direct).encode_pretty(),
        );
    }

    #[test]
    fn mp_rejections_are_messages_not_panics() {
        for (body, needle) in [
            (r#"{"experiment":"mp","cpus":0}"#, "cpus must be"),
            (r#"{"experiment":"mp","cpus":13}"#, "cpus must be"),
            (
                r#"{"experiment":"mp","shared_pages":0}"#,
                "shared_pages must be",
            ),
            (
                r#"{"experiment":"mp","shared_pages":100000}"#,
                "shared_pages must be",
            ),
            (
                r#"{"experiment":"mp","workload":"SLC"}"#,
                "not accepted for experiment",
            ),
            (
                r#"{"experiment":"mp","mem_mb":8}"#,
                "not accepted for experiment",
            ),
            (
                r#"{"experiment":"mp","overrides":{"cpus":2}}"#,
                "not accepted for experiment",
            ),
            (r#"{"experiment":"mp","policy":"lru"}"#, "policy"),
        ] {
            let err = spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{body:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn rejections_are_messages_not_panics() {
        for (body, needle) in [
            ("", "not valid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"workload":"SLC","mem_mb":5}"#, "missing experiment"),
            (
                r#"{"experiment":"tlb","workload":"SLC","mem_mb":5}"#,
                "unknown experiment",
            ),
            (r#"{"experiment":"events","mem_mb":5}"#, "missing workload"),
            (
                r#"{"experiment":"events","workload":"BIGCO","mem_mb":5}"#,
                "unknown workload",
            ),
            (
                r#"{"experiment":"events","workload_spec":"not a spec","mem_mb":5}"#,
                "bad workload_spec",
            ),
            (
                r#"{"experiment":"events","workload":"SLC"}"#,
                "missing mem_mb",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":0}"#,
                "mem_mb must be",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":-5}"#,
                "mem_mb must be a non-negative",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":5,"scale":{"refs":0}}"#,
                "scale.refs",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":5,"scale":"huge"}"#,
                "scale preset",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":5,"scale":{"reps":999}}"#,
                "scale.reps",
            ),
            (
                r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"policy":"lru"}"#,
                "policy",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":5,"obs":7}"#,
                "obs must be",
            ),
            (
                r#"{"experiment":"events","workload":"SLC","mem_mb":5,"overrides":{"cpus":0}}"#,
                "cpus",
            ),
        ] {
            let err = spec(body).unwrap_err();
            assert!(
                err.contains(needle),
                "{body:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn priority_parses_with_normal_default() {
        let s = spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5}"#).unwrap();
        assert_eq!(s.priority(), Priority::Normal);
        let s = spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"priority":"high"}"#)
            .unwrap();
        assert_eq!(s.priority(), Priority::High);
        let s = spec(r#"{"experiment":"mp","priority":"low"}"#).unwrap();
        assert_eq!(s.priority(), Priority::Low);
        let err =
            spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"priority":"urgent"}"#)
                .unwrap_err();
        assert!(err.contains("unknown priority"), "{err}");
    }

    #[test]
    fn identity_separates_what_the_harness_key_conflates() {
        // Same harness key, different seed: MUST NOT share an identity,
        // or the cache would serve one seed's artifact for the other.
        let a = spec(
            r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"scale":{"refs":20000,"seed":1}}"#,
        )
        .unwrap();
        let b = spec(
            r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"scale":{"refs":20000,"seed":2}}"#,
        )
        .unwrap();
        assert_eq!(a.key(), b.key());
        assert_ne!(a.identity(), b.identity());

        // Obs and overrides change artifact bytes, so they change
        // identity too.
        let c = spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"obs":false}"#).unwrap();
        let d = spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5}"#).unwrap();
        assert_ne!(c.identity(), d.identity());
        let e = spec(
            r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"overrides":{"daemon_period":500}}"#,
        )
        .unwrap();
        assert_ne!(d.identity(), e.identity());

        // Identical submissions produce identical identities, and
        // priority deliberately does NOT enter: a high-priority
        // duplicate can ride an in-flight normal-priority run.
        let f = spec(r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"priority":"high"}"#)
            .unwrap();
        assert_eq!(d.identity(), f.identity());
    }

    #[test]
    fn cost_scales_with_refs_and_reps() {
        let s = spec(
            r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,"scale":{"refs":30000,"reps":3}}"#,
        )
        .unwrap();
        assert_eq!(s.cost(), 90_000);
    }

    #[test]
    fn built_job_matches_the_shared_builder_byte_for_byte() {
        let scale = Scale {
            refs: 20_000,
            seed: 1989,
            reps: 1,
            dev_refs_per_hour: 120_000,
        };
        let s = spec(
            r#"{"experiment":"refbit","workload":"SLC","mem_mb":5,
                "scale":{"refs":20000,"seed":1989,"reps":1},"obs":false}"#,
        )
        .unwrap();
        let via_api = run_one(s.build());
        let direct = run_one(spur_core::jobs::refbit_job_for(
            "table_4_1/SLC/5MB/MISS".into(),
            slc,
            MemSize::MB5,
            RefPolicy::Miss,
            scale,
            None,
            SimOverrides::default(),
        ));
        assert_eq!(
            job_artifact_json(&via_api).encode_pretty(),
            job_artifact_json(&direct).encode_pretty(),
        );
    }
}
