//! Service-level metrics, exposed at `GET /metrics`.
//!
//! Counters are lock-free atomics bumped on the request path; the two
//! latency [`Histogram`]s (queue wait and job run time) sit behind one
//! mutex touched only at job completion — a few dozen times a second
//! at most, never per HTTP request. Rendering reuses the
//! `spur_obs::prometheus` text-format helpers, so the service and the
//! simulator speak one exposition dialect.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spur_obs::prometheus::{render_counter, render_gauge, render_histogram, render_summary};
use spur_obs::Histogram;

/// Everything the service counts.
#[derive(Debug)]
pub struct ServeMetrics {
    /// HTTP requests accepted for parsing.
    pub http_requests: AtomicU64,
    /// Requests answered 4xx (malformed, unknown route, …).
    pub http_client_errors: AtomicU64,
    /// Jobs accepted onto the queue.
    pub jobs_submitted: AtomicU64,
    /// Submissions shed with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Jobs that ran to a successful completion.
    pub jobs_completed: AtomicU64,
    /// Jobs that ran and failed (error or caught panic).
    pub jobs_failed: AtomicU64,
    /// Panicked job runs that were re-queued for another attempt.
    pub jobs_retried: AtomicU64,
    latency: Mutex<Latency>,
}

#[derive(Debug)]
struct Latency {
    /// Milliseconds from enqueue to worker pickup.
    queue_ms: Histogram,
    /// Milliseconds of job execution (the harness wall clock).
    run_ms: Histogram,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics {
            http_requests: AtomicU64::new(0),
            http_client_errors: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            latency: Mutex::new(Latency {
                queue_ms: Histogram::new("queue_wait_ms"),
                run_ms: Histogram::new("job_run_ms"),
            }),
        }
    }

    /// Records one finished job.
    pub fn observe_job(&self, queue_ms: u64, run_ms: u64, ok: bool) {
        if ok {
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        latency.queue_ms.record(queue_ms);
        latency.run_ms.record(run_ms);
    }

    /// Renders the Prometheus text exposition. `queue_depth` and
    /// `draining` come from the queue, the service's other live gauge.
    pub fn render_prometheus(
        &self,
        queue_depth: usize,
        queue_bound: usize,
        draining: bool,
    ) -> String {
        let mut out = String::with_capacity(2048);
        render_counter(
            &mut out,
            "spur_serve_http_requests_total",
            "HTTP requests accepted for parsing.",
            self.http_requests.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_http_client_errors_total",
            "Requests answered with a 4xx status.",
            self.http_client_errors.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_submitted_total",
            "Jobs accepted onto the queue.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_rejected_total",
            "Submissions shed with 429 because the queue was full.",
            self.jobs_rejected.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_completed_total",
            "Jobs that ran to successful completion.",
            self.jobs_completed.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_failed_total",
            "Jobs that ran and failed (error or caught panic).",
            self.jobs_failed.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_retried_total",
            "Panicked job runs re-queued for another attempt.",
            self.jobs_retried.load(Ordering::Relaxed),
        );
        render_gauge(
            &mut out,
            "spur_serve_queue_depth",
            "Jobs currently waiting in the queue.",
            queue_depth as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_queue_bound",
            "Configured queue capacity.",
            queue_bound as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_draining",
            "1 while the service is draining toward exit.",
            draining as u64,
        );
        let latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        render_histogram(
            &mut out,
            "spur_serve_queue_wait_ms",
            "Milliseconds jobs waited in the queue.",
            &latency.queue_ms,
        );
        render_summary(
            &mut out,
            "spur_serve_job_run_ms",
            "Job execution wall time in milliseconds.",
            &latency.run_ms,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_the_contractual_series() {
        let m = ServeMetrics::new();
        m.http_requests.fetch_add(5, Ordering::Relaxed);
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        m.observe_job(2, 40, true);
        m.observe_job(3, 60, true);
        m.observe_job(1, 50, false);
        let text = m.render_prometheus(2, 16, false);
        assert!(text.contains("spur_serve_http_requests_total 5\n"));
        assert!(text.contains("spur_serve_jobs_submitted_total 3\n"));
        assert!(text.contains("spur_serve_jobs_rejected_total 1\n"));
        assert!(text.contains("spur_serve_jobs_completed_total 2\n"));
        assert!(text.contains("spur_serve_jobs_failed_total 1\n"));
        assert!(text.contains("spur_serve_queue_depth 2\n"));
        assert!(text.contains("spur_serve_queue_bound 16\n"));
        assert!(text.contains("spur_serve_draining 0\n"));
        // The acceptance-criteria quantiles.
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.5\"}"));
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.9\"}"));
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.99\"}"));
        assert!(text.contains("spur_serve_queue_wait_ms_bucket"));
    }
}
