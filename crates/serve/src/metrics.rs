//! Service-level metrics, exposed at `GET /metrics`.
//!
//! Counters are lock-free atomics bumped on the request path; the
//! latency [`Histogram`]s sit behind one mutex touched only at job
//! completion and submit-response time — a few dozen times a second at
//! most, never per HTTP request. Rendering reuses the
//! `spur_obs::prometheus` text-format helpers, so the service and the
//! simulator speak one exposition dialect.
//!
//! **Single source of truth:** every latency here is derived from the
//! request's span tree ([`spur_obs::span`]) — the worker closes the
//! job's phase spans, snapshots the trace, and feeds the *span*
//! durations to [`ServeMetrics::observe_phases`]. There are no
//! side-channel timers: the histogram a dashboard scrapes and the span
//! tree `GET /v1/jobs/{id}/trace` returns can never disagree, because
//! one is computed from the other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spur_obs::prometheus::{
    render_counter, render_gauge, render_gauge_labeled, render_histogram, render_histogram_labeled,
    render_summary,
};
use spur_obs::Histogram;

/// Phase durations for one finished job, all in milliseconds, read off
/// the job's completed span tree.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSample {
    /// `queue_wait` span: admission to worker pickup.
    pub queue_wait_ms: u64,
    /// `run` span: harness execution wall time (summed over retries).
    pub run_ms: u64,
    /// `serialize` span: artifact encode + persist.
    pub serialize_ms: u64,
    /// Root span: accept to serialized artifact.
    pub e2e_ms: u64,
    /// Whether the job completed successfully.
    pub ok: bool,
}

/// Everything the service counts.
#[derive(Debug)]
pub struct ServeMetrics {
    /// HTTP requests accepted for parsing.
    pub http_requests: AtomicU64,
    /// Requests answered 4xx (malformed, unknown route, …).
    pub http_client_errors: AtomicU64,
    /// Jobs accepted onto the queue.
    pub jobs_submitted: AtomicU64,
    /// Submissions shed with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Jobs that ran to a successful completion.
    pub jobs_completed: AtomicU64,
    /// Jobs that ran and failed (error or caught panic).
    pub jobs_failed: AtomicU64,
    /// Panicked job runs that were re-queued for another attempt.
    pub jobs_retried: AtomicU64,
    /// Submissions that joined an identical in-flight run instead of
    /// queuing their own (followers; the leader is counted normally).
    pub jobs_coalesced: AtomicU64,
    /// Submissions answered from the results cache without queuing.
    pub cache_hits: AtomicU64,
    /// Cache lookups that found nothing (including with caching off).
    pub cache_misses: AtomicU64,
    /// Entries evicted from the results cache at capacity.
    pub cache_evictions: AtomicU64,
    /// Submissions shed with 429 because their *client* was over
    /// quota while the queue itself had room.
    pub quota_rejected: AtomicU64,
    /// Requests forwarded to the owning peer instance.
    pub jobs_proxied: AtomicU64,
    latency: Mutex<Latency>,
}

/// The phase names carried by `spur_serve_phase_ms{phase=...}`.
const PHASES: [&str; 3] = ["queue_wait", "run", "serialize"];

/// Per-experiment phase histograms. The label set is closed (the API's
/// experiment families), so cardinality is 3 phases × |experiments|.
#[derive(Debug)]
struct ExperimentLatency {
    experiment: &'static str,
    /// One histogram per entry of [`PHASES`], same order.
    phase_ms: [Histogram; 3],
}

#[derive(Debug)]
struct Latency {
    /// Milliseconds from accept to the 202 being written.
    submit_ms: Histogram,
    /// Milliseconds from accept to serialized artifact (root span).
    e2e_ms: Histogram,
    /// Span-derived phase histograms, one row per experiment family,
    /// in first-seen order (deterministic under a single seed of
    /// traffic; rendering sorts by name for scrape stability).
    per_experiment: Vec<ExperimentLatency>,
}

impl Latency {
    fn experiment_row(&mut self, experiment: &'static str) -> &mut ExperimentLatency {
        if let Some(i) = self
            .per_experiment
            .iter()
            .position(|r| r.experiment == experiment)
        {
            return &mut self.per_experiment[i];
        }
        self.per_experiment.push(ExperimentLatency {
            experiment,
            phase_ms: PHASES.map(Histogram::new),
        });
        self.per_experiment.last_mut().unwrap()
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        ServeMetrics {
            http_requests: AtomicU64::new(0),
            http_client_errors: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_coalesced: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            jobs_proxied: AtomicU64::new(0),
            latency: Mutex::new(Latency {
                submit_ms: Histogram::new("submit_ms"),
                e2e_ms: Histogram::new("e2e_ms"),
                per_experiment: Vec::new(),
            }),
        }
    }

    /// Records one accepted submission's accept→202 latency (the
    /// acceptor's `accept` + `parse` + `respond` spans).
    pub fn observe_submit(&self, submit_ms: u64) {
        let mut latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        latency.submit_ms.record(submit_ms);
    }

    /// Records a *logical* completion that ran no simulation of its
    /// own: a coalesced follower or a cache hit. Counts toward the
    /// completion/failure totals and the e2e latency summary, but not
    /// the phase histograms — those measure actual work, and a
    /// follower's queue_wait/run phases would be fiction.
    pub fn observe_logical(&self, e2e_ms: u64, ok: bool) {
        if ok {
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        latency.e2e_ms.record(e2e_ms);
    }

    /// Records one finished job's span-derived phase durations.
    pub fn observe_phases(&self, experiment: &'static str, sample: PhaseSample) {
        if sample.ok {
            self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        latency.e2e_ms.record(sample.e2e_ms);
        let row = latency.experiment_row(experiment);
        for (h, v) in
            row.phase_ms
                .iter_mut()
                .zip([sample.queue_wait_ms, sample.run_ms, sample.serialize_ms])
        {
            h.record(v);
        }
    }

    /// Renders the Prometheus text exposition. `queue_depth`,
    /// `draining`, and the shape gauges (`queue_bound`, `shards`,
    /// `cache_entries`) come from the queue and config;
    /// `uptime_seconds` from the server's start instant.
    pub fn render_prometheus(
        &self,
        queue_depth: usize,
        queue_bound: usize,
        shards: usize,
        cache_entries: usize,
        draining: bool,
        uptime_seconds: u64,
    ) -> String {
        let mut out = String::with_capacity(4096);
        render_gauge_labeled(
            &mut out,
            "spur_serve_build_info",
            "Build metadata; the value is always 1.",
            &[("version", env!("CARGO_PKG_VERSION"))],
            1,
        );
        render_gauge(
            &mut out,
            "spur_serve_uptime_seconds",
            "Seconds since the server started.",
            uptime_seconds,
        );
        render_counter(
            &mut out,
            "spur_serve_http_requests_total",
            "HTTP requests accepted for parsing.",
            self.http_requests.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_http_client_errors_total",
            "Requests answered with a 4xx status.",
            self.http_client_errors.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_submitted_total",
            "Jobs accepted onto the queue.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_rejected_total",
            "Submissions shed with 429 because the queue was full.",
            self.jobs_rejected.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_completed_total",
            "Jobs that ran to successful completion.",
            self.jobs_completed.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_failed_total",
            "Jobs that ran and failed (error or caught panic).",
            self.jobs_failed.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_retried_total",
            "Panicked job runs re-queued for another attempt.",
            self.jobs_retried.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_coalesced_total",
            "Submissions that joined an identical in-flight run.",
            self.jobs_coalesced.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_cache_hits_total",
            "Submissions answered from the results cache.",
            self.cache_hits.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_cache_misses_total",
            "Results-cache lookups that found nothing.",
            self.cache_misses.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_cache_evictions_total",
            "Entries evicted from the results cache at capacity.",
            self.cache_evictions.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_quota_rejected_total",
            "Submissions shed with 429 because their client was over quota.",
            self.quota_rejected.load(Ordering::Relaxed),
        );
        render_counter(
            &mut out,
            "spur_serve_jobs_proxied_total",
            "Requests forwarded to the owning peer instance.",
            self.jobs_proxied.load(Ordering::Relaxed),
        );
        render_gauge(
            &mut out,
            "spur_serve_queue_depth",
            "Jobs currently waiting in the queue.",
            queue_depth as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_queue_bound",
            "Configured queue capacity.",
            queue_bound as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_shards",
            "Configured worker shard count.",
            shards as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_cache_entries",
            "Configured results-cache capacity in entries.",
            cache_entries as u64,
        );
        render_gauge(
            &mut out,
            "spur_serve_draining",
            "1 while the service is draining toward exit.",
            draining as u64,
        );

        let latency = self.latency.lock().unwrap_or_else(|e| e.into_inner());
        // Aggregate views first (stable names the smoke tests grep):
        // queue wait across experiments, run-time summary quantiles.
        let mut queue_all = Histogram::new("queue_wait_ms");
        let mut run_all = Histogram::new("job_run_ms");
        let mut rows: Vec<&ExperimentLatency> = latency.per_experiment.iter().collect();
        rows.sort_by_key(|r| r.experiment);
        for row in &rows {
            queue_all.merge(&row.phase_ms[0]);
            run_all.merge(&row.phase_ms[1]);
        }
        render_histogram(
            &mut out,
            "spur_serve_queue_wait_ms",
            "Milliseconds jobs waited in the queue (queue_wait span).",
            &queue_all,
        );
        render_summary(
            &mut out,
            "spur_serve_job_run_ms",
            "Job execution wall time in milliseconds (run span).",
            &run_all,
        );
        render_summary(
            &mut out,
            "spur_serve_submit_ms",
            "Milliseconds from accept to the 202 response being written.",
            &latency.submit_ms,
        );
        render_summary(
            &mut out,
            "spur_serve_e2e_ms",
            "Milliseconds from accept to serialized artifact (root span).",
            &latency.e2e_ms,
        );
        // Per-phase, per-experiment histograms derived from spans.
        let mut first = true;
        for row in &rows {
            for (phase, h) in PHASES.iter().zip(&row.phase_ms) {
                render_histogram_labeled(
                    &mut out,
                    "spur_serve_phase_ms",
                    "Span-derived phase latency in milliseconds.",
                    &[("phase", phase), ("experiment", row.experiment)],
                    h,
                    first,
                );
                first = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(queue: u64, run: u64, serialize: u64, ok: bool) -> PhaseSample {
        PhaseSample {
            queue_wait_ms: queue,
            run_ms: run,
            serialize_ms: serialize,
            e2e_ms: queue + run + serialize,
            ok,
        }
    }

    #[test]
    fn exposition_has_the_contractual_series() {
        let m = ServeMetrics::new();
        m.http_requests.fetch_add(5, Ordering::Relaxed);
        m.jobs_submitted.fetch_add(3, Ordering::Relaxed);
        m.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        m.observe_submit(1);
        m.observe_phases("refbit", sample(2, 40, 1, true));
        m.observe_phases("refbit", sample(3, 60, 1, true));
        m.observe_phases("mp", sample(1, 50, 1, false));
        let text = m.render_prometheus(2, 16, 4, 128, false, 7);
        assert!(text.contains("spur_serve_build_info{version=\""));
        assert!(text.contains("spur_serve_uptime_seconds 7\n"));
        assert!(text.contains("spur_serve_http_requests_total 5\n"));
        assert!(text.contains("spur_serve_jobs_submitted_total 3\n"));
        assert!(text.contains("spur_serve_jobs_rejected_total 1\n"));
        assert!(text.contains("spur_serve_jobs_completed_total 2\n"));
        assert!(text.contains("spur_serve_jobs_failed_total 1\n"));
        assert!(text.contains("spur_serve_queue_depth 2\n"));
        assert!(text.contains("spur_serve_queue_bound 16\n"));
        assert!(text.contains("spur_serve_shards 4\n"));
        assert!(text.contains("spur_serve_cache_entries 128\n"));
        assert!(text.contains("spur_serve_draining 0\n"));
        assert!(text.contains("spur_serve_jobs_coalesced_total 0\n"));
        assert!(text.contains("spur_serve_cache_hits_total 0\n"));
        assert!(text.contains("spur_serve_cache_misses_total 0\n"));
        assert!(text.contains("spur_serve_cache_evictions_total 0\n"));
        assert!(text.contains("spur_serve_quota_rejected_total 0\n"));
        assert!(text.contains("spur_serve_jobs_proxied_total 0\n"));
        // The acceptance-criteria quantiles survive the span rework.
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.5\"}"));
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.9\"}"));
        assert!(text.contains("spur_serve_job_run_ms{quantile=\"0.99\"}"));
        assert!(text.contains("spur_serve_queue_wait_ms_bucket"));
        assert!(text.contains("spur_serve_submit_ms{quantile=\"0.99\"}"));
        assert!(text.contains("spur_serve_e2e_ms_count 3\n"));
    }

    #[test]
    fn phase_histograms_are_labeled_by_experiment() {
        let m = ServeMetrics::new();
        m.observe_phases("refbit", sample(2, 40, 1, true));
        m.observe_phases("mp", sample(8, 200, 2, true));
        let text = m.render_prometheus(0, 16, 1, 0, false, 0);
        assert!(text.contains("spur_serve_phase_ms_count{phase=\"run\",experiment=\"refbit\"} 1\n"));
        assert!(
            text.contains("spur_serve_phase_ms_count{phase=\"queue_wait\",experiment=\"mp\"} 1\n")
        );
        assert!(
            text.contains("spur_serve_phase_ms_count{phase=\"serialize\",experiment=\"mp\"} 1\n")
        );
        // One family header regardless of label-set count.
        assert_eq!(
            text.matches("# TYPE spur_serve_phase_ms histogram").count(),
            1
        );
        // The aggregate run summary folds both experiments.
        assert!(text.contains("spur_serve_job_run_ms_count 2\n"));
    }

    #[test]
    fn experiment_rows_render_sorted_regardless_of_arrival_order() {
        let m = ServeMetrics::new();
        m.observe_phases("mp", sample(1, 1, 1, true));
        m.observe_phases("events", sample(1, 1, 1, true));
        let text = m.render_prometheus(0, 16, 1, 0, false, 0);
        let events_at = text.find("experiment=\"events\"").unwrap();
        let mp_at = text.find("experiment=\"mp\"").unwrap();
        assert!(events_at < mp_at, "rows sort by experiment name");
    }
}
