//! A minimal HTTP/1.1 layer over `std::io` streams.
//!
//! The workspace cannot reach a crate registry, so the service speaks
//! just enough HTTP/1.1 itself: one request per connection
//! (`Connection: close`), `Content-Length` bodies only (no chunked
//! transfer), bounded head and body sizes, and strict parsing that
//! turns every malformed input into a typed error — never a panic.
//! Socket read/write timeouts are the caller's job (set on the
//! `TcpStream` before handing it here); a timeout surfaces as
//! [`ReadError::Io`] and the connection is dropped.

use std::io::{Read, Write};

/// Largest request head (request line + headers) accepted, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method, e.g. `"POST"`.
    pub method: String,
    /// The request target with any query string stripped, e.g.
    /// `"/v1/jobs"`.
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The socket failed or timed out; there is nobody to answer.
    Io(std::io::Error),
    /// The bytes were not a well-formed request (answer 400).
    Malformed(&'static str),
    /// Head or declared body exceeded its cap (answer 431/413).
    TooLarge(&'static str),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads and parses one request from `stream`.
///
/// `max_body` caps the `Content-Length` the server is willing to
/// buffer. The head is capped at [`MAX_HEAD_BYTES`].
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, ReadError> {
    // Accumulate until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("request head"));
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                // Peer connected and said nothing: not an attack, just
                // a probe (health checks do this). Report cleanly.
                return Err(ReadError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "empty connection",
                )));
            }
            return Err(ReadError::Malformed("truncated request head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed("bad header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ReadError::Malformed("chunked bodies not supported"));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("bad content-length"))?,
    };
    if content_length > max_body {
        return Err(ReadError::TooLarge("request body"));
    }

    // The body: whatever followed the head in the buffer, topped up
    // from the stream.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(ReadError::Malformed("body longer than content-length"));
    }
    let mut remaining = content_length - body.len();
    while remaining > 0 {
        let mut chunk = vec![0u8; remaining.min(64 * 1024)];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated request body"));
        }
        body.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One response ready to write.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set.
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serializes `response` onto `stream` with `Connection: close`.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut &bytes[..], 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse(b"POST /v1/jobs?verbose=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nwork")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs", "query string is stripped");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"work");
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for bytes in [
            &b"\x00\xff\xfe\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/1.1 extra words\r\n\r\n",
            b"GET / SPDY/3\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort",
        ] {
            assert!(
                matches!(parse(bytes), Err(ReadError::Malformed(_))),
                "{:?} must be rejected as malformed",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn oversized_body_is_refused_up_front() {
        let req = b"POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n";
        assert!(matches!(parse(req), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn oversized_head_is_refused() {
        let mut req = b"GET / HTTP/1.1\r\n".to_vec();
        req.extend_from_slice(
            format!("x-pad: {}\r\n\r\n", "y".repeat(2 * MAX_HEAD_BYTES)).as_bytes(),
        );
        assert!(matches!(parse(&req), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        let resp = Response::json(429, "{\"error\":\"queue full\"}".into())
            .with_header("retry-after", "1".into());
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-length: 22\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"));
    }
}
