//! Consistent hashing for the multi-instance topology.
//!
//! Every serve instance is handed the same static `--peers` list and
//! builds the same ring, so any instance can answer "who owns this
//! job identity?" without coordination. Each peer contributes
//! `VNODES` virtual points (its address hashed with a per-replica
//! salt); a key is owned by the first point clockwise from the key's
//! hash. Virtual nodes smooth the balance (tested: within 2× of ideal
//! over seeded keys) and consistent hashing bounds the blast radius of
//! membership change (tested: removing one peer remaps only the keys
//! that peer owned).
//!
//! The cache stays key-partitioned for free: an identity is always
//! looked up on its owner, so no two instances cache the same entry.

/// Virtual nodes per peer. 64 points per peer keeps the balance bound
/// comfortably under 2× with a handful of instances while the ring
/// stays a few hundred entries — binary-searchable in nanoseconds.
const VNODES: usize = 64;

/// FNV-1a 64 with a splitmix64 finalizer: FNV alone clusters short
/// similar strings (peer addresses differ in one digit), the
/// finalizer shreds that structure across the full 64-bit ring.
pub(crate) fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over a static peer list.
pub struct HashRing {
    /// (point, peer index), sorted by point.
    points: Vec<(u64, usize)>,
    peers: Vec<String>,
}

impl HashRing {
    /// Builds the ring. Peer order matters only for index stability —
    /// ownership depends on the peer *strings*, so every instance
    /// given the same list (in any order) maps keys identically.
    pub fn new(peers: &[String]) -> Self {
        let mut points = Vec::with_capacity(peers.len() * VNODES);
        for (idx, peer) in peers.iter().enumerate() {
            for replica in 0..VNODES {
                let label = format!("{peer}#{replica}");
                points.push((hash64(label.as_bytes()), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            peers: peers.to_vec(),
        }
    }

    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// The peer owning `key`: first ring point at or clockwise of the
    /// key's hash, wrapping past zero.
    pub fn owner(&self, key: &str) -> &str {
        let idx = self.owner_index(key);
        &self.peers[idx]
    }

    /// Like [`owner`](HashRing::owner), as an index into the peer
    /// list.
    pub fn owner_index(&self, key: &str) -> usize {
        assert!(!self.points.is_empty(), "ring has no peers");
        let h = hash64(key.as_bytes());
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, peer_idx) = self.points[at % self.points.len()];
        peer_idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7800 + i)).collect()
    }

    /// Seeded keys shaped like real job identities.
    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                format!(
                    "table_4_1/SLC/{}MB/MISS|wl=0123456789abcdef|refs={},seed={},reps=1",
                    1 + i % 16,
                    5000 + i * 37,
                    1989 + i
                )
            })
            .collect()
    }

    #[test]
    fn balance_is_within_two_times_ideal() {
        let peers = peers(3);
        let ring = HashRing::new(&peers);
        let keys = keys(30_000);
        let mut counts = vec![0usize; peers.len()];
        for k in &keys {
            counts[ring.owner_index(k)] += 1;
        }
        let ideal = keys.len() / peers.len();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c <= ideal * 2,
                "peer {i} owns {c} of {} keys (ideal {ideal}): {counts:?}",
                keys.len()
            );
            assert!(c > 0, "peer {i} owns nothing: {counts:?}");
        }
    }

    #[test]
    fn removing_a_peer_remaps_only_its_keys() {
        let full = peers(3);
        let ring = HashRing::new(&full);
        let mut reduced = full.clone();
        let removed = reduced.remove(1);
        let ring2 = HashRing::new(&reduced);
        let keys = keys(10_000);
        let mut remapped = 0usize;
        for k in &keys {
            let before = ring.owner(k);
            let after = ring2.owner(k);
            if before == removed {
                remapped += 1;
            } else {
                // Minimal disruption: a key whose owner survives keeps
                // that owner exactly.
                assert_eq!(before, after, "key {k} moved off a surviving peer");
            }
        }
        // Sanity: the removed peer actually owned a share to remap.
        assert!(remapped > 0);
    }

    #[test]
    fn ownership_is_independent_of_list_order() {
        let a = peers(3);
        let mut b = a.clone();
        b.reverse();
        let ra = HashRing::new(&a);
        let rb = HashRing::new(&b);
        for k in keys(1000) {
            assert_eq!(ra.owner(&k), rb.owner(&k));
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let p = peers(1);
        let ring = HashRing::new(&p);
        for k in keys(100) {
            assert_eq!(ring.owner(&k), p[0]);
        }
    }
}
