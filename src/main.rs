//! `spur-repro` — command-line front end for the SPUR reference/dirty-bit
//! reproduction.
//!
//! ```text
//! spur-repro table <2.1|3.1|3.2|3.3|3.4|3.5|4.1> [--scale quick|default|full]
//! spur-repro run --workload <slc|workload1> [--mem <MB>] [--dirty <policy>]
//!                [--refbit <policy>] [--refs <N>] [--seed <N>] [--cpus <N>]
//! spur-repro model [--scale ...]
//! ```

use std::process::ExitCode;

use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::{events, overhead, pageout, refbit, Scale};
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::{slc, workload1, Workload};
use spur_types::{CostParams, MemSize, SystemConfig};
use spur_vm::policy::RefPolicy;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         spur-repro table <2.1|3.1|3.2|3.3|3.4|3.5|4.1> [--scale quick|default|full]\n  \
         spur-repro model [--scale ...]\n  \
         spur-repro run --workload <slc|workload1|spec-file> [--mem MB]\n              \
         [--dirty fault|flush|spur|write|min] [--refbit miss|ref|noref]\n              \
         [--refs N] [--seed N] [--cpus N]"
    );
    ExitCode::from(2)
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Option<Args> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next()?;
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Some(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn scale_of(args: &Args) -> Scale {
    match args.flag("scale") {
        Some("quick") => Scale::quick(),
        Some("full") => Scale::full(),
        _ => Scale::default_scale(),
    }
}

fn workload_of(name: &str) -> Option<Workload> {
    match name {
        "slc" | "SLC" => Some(slc()),
        "workload1" | "w1" | "WORKLOAD1" => Some(workload1()),
        // Anything else is tried as a workload spec file (see
        // `spur_trace::spec` for the format).
        path => {
            let text = std::fs::read_to_string(path).ok()?;
            match spur_trace::spec::parse_workload(&text) {
                Ok(w) => Some(w),
                Err(e) => {
                    eprintln!("error parsing {path}: {e}");
                    None
                }
            }
        }
    }
}

fn cmd_table(args: &Args) -> ExitCode {
    let Some(which) = args.positional.get(1) else {
        return usage();
    };
    let scale = scale_of(args);
    let result: Result<String, spur_types::Error> = match which.as_str() {
        "2.1" => Ok(format!(
            "Table 2.1: SPUR System Configuration\n{}",
            SystemConfig::prototype()
        )),
        "3.1" => {
            let mut out = String::from("Table 3.1: Dirty Bit Implementation Alternatives\n");
            for p in DirtyPolicy::ALL {
                out.push_str(&format!("  {:<6} {}\n", p.to_string(), p.description()));
            }
            Ok(out)
        }
        "3.2" => Ok(format!(
            "Table 3.2: Time Parameters\n{}",
            CostParams::paper()
        )),
        "3.3" => events::table_3_3(&scale).map(|r| events::render_table_3_3(&r)),
        "3.4" => events::table_3_3(&scale)
            .map(|r| overhead::render_table_3_4(&overhead::table_3_4(&r, &CostParams::paper()))),
        "3.5" => pageout::table_3_5(&scale).map(|r| pageout::render_table_3_5(&r)),
        "4.1" => refbit::table_4_1(&scale).map(|r| refbit::render_table_4_1(&r)),
        _ => return usage(),
    };
    match result {
        Ok(text) => {
            println!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_model(args: &Args) -> ExitCode {
    let scale = scale_of(args);
    match events::table_3_3(&scale) {
        Ok(rows) => {
            println!(
                "{}",
                overhead::render_model(&overhead::model_vs_measured(&rows))
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let Some(workload) = args.flag("workload").and_then(workload_of) else {
        return usage();
    };
    let mem = args
        .flag("mem")
        .and_then(|v| v.parse::<u32>().ok())
        .map(MemSize::new)
        .unwrap_or(MemSize::MB6);
    let Ok(dirty) = args.flag("dirty").unwrap_or("spur").parse::<DirtyPolicy>() else {
        return usage();
    };
    let Ok(ref_policy) = args.flag("refbit").unwrap_or("miss").parse::<RefPolicy>() else {
        return usage();
    };
    let refs = args
        .flag("refs")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2_000_000);
    let seed = args
        .flag("seed")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1989);
    let cpus = args
        .flag("cpus")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);

    let mut sim = match SpurSystem::new(SimConfig {
        mem,
        dirty,
        ref_policy,
        cpus,
        ..SimConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = sim.load_workload(&workload) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "running {} refs of {} @ {mem}, dirty={dirty}, refbit={ref_policy}, {cpus} cpu(s), seed {seed}",
        refs,
        workload.name()
    );
    if let Err(e) = sim.run(&mut workload.generator(seed), refs) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let ev = sim.events();
    println!("{ev}");
    println!(
        "page-ins {}  soft-faults {}  miss ratio {:.2}%",
        ev.page_ins,
        sim.vm().stats().soft_faults,
        100.0 * ev.miss_ratio()
    );
    println!("elapsed decomposition:");
    print!("{}", sim.breakdown().render());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(args) = Args::parse(raw) else {
        return usage();
    };
    match args.positional.first().map(String::as_str) {
        Some("table") => cmd_table(&args),
        Some("model") => cmd_model(&args),
        Some("run") => cmd_run(&args),
        _ => usage(),
    }
}
