//! Umbrella crate for the SPUR reference/dirty-bit reproduction
//! (Wood & Katz, ISCA 1989).
//!
//! Re-exports every workspace crate and provides a [`prelude`] with the
//! handful of types most programs need. See `README.md` for the tour and
//! `EXPERIMENTS.md` for the paper-vs-measured results.
//!
//! # Example
//!
//! ```
//! use spur_repro::prelude::*;
//!
//! let mut sim = SpurSystem::new(SimConfig {
//!     mem: MemSize::MB6,
//!     dirty: DirtyPolicy::Fault,
//!     ref_policy: RefPolicy::Miss,
//!     ..SimConfig::default()
//! })?;
//! let workload = slc();
//! sim.load_workload(&workload)?;
//! sim.run(&mut workload.generator(1), 50_000)?;
//! assert_eq!(sim.refs(), 50_000);
//! # Ok::<(), spur_types::Error>(())
//! ```

pub use spur_cache as cache;
pub use spur_core as core_sim;
pub use spur_mem as mem;
pub use spur_trace as trace;
pub use spur_types as types;
pub use spur_vm as vm;

/// The types most users need, in one import.
pub mod prelude {
    pub use spur_core::dirty::DirtyPolicy;
    pub use spur_core::events::EventCounts;
    pub use spur_core::experiments::Scale;
    pub use spur_core::model::ExcessFaultModel;
    pub use spur_core::system::{SimConfig, SpurSystem};
    pub use spur_trace::workloads::{devmachine, slc, workload1, DevHost, Workload};
    pub use spur_types::{CostParams, Cycles, GlobalAddr, MemSize, Protection, Vpn};
    pub use spur_vm::policy::RefPolicy;
}
