//! Multiprocessor integration tests: the full system with several CPUs,
//! one bus, shared memory, and the coherence protocol under real
//! workload traffic.

use spur_cache::counters::CounterEvent;
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::mp_workers;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn mp_sim(cpus: usize, dirty: DirtyPolicy, ref_policy: RefPolicy, refs: u64) -> SpurSystem {
    let workload = mp_workers(cpus.max(2), 128);
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB8,
        dirty,
        ref_policy,
        cpus,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(17), refs).unwrap();
    sim
}

#[test]
fn invariants_hold_across_cpu_counts() {
    for cpus in [1usize, 2, 4, 8] {
        let sim = mp_sim(cpus, DirtyPolicy::Spur, RefPolicy::Miss, 250_000);
        sim.check_invariants()
            .unwrap_or_else(|e| panic!("{cpus} cpus: {e}"));
        assert_eq!(sim.cpus(), cpus);
    }
}

#[test]
fn sharing_generates_coherence_traffic_only_with_multiple_cpus() {
    let uni = mp_sim(1, DirtyPolicy::Spur, RefPolicy::Miss, 200_000);
    assert_eq!(uni.counters().total(CounterEvent::Invalidation), 0);
    assert_eq!(uni.counters().total(CounterEvent::OwnerSupply), 0);

    let quad = mp_sim(4, DirtyPolicy::Spur, RefPolicy::Miss, 200_000);
    assert!(
        quad.counters().total(CounterEvent::Invalidation) > 0,
        "shared writes must invalidate peer copies"
    );
}

#[test]
fn every_dirty_policy_works_multiprocessor() {
    for dirty in DirtyPolicy::ALL {
        let sim = mp_sim(4, dirty, RefPolicy::Miss, 150_000);
        sim.check_invariants()
            .unwrap_or_else(|e| panic!("{dirty}: {e}"));
        assert!(sim.events().n_ds > 0, "{dirty}: pages must get dirtied");
    }
}

#[test]
fn mp_runs_are_deterministic() {
    let a = mp_sim(4, DirtyPolicy::Fault, RefPolicy::Miss, 150_000).events();
    let b = mp_sim(4, DirtyPolicy::Fault, RefPolicy::Miss, 150_000).events();
    assert_eq!(a, b);
}

#[test]
fn per_cpu_caches_fill_independently() {
    let sim = mp_sim(4, DirtyPolicy::Spur, RefPolicy::Miss, 300_000);
    for cpu in 0..4 {
        assert!(
            sim.cache_of(cpu).occupancy() > 0,
            "cpu{cpu} cache never filled — pinning broken?"
        );
    }
}

#[test]
fn ref_policy_flushes_hit_every_cache() {
    // Under REF with shared pages cached on several CPUs, daemon clears
    // flush them all; flush write-back counts exceed what one cache
    // could produce alone once pressure exists.
    let workload = mp_workers(4, 128);
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB5,
        dirty: DirtyPolicy::Spur,
        ref_policy: RefPolicy::Ref,
        cpus: 4,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(21), 2_000_000).unwrap();
    sim.check_invariants().unwrap();
    // The run must have exercised the daemon at 5 MB.
    assert!(sim.vm().stats().daemon_scans > 0);
}
