//! Cross-crate integration tests: the full trace → cache → translation →
//! VM pipeline under every policy combination.

use spur_cache::counters::CounterEvent;
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::{slc, workload1};
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

const RUN: u64 = 300_000;

fn run_sim(mem: MemSize, dirty: DirtyPolicy, ref_policy: RefPolicy, seed: u64) -> SpurSystem {
    let workload = if seed.is_multiple_of(2) {
        slc()
    } else {
        workload1()
    };
    let mut sim = SpurSystem::new(SimConfig {
        mem,
        dirty,
        ref_policy,
        ..SimConfig::default()
    })
    .expect("config valid");
    sim.load_workload(&workload).expect("workload registers");
    let mut gen = workload.generator(seed);
    sim.run(&mut gen, RUN).expect("run completes");
    sim
}

#[test]
fn every_policy_combination_upholds_invariants() {
    for dirty in DirtyPolicy::ALL {
        for ref_policy in RefPolicy::ALL {
            let sim = run_sim(MemSize::MB5, dirty, ref_policy, 3);
            sim.check_invariants()
                .unwrap_or_else(|e| panic!("{dirty}/{ref_policy}: {e}"));
        }
    }
}

#[test]
fn counter_totals_are_internally_consistent() {
    let sim = run_sim(MemSize::MB6, DirtyPolicy::Spur, RefPolicy::Miss, 4);
    let c = sim.counters();
    let refs =
        c.total(CounterEvent::IFetch) + c.total(CounterEvent::Read) + c.total(CounterEvent::Write);
    assert_eq!(refs, sim.refs());
    let misses = c.total(CounterEvent::IFetchMiss)
        + c.total(CounterEvent::ReadMiss)
        + c.total(CounterEvent::WriteMiss);
    assert_eq!(misses, sim.misses());
    // Every data miss translates; PTE probes cover at least the misses
    // (page faults re-translate).
    assert!(c.total(CounterEvent::PteProbe) >= misses);
    assert_eq!(
        c.total(CounterEvent::PteProbe),
        c.total(CounterEvent::PteCacheHit) + c.total(CounterEvent::PteCacheMiss)
    );
    // Write-backs never exceed evictions plus explicit flushes.
    assert!(c.total(CounterEvent::Writeback) <= c.total(CounterEvent::Fill) + misses);
}

#[test]
fn vm_and_counter_views_agree() {
    let sim = run_sim(MemSize::MB5, DirtyPolicy::Fault, RefPolicy::Miss, 5);
    let stats = sim.vm().stats();
    let c = sim.counters();
    assert_eq!(c.total(CounterEvent::PageIn), stats.page_ins);
    assert_eq!(c.total(CounterEvent::ZeroFill), stats.zero_fills);
    assert_eq!(c.total(CounterEvent::SoftFault), stats.soft_faults);
    assert_eq!(c.total(CounterEvent::DaemonScan), stats.daemon_scans);
    assert_eq!(
        stats.page_faults,
        stats.page_ins + stats.zero_fills + stats.soft_faults
    );
}

#[test]
fn events_record_matches_counters() {
    let sim = run_sim(MemSize::MB5, DirtyPolicy::Spur, RefPolicy::Miss, 6);
    let ev = sim.events();
    let c = sim.counters();
    assert_eq!(ev.n_ds, c.total(CounterEvent::DirtyFault));
    assert_eq!(ev.n_ef, c.total(CounterEvent::DirtyBitMiss));
    assert_eq!(ev.ref_faults, c.total(CounterEvent::RefFault));
    assert_eq!(ev.refs, sim.refs());
    assert_eq!(ev.misses, sim.misses());
    assert!(
        ev.n_zfod <= ev.n_ds,
        "zfod faults are a subset of dirty faults"
    );
    assert_eq!(ev.elapsed, sim.cycles());
}

#[test]
fn memory_gradient_reduces_paging() {
    // More memory, (weakly) fewer page-ins — the gradient every table
    // depends on.
    let p5 = run_sim(MemSize::MB5, DirtyPolicy::Spur, RefPolicy::Miss, 8)
        .vm()
        .stats()
        .page_ins;
    let p8 = run_sim(MemSize::MB8, DirtyPolicy::Spur, RefPolicy::Miss, 8)
        .vm()
        .stats()
        .page_ins;
    assert!(p8 <= p5, "page-ins at 8 MB ({p8}) exceed 5 MB ({p5})");
}

#[test]
fn min_policy_never_generates_excess_events() {
    let sim = run_sim(MemSize::MB5, DirtyPolicy::Min, RefPolicy::Miss, 9);
    let c = sim.counters();
    assert_eq!(c.total(CounterEvent::ExcessFault), 0);
    assert_eq!(c.total(CounterEvent::DirtyBitMiss), 0);
}

#[test]
fn write_policy_never_generates_excess_faults() {
    // WRITE checks the PTE before every first block write, so it can
    // never fault on stale information.
    let sim = run_sim(MemSize::MB5, DirtyPolicy::Write, RefPolicy::Miss, 10);
    assert_eq!(sim.counters().total(CounterEvent::ExcessFault), 0);
    assert_eq!(sim.counters().total(CounterEvent::DirtyBitMiss), 0);
}

#[test]
fn logical_dirty_state_is_policy_independent() {
    // Whatever the mechanism, the same pages end up logically dirty: the
    // necessary-fault count is identical across policies on the same
    // trace (at 8 MB, where policy timing cannot perturb replacement).
    let counts: Vec<u64> = DirtyPolicy::ALL
        .iter()
        .map(|&dirty| {
            run_sim(MemSize::MB8, dirty, RefPolicy::Miss, 12)
                .events()
                .n_ds
        })
        .collect();
    for pair in counts.windows(2) {
        assert_eq!(pair[0], pair[1], "necessary faults differ: {counts:?}");
    }
}

#[test]
fn cache_occupancy_stays_bounded_and_dense() {
    let sim = run_sim(MemSize::MB8, DirtyPolicy::Spur, RefPolicy::Miss, 14);
    let occ = sim.cache().occupancy();
    assert!(occ <= sim.cache().num_lines());
    // After 300k references the 4096-line cache should be mostly full.
    assert!(
        occ > sim.cache().num_lines() / 2,
        "cache oddly empty: {occ}"
    );
}

#[test]
fn cycle_breakdown_sums_to_elapsed() {
    use spur_core::breakdown::CycleCategory;
    for policy in [RefPolicy::Miss, RefPolicy::Ref, RefPolicy::Noref] {
        let sim = run_sim(MemSize::MB5, DirtyPolicy::Spur, policy, 18);
        assert_eq!(
            sim.breakdown().total(),
            sim.cycles(),
            "{policy}: every cycle must be attributed"
        );
        // Base execution charges exactly one cycle per reference.
        assert_eq!(
            sim.breakdown()[CycleCategory::BaseExecution].raw(),
            sim.refs()
        );
    }
    // NOREF never spends on reference-bit machinery; REF does exactly
    // when its daemon cleared bits or faults fired.
    let r = run_sim(MemSize::MB5, DirtyPolicy::Spur, RefPolicy::Ref, 18);
    let n = run_sim(MemSize::MB5, DirtyPolicy::Spur, RefPolicy::Noref, 18);
    let r_events = r.counters().total(CounterEvent::RefFault) + r.vm().stats().ref_flushes;
    assert_eq!(
        r.breakdown()[CycleCategory::RefBit].raw() > 0,
        r_events > 0,
        "RefBit cycles iff reference-bit events"
    );
    assert_eq!(n.breakdown()[CycleCategory::RefBit].raw(), 0);
}

#[test]
fn miss_ratio_is_realistic() {
    // The 128 KB cache on these workloads should hit far more often than
    // it misses, but not be perfect.
    let sim = run_sim(MemSize::MB8, DirtyPolicy::Spur, RefPolicy::Miss, 16);
    let ratio = sim.events().miss_ratio();
    assert!(
        (0.005..0.25).contains(&ratio),
        "miss ratio {ratio} outside plausible range"
    );
}
