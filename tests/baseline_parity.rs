//! Cross-machine parity: the virtual-cache system and the TLB baseline
//! share the VM and the trace, so everything *logical* must agree —
//! only costs and mechanism-specific event classes may differ.

use spur_cache::counters::CounterEvent as E;
use spur_core::baseline::{TlbConfig, TlbSystem};
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn run_both(mem: MemSize, refs: u64, seed: u64) -> (SpurSystem, TlbSystem) {
    let workload = slc();
    let mut va = SpurSystem::new(SimConfig {
        mem,
        dirty: DirtyPolicy::Fault,
        ref_policy: RefPolicy::Miss,
        ..SimConfig::default()
    })
    .unwrap();
    va.load_workload(&workload).unwrap();
    va.run(&mut workload.generator(seed), refs).unwrap();

    let mut tlb = TlbSystem::new(TlbConfig {
        mem,
        ..TlbConfig::default()
    })
    .unwrap();
    tlb.load_workload(&workload).unwrap();
    tlb.run(&mut workload.generator(seed), refs).unwrap();
    (va, tlb)
}

#[test]
fn both_machines_take_identical_necessary_dirty_faults() {
    let (va, tlb) = run_both(MemSize::MB8, 400_000, 9);
    assert_eq!(
        va.counters().total(E::DirtyFault),
        tlb.counters().total(E::DirtyFault),
        "first writes per page are a property of the trace, not the machine"
    );
}

#[test]
fn only_the_virtual_cache_has_an_excess_fault_class() {
    let (va, tlb) = run_both(MemSize::MB8, 400_000, 10);
    assert!(
        va.counters().total(E::ExcessFault) > 0,
        "FAULT on a VA cache"
    );
    assert_eq!(tlb.counters().total(E::ExcessFault), 0);
    assert_eq!(tlb.counters().total(E::DirtyBitMiss), 0);
}

#[test]
fn paging_behavior_is_close_across_machines() {
    // Replacement decisions differ slightly (the TLB machine's R bits
    // are exact), but page-in volume should be the same order.
    let (va, tlb) = run_both(MemSize::MB5, 1_000_000, 11);
    let (a, b) = (va.vm().stats().page_ins, tlb.vm().stats().page_ins);
    assert!(a > 0 && b > 0);
    let ratio = a.max(b) as f64 / a.min(b).max(1) as f64;
    assert!(ratio < 2.0, "page-ins diverged: VA {a} vs TLB {b}");
}

#[test]
fn va_cache_wins_the_base_cost_and_tlb_wins_the_bit_machinery() {
    use spur_core::breakdown::CycleCategory as C;
    let (va, tlb) = run_both(MemSize::MB8, 400_000, 12);
    assert!(
        va.breakdown()[C::BaseExecution] < tlb.breakdown()[C::BaseExecution],
        "the VA cache's whole point: no per-access translation"
    );
    assert!(
        tlb.breakdown()[C::RefBit].raw() == 0,
        "TLB reference bits are free"
    );
    assert!(
        va.breakdown()[C::DirtyBit] >= tlb.breakdown()[C::DirtyBit],
        "excess faults cost the VA machine extra dirty-bit cycles"
    );
}

#[test]
fn both_machines_are_deterministic() {
    let (va1, tlb1) = run_both(MemSize::MB5, 300_000, 13);
    let (va2, tlb2) = run_both(MemSize::MB5, 300_000, 13);
    assert_eq!(va1.events(), va2.events());
    assert_eq!(tlb1.cycles(), tlb2.cycles());
    assert_eq!(tlb1.tlb_misses(), tlb2.tlb_misses());
}
