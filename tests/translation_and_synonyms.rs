//! Integration tests for the two mechanisms Section 1 leans on:
//! synonym prevention through segment mapping, and in-cache translation's
//! "PTEs compete with data" behavior.

use spur_cache::cache::VirtualCache;
use spur_cache::counters::{CounterEvent, PerfCounters};
use spur_cache::translate::InCacheTranslator;
use spur_mem::pagetable::{PageTable, PT_GLOBAL_SEGMENT};
use spur_mem::phys::PhysMemory;
use spur_mem::pte::Pte;
use spur_mem::segmap::SegmentMap;
use spur_types::{CostParams, MemSize, Pfn, ProcAddr, Protection, SegmentId, Vpn};

/// Two processes sharing memory through the same global segment produce
/// identical global addresses — so the virtual cache can never hold two
/// copies (synonyms) of the same datum.
#[test]
fn shared_segments_prevent_synonyms_in_the_cache() {
    let mut map_a = SegmentMap::new();
    let mut map_b = SegmentMap::new();
    // Process A maps the shared segment at its segment 1, process B at
    // its segment 3: different process addresses, same global addresses.
    map_a.load(SegmentId::new(1), 17).unwrap();
    map_b.load(SegmentId::new(3), 17).unwrap();

    let mut cache = VirtualCache::prototype();
    let pa = ProcAddr::new(0x4000_2000);
    let pb = ProcAddr::new(0xC000_2000);
    let ga = map_a.translate(pa).unwrap();
    let gb = map_b.translate(pb).unwrap();
    assert_eq!(ga, gb, "same datum, same global address");

    cache.fill_for_read(ga, Protection::ReadWrite, false);
    // Process B's access *hits the same line* — no synonym is possible.
    assert!(cache.probe(gb).hit);
    assert_eq!(cache.occupancy(), 1);
}

/// Unshared segments translate to disjoint global addresses even for
/// identical process addresses.
#[test]
fn private_segments_do_not_collide() {
    let mut map_a = SegmentMap::new();
    let mut map_b = SegmentMap::new();
    map_a.load(SegmentId::new(0), 5).unwrap();
    map_b.load(SegmentId::new(0), 6).unwrap();
    let p = ProcAddr::new(0x0000_4444);
    assert_ne!(map_a.translate(p).unwrap(), map_b.translate(p).unwrap());
}

/// A PTE block filled by in-cache translation competes with data: it can
/// evict a data block, and a later data fill can evict it back, forcing
/// a second-level fetch on the next translation.
#[test]
fn pte_blocks_compete_with_data_for_cache_lines() {
    let mut cache = VirtualCache::prototype();
    let mut pt = PageTable::new();
    let mut phys = PhysMemory::new(MemSize::MB8);
    let mut ctrs = PerfCounters::promiscuous();
    let tr = InCacheTranslator::new(CostParams::paper());

    let vpn = Vpn::new(0x1234);
    pt.ensure_second_level(vpn, &mut phys).unwrap();
    pt.insert(vpn, Pte::resident(Pfn::new(9), Protection::ReadWrite));

    // First translation: second-level fetch + PTE block fill.
    let out1 = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
    assert!(!out1.pte_cache_hit && out1.used_second_level);

    // Second: served from the cache.
    let out2 = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
    assert!(out2.pte_cache_hit);

    // A data block that maps to the same line evicts the PTE block.
    let pte_va = pt.pte_vaddr(vpn);
    let conflicting = spur_types::GlobalAddr::new(pte_va.block_aligned().raw() ^ (1 << 17));
    assert_eq!(
        cache.index_of(conflicting.block()),
        cache.index_of(pte_va.block())
    );
    let evicted = cache.fill_for_read(conflicting, Protection::ReadWrite, false);
    assert_eq!(evicted.unwrap().block, pte_va.block(), "PTE block evicted");

    // Third translation: back to the second level.
    let out3 = tr.translate(vpn.base_addr(), &mut cache, &pt, &mut ctrs);
    assert!(!out3.pte_cache_hit && out3.used_second_level);
    assert_eq!(ctrs.total(CounterEvent::SecondLevelFetch), 2);
}

/// The page-table segment is reserved: user segment maps cannot name it,
/// so no workload can alias PTE storage.
#[test]
fn page_table_segment_is_inaccessible_to_processes() {
    let mut map = SegmentMap::new();
    let err = map.load(SegmentId::new(2), PT_GLOBAL_SEGMENT).unwrap_err();
    assert!(err.to_string().contains("page-table segment"));
}

/// Architectural translation (the test oracle) agrees with what in-cache
/// translation returns, hit or miss.
#[test]
fn in_cache_translation_matches_architectural_translation() {
    let mut cache = VirtualCache::prototype();
    let mut pt = PageTable::new();
    let mut phys = PhysMemory::new(MemSize::MB8);
    let mut ctrs = PerfCounters::promiscuous();
    let tr = InCacheTranslator::new(CostParams::paper());

    for i in 0..64u64 {
        let vpn = Vpn::new(0x8000 + i * 3);
        pt.ensure_second_level(vpn, &mut phys).unwrap();
        pt.insert(
            vpn,
            Pte::resident(Pfn::new(100 + i as u32), Protection::ReadWrite),
        );
        let addr = spur_types::GlobalAddr::new(vpn.base_addr().raw() + (i % 4096));

        let out = tr.translate(addr, &mut cache, &pt, &mut ctrs);
        let arch = pt.translate(addr).unwrap();
        assert_eq!(out.pte.pfn(), arch.pfn(), "page {i}");
    }
}
