//! Cross-validation of the Section 3.2 overhead models against direct
//! mechanism simulation — including the paper's own caveat that the
//! FLUSH model omits the cost of re-reading flushed blocks.

use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::events::measure_events;
use spur_core::experiments::overhead::direct_elapsed;
use spur_core::experiments::Scale;
use spur_trace::workloads::slc;
use spur_types::{CostParams, Cycles, MemSize};

fn setup() -> (spur_core::events::EventCounts, Vec<(DirtyPolicy, Cycles)>) {
    let scale = Scale {
        refs: 1_500_000,
        seed: 1989,
        reps: 1,
        dev_refs_per_hour: 0,
    };
    let w = slc();
    let ev = measure_events(&w, MemSize::MB5, &scale).unwrap().events;
    let direct = direct_elapsed(&w, MemSize::MB5, &scale).unwrap();
    (ev, direct)
}

fn deltas(
    ev: &spur_core::events::EventCounts,
    direct: &[(DirtyPolicy, Cycles)],
    policy: DirtyPolicy,
) -> (Cycles, Cycles) {
    let costs = CostParams::paper();
    let min_model = DirtyPolicy::Min.overhead(ev, &costs);
    let min_direct = direct
        .iter()
        .find(|(p, _)| *p == DirtyPolicy::Min)
        .unwrap()
        .1;
    let model = policy.overhead(ev, &costs).saturating_sub(min_model);
    let measured = direct
        .iter()
        .find(|(p, _)| *p == policy)
        .unwrap()
        .1
        .saturating_sub(min_direct);
    (model, measured)
}

#[test]
fn fault_model_matches_direct_simulation_exactly() {
    // O(FAULT) − O(MIN) = N_ef · t_ds, and the direct mechanism charges
    // exactly t_ds per excess fault: the two must agree to within the
    // replacement noise the shared trace eliminates (i.e. exactly).
    let (ev, direct) = setup();
    let (model, measured) = deltas(&ev, &direct, DirtyPolicy::Fault);
    assert_eq!(model, measured, "FAULT model vs direct");
}

#[test]
fn write_model_matches_direct_simulation_exactly() {
    let (ev, direct) = setup();
    let (model, measured) = deltas(&ev, &direct, DirtyPolicy::Write);
    assert_eq!(model, measured, "WRITE model vs direct");
}

#[test]
fn flush_direct_cost_exceeds_its_model() {
    // Section 3.2: the FLUSH comparison is "not counting the time to
    // reread blocks that are accessed again." Direct simulation counts
    // it — so the measured delta must exceed the model's.
    let (ev, direct) = setup();
    let (model, measured) = deltas(&ev, &direct, DirtyPolicy::Flush);
    assert!(
        measured > model,
        "flushed-block rereads must make direct FLUSH ({}) cost more than its model ({})",
        measured.millions(),
        model.millions()
    );
    // But not absurdly more: same order of magnitude.
    assert!(measured.raw() < model.raw() * 6 + 1_000_000);
}

#[test]
fn spur_direct_tracks_its_model() {
    let (ev, direct) = setup();
    let (model, measured) = deltas(&ev, &direct, DirtyPolicy::Spur);
    // SPUR's dirty-bit misses also force refetches the model ignores;
    // direct is therefore >= model but within a few t_dm per event.
    assert!(measured >= model);
    assert!(measured.raw() <= model.raw() * 4 + 200_000);
}
