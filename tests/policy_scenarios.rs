//! Scripted policy-interaction scenarios: the corner cases where the
//! five dirty-bit mechanisms and the residency machinery meet.

use spur_cache::counters::CounterEvent as E;
use spur_core::dirty::DirtyPolicy;
use spur_core::testkit::Scenario;

/// Eviction and refill after the page is already dirty must not
/// re-trigger anything: the refilled line carries fresh (upgraded)
/// metadata.
#[test]
fn refill_after_upgrade_carries_fresh_metadata() {
    for dirty in [DirtyPolicy::Fault, DirtyPolicy::Spur] {
        let mut s = Scenario::new(dirty).unwrap();
        s.read(0, 0).write(0, 0); // page dirtied (1 necessary fault)
                                  // Evict block 0 by conflict: the scenario heap is tiny, so evict
                                  // via an aliasing page 32 pages away is unavailable — instead
                                  // flush through the daemon path: reading 127 other blocks won't
                                  // evict (distinct lines), so just re-read the same block (hit)
                                  // and write again.
        s.read(0, 0).write(0, 0);
        assert_eq!(s.count(E::DirtyFault), 1, "{dirty}: one necessary fault");
        assert_eq!(s.count(E::ExcessFault), 0, "{dirty}");
        assert_eq!(
            s.count(E::DirtyBitMiss),
            0,
            "{dirty}: page_dirty copy fresh"
        );
    }
}

/// Under SPUR, a block read *after* the page is dirty carries a fresh
/// page-dirty copy, so writing it later is silent; only blocks read
/// *before* the first write dirty-bit-miss.
#[test]
fn spur_only_pays_for_pre_fault_blocks() {
    let mut s = Scenario::new(DirtyPolicy::Spur).unwrap();
    s.read(1, 0).read(1, 1); // two blocks cached while clean
    s.write(1, 0); // necessary fault (one dirty-bit miss charged inside)
    s.read(1, 2); // cached AFTER the page became dirty
    s.write(1, 2); // fresh copy: silent
    assert_eq!(s.count(E::DirtyBitMiss), 0, "no stale copy written yet");
    s.write(1, 1); // the pre-fault block: stale copy
    assert_eq!(s.count(E::DirtyBitMiss), 1);
    assert_eq!(s.count(E::DirtyFault), 1);
}

/// Under FAULT, every pre-fault block pays a full excess fault — the
/// count scales with how many blocks were cached before the first
/// write, which is exactly why the paper's `N_ef` measures "previously
/// cached blocks".
#[test]
fn fault_pays_once_per_stale_block() {
    let mut s = Scenario::new(DirtyPolicy::Fault).unwrap();
    for b in 0..5 {
        s.read(2, b);
    }
    s.write(2, 0); // necessary
    for b in 1..5 {
        s.write(2, b); // four excess faults
    }
    assert_eq!(s.count(E::DirtyFault), 1);
    assert_eq!(s.count(E::ExcessFault), 4);
    // Second writes are free.
    for b in 0..5 {
        s.write(2, b);
    }
    assert_eq!(s.count(E::ExcessFault), 4);
}

/// FLUSH converts would-be excess faults into refetch misses: after the
/// faulting flush, the other pre-fault blocks are simply gone.
#[test]
fn flush_trades_excess_faults_for_misses() {
    let mut s = Scenario::new(DirtyPolicy::Flush).unwrap();
    for b in 0..5 {
        s.read(3, b);
    }
    let misses_before = s.count(E::ReadMiss) + s.count(E::WriteMiss);
    s.write(3, 0); // necessary fault + page flush
    for b in 1..5 {
        s.write(3, b); // all miss (flushed), none fault
    }
    assert_eq!(s.count(E::DirtyFault), 1);
    assert_eq!(s.count(E::ExcessFault), 0);
    let misses_after = s.count(E::ReadMiss) + s.count(E::WriteMiss);
    assert!(
        misses_after >= misses_before + 4,
        "the flushed blocks must refetch: {misses_before} -> {misses_after}"
    );
}

/// MIN and WRITE observe identical fault counts on a pure write-first
/// stream (no block is ever read before written, so WRITE's per-block
/// checks find nothing extra to charge faults for).
#[test]
fn min_and_write_agree_on_write_first_streams() {
    let mut totals = Vec::new();
    for dirty in [DirtyPolicy::Min, DirtyPolicy::Write] {
        let mut s = Scenario::new(dirty).unwrap();
        for page in 0..4 {
            for b in 0..8 {
                s.write(page, b);
            }
        }
        totals.push((s.count(E::DirtyFault), s.count(E::ExcessFault)));
    }
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[0].0, 4, "one necessary fault per page");
}

/// Zero-fill attribution: first-write faults on fresh heap pages are
/// the excluded `N_zfod` class; the Table 3.4 models then charge
/// nothing for a pure-allocation workload.
#[test]
fn pure_allocation_is_all_zero_fill() {
    let mut s = Scenario::new(DirtyPolicy::Spur).unwrap();
    for page in 0..6 {
        s.write(page, 0);
    }
    let ev = s.sim().events();
    assert_eq!(ev.n_ds, 6);
    assert_eq!(ev.n_zfod, 6, "every fault was on a fresh zero-filled page");
    let costs = spur_types::CostParams::paper();
    for p in DirtyPolicy::ALL {
        assert_eq!(
            p.overhead(&ev, &costs).raw(),
            0,
            "{p}: zero-fill-only workloads cost nothing beyond MIN"
        );
    }
}

/// Instruction fetches never trip the dirty-bit machinery.
#[test]
fn ifetches_are_dirty_neutral() {
    for dirty in DirtyPolicy::ALL {
        let mut s = Scenario::new(dirty).unwrap();
        for b in 0..16 {
            s.ifetch(4, b);
        }
        assert_eq!(s.count(E::DirtyFault), 0, "{dirty}");
        assert_eq!(s.count(E::ExcessFault), 0, "{dirty}");
        assert_eq!(s.count(E::DirtyBitMiss), 0, "{dirty}");
        assert!(!s.sim().vm().pte(s.page(4)).dirty(), "{dirty}");
    }
}
