//! Failure-injection tests: every public error path fires cleanly
//! instead of panicking or silently misbehaving.

use spur_core::baseline::{TlbConfig, TlbSystem};
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::process::ProcessSpec;
use spur_trace::stream::{Pid, TraceRef};
use spur_trace::workloads::Workload;
use spur_types::{AccessKind, Error, GlobalAddr, MemSize};

#[test]
fn inverted_watermarks_are_rejected() {
    let err = SpurSystem::new(SimConfig {
        free_low_water: 100,
        free_high_water: 50,
        ..SimConfig::default()
    })
    .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig(_)));
    assert!(err.to_string().contains("watermark"));
}

#[test]
fn kernel_reservation_exceeding_memory_is_rejected() {
    let err = SpurSystem::new(SimConfig {
        mem: MemSize::new(1),
        kernel_reserved_frames: 10_000,
        ..SimConfig::default()
    })
    .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig(_)));
}

#[test]
fn zero_and_excess_cpus_are_rejected() {
    for cpus in [0usize, 13, 64] {
        let err = SpurSystem::new(SimConfig {
            cpus,
            ..SimConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "cpus={cpus}");
    }
}

#[test]
fn reference_outside_every_region_is_reported() {
    let workload = Workload::build("tiny", vec![ProcessSpec::new("p", 8, 32, 8, 8)]).unwrap();
    let mut sim = SpurSystem::new(SimConfig::default()).unwrap();
    sim.load_workload(&workload).unwrap();
    let stray = TraceRef {
        pid: Pid(0),
        addr: GlobalAddr::from_parts(200, 0),
        kind: AccessKind::Write,
    };
    let err = sim.reference(stray).unwrap_err();
    assert!(matches!(err, Error::BadWorkload(_)));
    assert!(err.to_string().contains("no region"));
}

#[test]
fn overlapping_workload_registration_is_rejected() {
    // Loading the same workload twice re-registers identical regions.
    let workload = Workload::build("dup", vec![ProcessSpec::new("p", 8, 32, 8, 8)]).unwrap();
    let mut sim = SpurSystem::new(SimConfig::default()).unwrap();
    sim.load_workload(&workload).unwrap();
    let err = sim.load_workload(&workload).unwrap_err();
    assert!(matches!(err, Error::BadWorkload(_)));
}

#[test]
fn memory_too_small_for_the_working_set_exhausts_cleanly() {
    // 1 MB of memory minus the kernel reservation cannot hold the hot
    // set; the daemon fights, and if truly nothing is reclaimable the
    // simulator must surface NoFreeFrames instead of looping or
    // panicking. Either completing (daemon copes) or NoFreeFrames is
    // acceptable; a panic or wrong error is not.
    let workload = spur_trace::workloads::slc();
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::new(2),
        kernel_reserved_frames: 448,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    match sim.run(&mut workload.generator(1), 300_000) {
        Ok(()) => sim.check_invariants().unwrap(),
        Err(Error::NoFreeFrames) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn tlb_system_rejects_bad_workload_addresses_too() {
    let workload = Workload::build("tiny2", vec![ProcessSpec::new("p", 8, 32, 8, 8)]).unwrap();
    let mut sys = TlbSystem::new(TlbConfig::default()).unwrap();
    sys.load_workload(&workload).unwrap();
    let stray = TraceRef {
        pid: Pid(0),
        addr: GlobalAddr::from_parts(200, 0),
        kind: AccessKind::Read,
    };
    assert!(matches!(sys.reference(stray), Err(Error::BadWorkload(_))));
}

#[test]
fn workload_builders_validate_specs() {
    assert!(Workload::build("empty", vec![]).is_err());
    let zero_seg = ProcessSpec::new("z", 0, 32, 8, 8);
    assert!(Workload::build("zeroseg", vec![zero_seg]).is_err());
}
