//! Property-based tests over randomly generated small workloads: the
//! full system must uphold its invariants for *any* workload the trace
//! crate can express, not just the two calibrated ones.

use proptest::prelude::*;
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::process::{ProcessSpec, Schedule};
use spur_trace::workloads::Workload;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn arb_process(i: usize) -> impl Strategy<Value = ProcessSpec> {
    (
        8u64..64,     // code pages
        32u64..512,   // heap pages
        8u64..16,     // stack pages
        8u64..128,    // file pages
        1u32..4,      // weight
        prop::bool::ANY,
    )
        .prop_map(move |(code, heap, stack, file, weight, periodic)| {
            let mut p = ProcessSpec::new(&format!("p{i}"), code, heap, stack, file);
            p.weight = weight;
            if periodic {
                p.schedule = Schedule::Periodic {
                    active: 60_000,
                    idle: 40_000,
                    offset: (i as u64) * 20_000,
                };
            }
            p.behavior.phase_len = 50_000;
            p
        })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec(any::<u8>(), 1..4).prop_flat_map(|procs| {
        let n = procs.len();
        let mut strategies = Vec::new();
        for i in 0..n {
            strategies.push(arb_process(i));
        }
        strategies.prop_map(|specs| {
            let mut specs = specs;
            // Guarantee at least one always-on process so the scheduler
            // can always make progress.
            specs[0].schedule = Schedule::AlwaysOn;
            Workload::build("prop", specs).expect("generated spec is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any generated workload runs to completion under any policy pair
    /// with all cross-component invariants intact.
    #[test]
    fn random_workloads_uphold_invariants(
        workload in arb_workload(),
        seed in 0u64..1000,
        dirty_idx in 0usize..5,
        ref_idx in 0usize..3,
    ) {
        let dirty = DirtyPolicy::ALL[dirty_idx];
        let ref_policy = RefPolicy::ALL[ref_idx];
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::new(2),
            kernel_reserved_frames: 64,
            dirty,
            ref_policy,
            ..SimConfig::default()
        }).expect("config valid");
        sim.load_workload(&workload).expect("registers");
        sim.run(&mut workload.generator(seed), 60_000).expect("runs");
        prop_assert_eq!(sim.refs(), 60_000);
        if let Err(e) = sim.check_invariants() {
            return Err(TestCaseError::fail(format!("{dirty}/{ref_policy}: {e}")));
        }
        let ev = sim.events();
        prop_assert!(ev.misses <= ev.refs);
        prop_assert!(ev.n_zfod <= ev.n_ds);
        prop_assert!(ev.n_wmiss <= ev.misses);
    }

    /// The event record is a pure function of (workload, seed, config).
    #[test]
    fn runs_are_reproducible(seed in 0u64..50) {
        let workload = spur_trace::workloads::slc();
        let run = || {
            let mut sim = SpurSystem::new(SimConfig {
                mem: MemSize::MB5,
                ..SimConfig::default()
            }).unwrap();
            sim.load_workload(&workload).unwrap();
            sim.run(&mut workload.generator(seed), 50_000).unwrap();
            sim.events()
        };
        prop_assert_eq!(run(), run());
    }
}
