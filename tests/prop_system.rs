//! Randomized tests over generated small workloads: the full system
//! must uphold its invariants for *any* workload the trace crate can
//! express, not just the two calibrated ones. Inputs come from the
//! repository's deterministic [`SmallRng`].

use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::process::{ProcessSpec, Schedule};
use spur_trace::workloads::Workload;
use spur_types::rng::SmallRng;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn arb_process(rng: &mut SmallRng, i: usize) -> ProcessSpec {
    let code = rng.random_range(8u64..64);
    let heap = rng.random_range(32u64..512);
    let stack = rng.random_range(8u64..16);
    let file = rng.random_range(8u64..128);
    let mut p = ProcessSpec::new(&format!("p{i}"), code, heap, stack, file);
    p.weight = rng.random_range(1u32..4);
    if rng.random() {
        p.schedule = Schedule::Periodic {
            active: 60_000,
            idle: 40_000,
            offset: (i as u64) * 20_000,
        };
    }
    p.behavior.phase_len = 50_000;
    p
}

fn arb_workload(rng: &mut SmallRng) -> Workload {
    let n = rng.random_range(1usize..4);
    let mut specs: Vec<ProcessSpec> = (0..n).map(|i| arb_process(rng, i)).collect();
    // Guarantee at least one always-on process so the scheduler can
    // always make progress.
    specs[0].schedule = Schedule::AlwaysOn;
    Workload::build("prop", specs).expect("generated spec is valid")
}

/// Any generated workload runs to completion under any policy pair
/// with all cross-component invariants intact.
#[test]
fn random_workloads_uphold_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x5457_0001);
    for case in 0..12 {
        let workload = arb_workload(&mut rng);
        let seed = rng.random_range(0u64..1000);
        let dirty = DirtyPolicy::ALL[case % 5];
        let ref_policy = RefPolicy::ALL[case % 3];
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::new(2),
            kernel_reserved_frames: 64,
            dirty,
            ref_policy,
            ..SimConfig::default()
        })
        .expect("config valid");
        sim.load_workload(&workload).expect("registers");
        sim.run(&mut workload.generator(seed), 60_000)
            .expect("runs");
        assert_eq!(sim.refs(), 60_000);
        if let Err(e) = sim.check_invariants() {
            panic!("{dirty}/{ref_policy}: {e}");
        }
        let ev = sim.events();
        assert!(ev.misses <= ev.refs);
        assert!(ev.n_zfod <= ev.n_ds);
        assert!(ev.n_wmiss <= ev.misses);
    }
}

/// The event record is a pure function of (workload, seed, config).
#[test]
fn runs_are_reproducible() {
    let mut rng = SmallRng::seed_from_u64(0x5457_0002);
    for _ in 0..4 {
        let seed = rng.random_range(0u64..50);
        let workload = spur_trace::workloads::slc();
        let run = || {
            let mut sim = SpurSystem::new(SimConfig {
                mem: MemSize::MB5,
                ..SimConfig::default()
            })
            .unwrap();
            sim.load_workload(&workload).unwrap();
            sim.run(&mut workload.generator(seed), 50_000).unwrap();
            sim.events()
        };
        assert_eq!(run(), run());
    }
}
