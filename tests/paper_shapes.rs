//! Shape tests: quick-scale runs must reproduce the qualitative results
//! the paper reports. These are the repository's reproduction gates —
//! the full regenerations live in `spur-bench`, but these assertions keep
//! the shapes from silently regressing.

use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::events::measure_events;
use spur_core::experiments::overhead::{model_vs_measured, table_3_4};
use spur_core::experiments::refbit::measure_refbit;
use spur_core::experiments::Scale;
use spur_trace::workloads::{slc, workload1};
use spur_types::{CostParams, MemSize};
use spur_vm::policy::RefPolicy;

fn quick() -> Scale {
    Scale {
        refs: 2_000_000,
        seed: 1989,
        reps: 1,
        dev_refs_per_hour: 120_000,
    }
}

#[test]
fn dirty_bit_overhead_ordering_matches_table_3_4() {
    // MIN <= SPUR < FAULT <= FLUSH for both workloads at 5 MB, with
    // SPUR's famous 1.03 and FLUSH's exact 1.50.
    let scale = quick();
    for workload in [slc(), workload1()] {
        let row = measure_events(&workload, MemSize::MB5, &scale).unwrap();
        let overheads = table_3_4(std::slice::from_ref(&row), &CostParams::paper());
        let t = &overheads[0];
        let min = t.relative(DirtyPolicy::Min);
        let spur = t.relative(DirtyPolicy::Spur);
        let fault = t.relative(DirtyPolicy::Fault);
        let flush = t.relative(DirtyPolicy::Flush);
        let write = t.relative(DirtyPolicy::Write);
        assert!((min - 1.0).abs() < 1e-9);
        assert!((spur - 1.03).abs() < 0.02, "{}: SPUR {spur}", row.workload);
        assert!(
            spur < fault,
            "{}: SPUR {spur} !< FAULT {fault}",
            row.workload
        );
        assert!(fault < 1.45, "{}: FAULT {fault} too costly", row.workload);
        assert!(
            (flush - 1.50).abs() < 0.01,
            "{}: FLUSH {flush}",
            row.workload
        );
        assert!(
            write > fault,
            "{}: WRITE {write} must beat no one",
            row.workload
        );
    }
}

#[test]
fn excess_faults_are_a_modest_fraction_of_necessary_faults() {
    // Abstract: "these account for only 19% of the total faults, on
    // average"; Section 3.2: 15-34% excluding zero-fills.
    let scale = quick();
    let mut ratios = Vec::new();
    for workload in [slc(), workload1()] {
        for mem in [MemSize::MB5, MemSize::MB8] {
            let row = measure_events(&workload, mem, &scale).unwrap();
            let r = row.events.excess_fraction_excluding_zfod();
            assert!(
                (0.02..0.60).contains(&r),
                "{} @ {mem}: excess ratio {r} outside plausible band",
                workload.name()
            );
            ratios.push(r);
        }
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!((0.10..0.45).contains(&avg), "average excess ratio {avg}");
}

#[test]
fn read_before_write_is_roughly_one_fifth() {
    let scale = quick();
    for workload in [slc(), workload1()] {
        let row = measure_events(&workload, MemSize::MB5, &scale).unwrap();
        let frac = row.events.read_before_write_fraction();
        assert!(
            (0.10..0.30).contains(&frac),
            "{}: read-before-write {frac}",
            workload.name()
        );
    }
}

#[test]
fn geometric_model_tracks_measurement() {
    let scale = quick();
    let rows: Vec<_> = [slc(), workload1()]
        .iter()
        .map(|w| measure_events(w, MemSize::MB5, &scale).unwrap())
        .collect();
    for m in model_vs_measured(&rows) {
        assert!(m.p_w > 0.6, "{}: p_w {}", m.workload, m.p_w);
        // The model upper-bounds broadly; both should be sub-50%.
        assert!(m.predicted_ratio < 0.5);
        assert!(m.measured_ratio < 0.6);
    }
}

#[test]
fn noref_pages_more_at_small_memory_and_is_near_parity_at_large() {
    let scale = quick();
    let w = workload1();
    let miss5 = measure_refbit(&w, MemSize::MB5, RefPolicy::Miss, &scale).unwrap();
    let noref5 = measure_refbit(&w, MemSize::MB5, RefPolicy::Noref, &scale).unwrap();
    assert!(
        noref5.page_ins > miss5.page_ins * 1.05,
        "NOREF must page more at 5 MB: {} vs {}",
        noref5.page_ins,
        miss5.page_ins
    );
    assert!(
        noref5.page_ins < miss5.page_ins * 3.0,
        "NOREF's penalty must stay survivable (Sprite's free-list reclaim)"
    );

    let miss8 = measure_refbit(&w, MemSize::MB8, RefPolicy::Miss, &scale).unwrap();
    let noref8 = measure_refbit(&w, MemSize::MB8, RefPolicy::Noref, &scale).unwrap();
    let blowup5 = noref5.page_ins / miss5.page_ins;
    let blowup8 = noref8.page_ins / miss8.page_ins.max(1.0);
    assert!(
        blowup8 < blowup5,
        "NOREF's penalty must shrink with memory: {blowup8} !< {blowup5}"
    );
}

#[test]
fn ref_policy_always_loses_on_elapsed_time() {
    let scale = quick();
    for workload in [slc(), workload1()] {
        for mem in [MemSize::MB5, MemSize::MB8] {
            let miss = measure_refbit(&workload, mem, RefPolicy::Miss, &scale).unwrap();
            let r = measure_refbit(&workload, mem, RefPolicy::Ref, &scale).unwrap();
            assert!(
                r.elapsed_secs >= miss.elapsed_secs * 0.999,
                "{} @ {mem}: REF ({}) beat MISS ({})",
                workload.name(),
                r.elapsed_secs,
                miss.elapsed_secs
            );
        }
    }
}

#[test]
fn noref_never_takes_reference_faults_and_miss_does() {
    let scale = quick();
    let w = slc();
    let miss = measure_refbit(&w, MemSize::MB5, RefPolicy::Miss, &scale).unwrap();
    let noref = measure_refbit(&w, MemSize::MB5, RefPolicy::Noref, &scale).unwrap();
    assert_eq!(noref.ref_faults, 0.0);
    assert!(
        miss.ref_faults > 0.0,
        "5 MB pressure must clear some R bits"
    );
}
