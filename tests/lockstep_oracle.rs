//! Differential oracle integration tests: the independently written
//! `spur-check` oracle locksteps real simulations across the shipped
//! workloads and the full policy space, plus fuzzer determinism and the
//! checker's own mutation self-test.
//!
//! These runs are sized for a debug build; the exhaustive release-mode
//! matrix (every workload × 5 dirty × 3 ref policies at 30k refs) is
//! `spur-fuzz --matrix` in the CI `check-smoke` job.

use spur_check::{run_case, FuzzCase, FuzzOutcome, Lockstep};
use spur_core::{DirtyPolicy, SimConfig};
use spur_trace::workloads::{mp_workers, slc, workload1, Workload};
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

/// Locksteps `workload` for `refs` references; panics with the full
/// divergence report on the first disagreement.
fn lockstep(workload: &Workload, config: SimConfig, seed: u64, refs: u64) {
    let mut lock = Lockstep::new(config).unwrap();
    lock.load_workload(workload).unwrap();
    let mut gen = workload.generator(seed);
    let n = lock
        .run(&mut gen, refs)
        .unwrap_or_else(|d| panic!("{} diverged:\n{d}", workload.name()));
    assert_eq!(n, refs, "{}: generator ran dry", workload.name());
}

#[test]
fn every_dirty_policy_locksteps_on_workload1_and_slc() {
    for workload in [workload1(), slc()] {
        for dirty in DirtyPolicy::ALL {
            let config = SimConfig {
                mem: MemSize::new(5),
                dirty,
                ..SimConfig::default()
            };
            lockstep(&workload, config, 7, 20_000);
        }
    }
}

#[test]
fn every_ref_policy_locksteps_on_slc_under_spur() {
    for ref_policy in RefPolicy::ALL {
        let config = SimConfig {
            mem: MemSize::new(5),
            dirty: DirtyPolicy::Spur,
            ref_policy,
            ..SimConfig::default()
        };
        lockstep(&slc(), config, 11, 20_000);
    }
}

#[test]
fn multiprocessor_coherency_locksteps() {
    // Four CPUs sharing pages: the oracle must track Berkeley ownership
    // (snoop invalidations, exclusive downgrades) across cache images.
    let workload = mp_workers(4, 128);
    for dirty in [DirtyPolicy::Min, DirtyPolicy::Spur, DirtyPolicy::Flush] {
        let config = SimConfig {
            mem: MemSize::new(5),
            dirty,
            cpus: 4,
            ..SimConfig::default()
        };
        lockstep(&workload, config, 13, 20_000);
    }
}

#[test]
fn fuzz_cases_are_deterministic_and_pass_differentially() {
    for seed in 0..20u64 {
        let a = FuzzCase::generate(seed);
        let b = FuzzCase::generate(seed);
        assert_eq!(a, b, "generation must be a pure function of the seed");
        match run_case(&a) {
            FuzzOutcome::Pass { .. } => {}
            FuzzOutcome::Fail {
                failing_index,
                divergence,
            } => panic!("fuzz seed {seed} diverged at ref {failing_index}:\n{divergence}"),
        }
    }
}

#[test]
fn an_injected_divergence_is_caught_and_shrunk_small() {
    // The checker's own falsifiability proof: a deliberately wrong
    // oracle (SPUR dirty-bit refresh skipped) must be detected and the
    // failure shrunk to a handful of references.
    let report = spur_check::mutation_selftest().unwrap();
    assert!(
        report.shrunk.refs.len() <= 20,
        "shrunk repro has {} refs",
        report.shrunk.refs.len()
    );
    assert!(
        report.divergence.to_string().contains("DirtyBitMiss"),
        "the divergence must implicate the dirty-bit refresh:\n{}",
        report.divergence
    );
}
