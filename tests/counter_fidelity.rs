//! The paper's measurement methodology, end to end: the CC chip's
//! counters record only the mode register's event set, so the paper ran
//! its deterministic workloads once per mode. Four hardware-faithful
//! passes must reconstruct exactly what one promiscuous pass records.

use spur_cache::counters::CounterMode;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::slc;
use spur_types::MemSize;

fn run(counter_mode: Option<CounterMode>) -> SpurSystem {
    let workload = slc();
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB5,
        counter_mode,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(1989), 400_000).unwrap();
    sim
}

#[test]
fn four_hardware_passes_equal_one_promiscuous_pass() {
    let promiscuous = run(None);
    for mode in CounterMode::ALL {
        let hw = run(Some(mode));
        for event in mode.events() {
            assert_eq!(
                hw.counters().total(event),
                promiscuous.counters().total(event),
                "mode {mode}, event {event}"
            );
            // And the architectural 32-bit register agrees (no wrap at
            // this scale).
            let (_, slot) = event.mode_slot();
            assert_eq!(
                u64::from(hw.counters().read_slot(slot)),
                promiscuous.counters().total(event),
                "register {slot} of {mode}"
            );
        }
    }
}

#[test]
fn hardware_mode_does_not_perturb_the_simulation() {
    // Counting configuration must never change behavior: cycles, events,
    // paging — all identical.
    let a = run(None);
    let b = run(Some(CounterMode::Translation));
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.misses(), b.misses());
    assert_eq!(a.vm().stats().page_ins, b.vm().stats().page_ins);
}
