//! The paper's measurement methodology, end to end: the CC chip's
//! counters record only the mode register's event set, so the paper ran
//! its deterministic workloads once per mode. Four hardware-faithful
//! passes must reconstruct exactly what one promiscuous pass records.

use spur_cache::counters::{CounterEvent, CounterMode};
use spur_core::system::{SimConfig, SpurSystem};
use spur_core::ObsParams;
use spur_obs::EventKind;
use spur_trace::workloads::slc;
use spur_types::MemSize;

fn run(counter_mode: Option<CounterMode>) -> SpurSystem {
    let workload = slc();
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB5,
        counter_mode,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(1989), 400_000).unwrap();
    sim
}

#[test]
fn four_hardware_passes_equal_one_promiscuous_pass() {
    let promiscuous = run(None);
    for mode in CounterMode::ALL {
        let hw = run(Some(mode));
        for &event in mode.events() {
            assert_eq!(
                hw.counters().total(event),
                promiscuous.counters().total(event),
                "mode {mode}, event {event}"
            );
            // And the architectural 32-bit register agrees (no wrap at
            // this scale).
            let (_, slot) = event.mode_slot();
            assert_eq!(
                u64::from(hw.counters().read_slot(slot)),
                promiscuous.counters().total(event),
                "register {slot} of {mode}"
            );
        }
    }
}

#[test]
fn hardware_mode_does_not_perturb_the_simulation() {
    // Counting configuration must never change behavior: cycles, events,
    // paging — all identical.
    let a = run(None);
    let b = run(Some(CounterMode::Translation));
    assert_eq!(a.cycles(), b.cycles());
    assert_eq!(a.misses(), b.misses());
    assert_eq!(a.vm().stats().page_ins, b.vm().stats().page_ins);
}

/// The counter the promiscuous pass records for each traced event kind.
fn counter_for(kind: EventKind) -> CounterEvent {
    match kind {
        EventKind::IFetchMiss => CounterEvent::IFetchMiss,
        EventKind::ReadMiss => CounterEvent::ReadMiss,
        EventKind::WriteMiss => CounterEvent::WriteMiss,
        EventKind::PteCacheMiss => CounterEvent::PteCacheMiss,
        EventKind::SecondLevelFetch => CounterEvent::SecondLevelFetch,
        EventKind::DirtyFault => CounterEvent::DirtyFault,
        EventKind::ExcessFault => CounterEvent::ExcessFault,
        EventKind::DirtyBitMiss => CounterEvent::DirtyBitMiss,
        EventKind::RefFault => CounterEvent::RefFault,
        EventKind::ProtFault => CounterEvent::ProtFault,
        EventKind::ZeroFill => CounterEvent::ZeroFill,
        EventKind::PageIn => CounterEvent::PageIn,
        EventKind::PageOut => CounterEvent::PageOut,
        EventKind::DaemonScan => CounterEvent::DaemonScan,
        EventKind::SoftFault => CounterEvent::SoftFault,
        EventKind::PageFlush => CounterEvent::PageFlush,
        EventKind::CoherenceInvalidate => CounterEvent::Invalidation,
        EventKind::OwnershipTransfer => CounterEvent::OwnerSupply,
    }
}

#[test]
fn event_trace_reconciles_with_the_counters() {
    // The observability layer is a third witness to the same methodology:
    // every event it records must reconcile exactly with the CC chip's
    // counters — the trace is the counters, itemized. Run once with
    // event batching off (batch = 1: every event lands in the ring
    // immediately) and once with it on: the reconciliation must hold
    // either way, and the two recorders must be indistinguishable —
    // same retained events in the same order, same per-kind totals.
    let mut reports = Vec::new();
    for batch in [1, ObsParams::DEFAULT_BATCH] {
        let workload = slc();
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::MB5,
            ..SimConfig::default()
        })
        .unwrap();
        sim.enable_obs(ObsParams {
            batch,
            ..ObsParams::default()
        });
        sim.load_workload(&workload).unwrap();
        sim.run(&mut workload.generator(1989), 400_000).unwrap();
        let report = sim.finish_obs().expect("obs was enabled");
        for kind in EventKind::ALL {
            assert_eq!(
                report.emitted(kind),
                sim.counters().total(counter_for(kind)),
                "traced {kind:?} must equal its counter (batch {batch})"
            );
        }
        reports.push(report);
    }
    let (unbatched, batched) = (&reports[0], &reports[1]);
    assert_eq!(
        unbatched.recorder.emitted_total(),
        batched.recorder.emitted_total(),
        "batching must not change the emitted total"
    );
    assert_eq!(
        unbatched.recorder.events(),
        batched.recorder.events(),
        "batching must preserve exact emission order in the ring"
    );
    assert_eq!(unbatched.recorder.dropped(), batched.recorder.dropped());
}

#[test]
fn observability_does_not_perturb_the_counters() {
    // Tracing must be a pure observer: the counters (and hence every
    // paper table derived from them) are identical with it on or off.
    let plain = run(None);
    let workload = slc();
    let mut traced = SpurSystem::new(SimConfig {
        mem: MemSize::MB5,
        ..SimConfig::default()
    })
    .unwrap();
    traced.enable_obs(ObsParams {
        epoch: Some(50_000),
        ..ObsParams::default()
    });
    traced.load_workload(&workload).unwrap();
    traced.run(&mut workload.generator(1989), 400_000).unwrap();
    assert_eq!(plain.cycles(), traced.cycles());
    assert_eq!(plain.misses(), traced.misses());
    for kind in EventKind::ALL {
        let event = counter_for(kind);
        assert_eq!(
            plain.counters().total(event),
            traced.counters().total(event),
            "{event} changed under tracing"
        );
    }
}
