//! The trace-driven methodology end to end: record once, replay the
//! *identical* stream through different policies — Section 2's "precise
//! repeatability" argument as an executable property.

use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::record::RecordedTrace;
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

#[test]
fn replayed_trace_drives_the_simulator_identically_to_the_generator() {
    let workload = slc();
    let n = 150_000u64;
    let trace = RecordedTrace::record(workload.generator(31).take(n as usize));

    fn run<I: Iterator<Item = spur_trace::stream::TraceRef>>(
        workload: &spur_trace::workloads::Workload,
        mut refs: I,
        n: u64,
    ) -> spur_core::events::EventCounts {
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::MB5,
            ..SimConfig::default()
        })
        .unwrap();
        sim.load_workload(workload).unwrap();
        sim.run(&mut refs, n).unwrap();
        sim.events()
    }

    let live = run(&workload, workload.generator(31), n);
    let replayed = run(&workload, trace.iter(), n);
    assert_eq!(
        live, replayed,
        "replay must be indistinguishable from generation"
    );
}

#[test]
fn one_recording_serves_every_policy() {
    // The whole point of trace-driven evaluation: each policy sees the
    // same input, so differences are attributable to the policy alone.
    let workload = slc();
    let trace = RecordedTrace::record(workload.generator(33).take(120_000));

    let mut n_ds = Vec::new();
    for dirty in DirtyPolicy::ALL {
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::MB8,
            dirty,
            ref_policy: RefPolicy::Miss,
            ..SimConfig::default()
        })
        .unwrap();
        sim.load_workload(&workload).unwrap();
        sim.run(&mut trace.iter(), trace.len()).unwrap();
        n_ds.push(sim.events().n_ds);
        sim.check_invariants().unwrap();
    }
    for pair in n_ds.windows(2) {
        assert_eq!(pair[0], pair[1], "same trace, same necessary faults");
    }
}

#[test]
fn serialized_trace_survives_a_disk_round_trip() {
    let workload = slc();
    let trace = RecordedTrace::record(workload.generator(35).take(30_000));
    let path = std::env::temp_dir().join("spur_trace_roundtrip.bin");
    std::fs::write(&path, trace.to_bytes()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let back = RecordedTrace::from_bytes(&bytes).unwrap();
    assert_eq!(trace, back);
    // Storage cost stays within the documented envelope.
    assert!(back.bytes_per_ref() < 6.0);
}
