//! Determinism and counter-faithfulness: the properties the paper's
//! methodology rests on ("synthetic workloads that could be repeated with
//! different paging policies and memory sizes").

use spur_cache::counters::{CounterEvent, CounterMode, PerfCounters};
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

const RUN: u64 = 200_000;

fn events_for(seed: u64) -> spur_core::events::EventCounts {
    let workload = slc();
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB5,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(seed), RUN).unwrap();
    sim.events()
}

#[test]
fn identical_seeds_give_identical_event_records() {
    assert_eq!(events_for(77), events_for(77));
}

#[test]
fn different_seeds_differ_somewhere() {
    let a = events_for(77);
    let b = events_for(78);
    assert_ne!(a, b, "seeds must matter");
}

#[test]
fn hardware_counter_mode_matches_promiscuous_across_repeated_runs() {
    // The paper measured different event sets by re-running the
    // deterministic workload once per counter mode. Verify that four
    // hardware-faithful passes reconstruct exactly what one promiscuous
    // pass sees.
    let workload = slc();
    let run = || {
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::MB5,
            dirty: DirtyPolicy::Spur,
            ref_policy: RefPolicy::Miss,
            ..SimConfig::default()
        })
        .unwrap();
        sim.load_workload(&workload).unwrap();
        sim.run(&mut workload.generator(5), RUN).unwrap();
        sim
    };

    // One promiscuous pass (the simulator default).
    let promiscuous = run();

    // Four hardware passes: replay the identical run, then re-count the
    // promiscuous totals through a mode-gated hardware counter bank.
    for mode in CounterMode::ALL {
        let replay = run();
        let mut hw = PerfCounters::new(mode);
        for event in [
            CounterEvent::IFetch,
            CounterEvent::Read,
            CounterEvent::Write,
            CounterEvent::ReadMiss,
            CounterEvent::PteProbe,
            CounterEvent::PteCacheHit,
            CounterEvent::DirtyFault,
            CounterEvent::DirtyBitMiss,
            CounterEvent::RefFault,
            CounterEvent::PageIn,
        ] {
            hw.record_n(event, replay.counters().total(event));
            let (event_mode, slot) = event.mode_slot();
            if event_mode == mode {
                assert_eq!(
                    u64::from(hw.read_slot(slot)),
                    promiscuous.counters().total(event) & 0xffff_ffff,
                    "mode {mode}: {event} disagrees"
                );
            }
        }
    }
}

#[test]
fn dirty_policy_does_not_perturb_the_reference_stream() {
    // The generator is independent of the simulator: the same seed
    // produces the same trace regardless of which policy consumes it.
    let workload = slc();
    let a: Vec<_> = workload.generator(9).take(10_000).collect();
    let b: Vec<_> = workload.generator(9).take(10_000).collect();
    assert_eq!(a, b);
}

#[test]
fn repetitions_with_different_seeds_have_bounded_spread() {
    // The paper ran five randomized repetitions per point; our seeds play
    // that role. Spread should be noticeable but not wild.
    let page_ins: Vec<u64> = (0..4).map(|s| events_for(100 + s).page_ins).collect();
    let min = *page_ins.iter().min().unwrap();
    let max = *page_ins.iter().max().unwrap();
    assert!(min > 0, "5 MB must page");
    assert!(
        max < min * 3,
        "seed spread too wild: {page_ins:?} (workload structure should dominate)"
    );
}
