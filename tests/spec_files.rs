//! The checked-in workload spec files must parse, round-trip, and run.

use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::spec::{format_workload, parse_workload};
use spur_types::MemSize;

fn check_spec(path: &str, expect_shared: bool) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let workload = parse_workload(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(workload.shared_region().is_some(), expect_shared, "{path}");

    // Round trip.
    let again = parse_workload(&format_workload(&workload)).unwrap();
    assert_eq!(workload.processes(), again.processes(), "{path}");

    // And it runs.
    let cpus = if expect_shared { 4 } else { 1 };
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB8,
        cpus,
        ..SimConfig::default()
    })
    .unwrap();
    sim.load_workload(&workload).unwrap();
    sim.run(&mut workload.generator(1), 100_000).unwrap();
    sim.check_invariants().unwrap();
    assert_eq!(sim.refs(), 100_000, "{path}");
}

#[test]
fn dbmix_spec_parses_and_runs() {
    check_spec("examples/workloads/dbmix.spec", false);
}

#[test]
fn mp_shared_spec_parses_and_runs_on_four_cpus() {
    check_spec("examples/workloads/mp_shared.spec", true);
}
