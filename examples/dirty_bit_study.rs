//! The Section 3 dirty-bit study in miniature: run one workload at one
//! memory size, measure the event frequencies (Table 3.3 style), then
//! compare all five dirty-bit alternatives both ways — with the paper's
//! closed-form overhead models AND by direct simulation of each
//! mechanism.
//!
//! ```text
//! cargo run --release --example dirty_bit_study
//! ```

use spur_core::dirty::DirtyPolicy;
use spur_core::experiments::events::measure_events;
use spur_core::experiments::overhead::direct_elapsed;
use spur_core::experiments::Scale;
use spur_core::model::ExcessFaultModel;
use spur_trace::workloads::workload1;
use spur_types::{CostParams, MemSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        refs: 4_000_000,
        seed: 7,
        reps: 1,
        dev_refs_per_hour: 0,
    };
    let workload = workload1();
    let mem = MemSize::MB6;
    println!(
        "measuring {} at {mem} ({} references)...\n",
        workload.name(),
        scale.refs
    );

    // Step 1: one instrumented run (the paper's methodology — the
    // prototype ran its native SPUR mechanism while the counters
    // watched).
    let row = measure_events(&workload, mem, &scale)?;
    let ev = &row.events;
    println!("event frequencies: {ev}");
    println!(
        "excess/necessary (excl. zero-fills): {:.1}%",
        100.0 * ev.excess_fraction_excluding_zfod()
    );

    // Step 2: the footnote-3 analytic model.
    let model = ExcessFaultModel::from_events(ev);
    println!("geometric model: {model}\n");

    // Step 3: closed-form overheads (Table 3.4's method).
    let costs = CostParams::paper();
    println!("closed-form overheads (Section 3.2 models):");
    let min = DirtyPolicy::Min.overhead(ev, &costs);
    for policy in DirtyPolicy::ALL {
        let o = policy.overhead(ev, &costs);
        println!(
            "  {:<6} {:>8.3} Mcycles  ({:.2} relative to MIN)",
            policy.to_string(),
            o.millions(),
            o.relative_to(min)
        );
    }

    // Step 4: direct simulation of every mechanism (the ablation the
    // paper could not run — it had one prototype).
    println!("\ndirect simulation (total elapsed cycles per policy):");
    let direct = direct_elapsed(&workload, mem, &scale)?;
    let min_direct = direct
        .iter()
        .find(|(p, _)| *p == DirtyPolicy::Min)
        .expect("MIN is in ALL")
        .1;
    for (policy, cycles) in &direct {
        println!(
            "  {:<6} {:>10.1} Mcycles total  (+{:.3}% over MIN)",
            policy.to_string(),
            cycles.millions(),
            100.0 * (cycles.raw() as f64 - min_direct.raw() as f64) / min_direct.raw() as f64,
        );
    }
    println!(
        "\nBoth views agree on the paper's conclusion: protection-based\n\
         emulation (FAULT) is within a few percent of any hardware scheme,\n\
         so dirty bits need no special hardware support."
    );
    Ok(())
}
