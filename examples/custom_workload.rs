//! Building your own workload: the library-user story.
//!
//! Defines a bespoke two-process workload from scratch (a database-like
//! server with a read-mostly buffer pool plus a batch writer), inspects
//! its characterization, and runs the dirty-bit study on it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::characterize::characterize;
use spur_trace::process::{BehaviorSpec, ProcessSpec, Schedule};
use spur_trace::stream::RefMix;
use spur_trace::workloads::Workload;
use spur_types::{CostParams, MemSize};
use spur_vm::policy::RefPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "database server": large read-mostly file data (the buffer
    // pool), modest heap, light writes.
    let mut server = ProcessSpec::new("dbserver", 96, 512, 16, 1536);
    server.weight = 3;
    server.behavior = BehaviorSpec {
        mix: RefMix::new(45, 45, 10),
        code_hot_pages: 32,
        heap_hot_pages: 96,
        file_hot_pages: 420,
        heap_frac: 0.3,
        stack_frac: 0.05,
        phase_len: 3_000_000,
        phase_shift_frac: 0.15,
        ..BehaviorSpec::baseline()
    };

    // A nightly batch writer: wakes periodically, rewrites chunks of the
    // data set (write-heavy, sequential).
    let mut batch = ProcessSpec::new("batch-writer", 24, 768, 8, 256);
    batch.schedule = Schedule::Periodic {
        active: 2_000_000,
        idle: 6_000_000,
        offset: 1_000_000,
    };
    batch.behavior = BehaviorSpec {
        mix: RefMix::new(40, 30, 30),
        heap_hot_pages: 220,
        alloc_write_frac: 0.25,
        seq_prob: 0.9,
        phase_len: 1_000_000,
        ..BehaviorSpec::baseline()
    };

    let workload = Workload::build("DBMIX", vec![server, batch])?;

    println!("== characterization ==");
    let c = characterize(&workload, 7, 3_000_000, 300_000);
    print!("{}", c.render(workload.name()));

    println!("\n== dirty-bit study at 6 MB ==");
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB6,
        dirty: DirtyPolicy::Spur,
        ref_policy: RefPolicy::Miss,
        ..SimConfig::default()
    })?;
    sim.load_workload(&workload)?;
    sim.run(&mut workload.generator(7), 3_000_000)?;
    let ev = sim.events();
    println!("{ev}");
    println!(
        "excess/necessary (excl. zero-fills): {:.1}%",
        100.0 * ev.excess_fraction_excluding_zfod()
    );

    let costs = CostParams::paper();
    let min = DirtyPolicy::Min.overhead(&ev, &costs);
    println!("\npolicy overheads on this workload:");
    for p in DirtyPolicy::ALL {
        let o = p.overhead(&ev, &costs);
        println!(
            "  {:<6} {:>8.3} Mcycles ({:.2}x MIN)",
            p.to_string(),
            o.millions(),
            o.relative_to(min)
        );
    }
    println!(
        "\nEven on a bespoke workload the paper's conclusion holds: the gap\n\
         between FAULT emulation and the best hardware scheme stays small."
    );
    Ok(())
}
