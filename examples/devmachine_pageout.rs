//! The Section 3.3 question — "what do dirty bits actually buy?" — asked
//! of one simulated Sprite development machine (Table 3.5 style).
//!
//! ```text
//! cargo run --release --example devmachine_pageout
//! ```

use spur_core::experiments::pageout::measure_host;
use spur_core::experiments::Scale;
use spur_trace::workloads::DevHost;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let host = DevHost {
        name: "mace",
        mem_mb: 8,
        uptime_hours: 24,
        seed: 101,
    };
    let scale = Scale {
        refs: 0, // unused by the page-out study
        seed: 1,
        reps: 1,
        dev_refs_per_hour: 300_000,
    };

    println!(
        "simulating {} ({} MB) for {} hours of development activity...\n",
        host.name, host.mem_mb, host.uptime_hours
    );
    let row = measure_host(&host, &scale)?;

    println!("page-ins                     {:>8}", row.page_ins);
    println!(
        "writable pages replaced      {:>8}",
        row.potentially_modified
    );
    println!("  of which clean (saved I/O) {:>8}", row.not_modified);
    println!(
        "percent not modified         {:>7.1}%",
        row.pct_not_modified
    );
    println!(
        "additional I/O without D bit {:>7.1}%",
        row.pct_additional_io
    );

    println!(
        "\nWith ~{:.0}% of modifiable pages dirty at replacement, dropping\n\
         dirty bits entirely would grow paging I/O by only ~{:.0}% — the\n\
         paper's argument that their benefit shrinks as memory grows.",
        100.0 - row.pct_not_modified,
        row.pct_additional_io.ceil(),
    );
    Ok(())
}
