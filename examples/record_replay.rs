//! Trace recording and replay: the paper's "precise repeatability"
//! methodology as a workflow, end to end through the scenario engine.
//! Record a workload prefix once, save it where the committed
//! `scenarios/record_replay.json` config expects it, then run that
//! scenario — the engine replays the identical reference stream
//! through the full policy machinery and checks the config's
//! expected-shape assertions.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```
//!
//! The determinism integration test (`crates/scenario/tests/
//! determinism.rs`) proves the stronger property this workflow relies
//! on: a trace-workload scenario produces artifacts byte-identical to
//! the same cells run from the live generator.

use spur_core::experiments::Scale;
use spur_scenario::{run_scenario, RunnerOptions, Scenario};
use spur_trace::record::RecordedTrace;
use spur_trace::workloads::workload1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = workload1();
    // The committed scenario runs at quick scale; record exactly the
    // prefix it will replay, from the same seed.
    let scale = Scale::quick();

    // 1. Record.
    let trace = RecordedTrace::record(workload.generator(scale.seed).take(scale.refs as usize));
    println!(
        "recorded {} references in {} KB ({:.2} bytes/ref)",
        trace.len(),
        trace.encoded_bytes() / 1024,
        trace.bytes_per_ref()
    );

    // 2. Save where scenarios/record_replay.json looks for it (the
    //    paper's traces were too big to store; ours are not).
    std::fs::create_dir_all("results")?;
    let path = "results/record_replay.spurtrace";
    trace.save(path)?;
    println!("saved {path}");

    // 3. Replay through the scenario engine: same parser, expansion,
    //    and assertion evaluation the spur-scenario CLI uses.
    let config = std::fs::read_to_string("scenarios/record_replay.json")?;
    let scenario = Scenario::parse_str(&config)?;
    let opts = RunnerOptions {
        obs_enabled: false,
        persist: false,
        ..RunnerOptions::default()
    };
    let run = run_scenario(&scenario, &opts)?;
    println!("\n{}", run.to_json(&scenario.name).encode_pretty());

    if run.passed() {
        println!(
            "\nSame trace, same necessary faults — the differences are pure policy,\n\
             which is exactly what trace-driven methodology buys."
        );
        Ok(())
    } else {
        Err("replayed scenario failed its assertions".into())
    }
}
