//! Trace recording and replay: the paper's "precise repeatability"
//! methodology as a workflow. Record a workload prefix once, save it,
//! reload it, and replay the identical stream through two different
//! policies.
//!
//! ```text
//! cargo run --release --example record_replay
//! ```

use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::record::RecordedTrace;
use spur_trace::workloads::workload1;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = workload1();
    let n = 1_000_000usize;

    // 1. Record.
    let trace = RecordedTrace::record(workload.generator(99).take(n));
    println!(
        "recorded {} references in {} KB ({:.2} bytes/ref)",
        trace.len(),
        trace.encoded_bytes() / 1024,
        trace.bytes_per_ref()
    );

    // 2. Save and reload (the paper's traces were too big to store;
    //    ours are not).
    let path = std::env::temp_dir().join("workload1_1M.spurtrace");
    trace.save(&path)?;
    let reloaded = RecordedTrace::load(&path)?;
    std::fs::remove_file(&path).ok();
    println!("round-tripped through {} successfully", path.display());

    // 3. Replay the identical stream under two dirty-bit mechanisms.
    for dirty in [DirtyPolicy::Fault, DirtyPolicy::Spur] {
        let mut sim = SpurSystem::new(SimConfig {
            mem: MemSize::MB6,
            dirty,
            ref_policy: RefPolicy::Miss,
            ..SimConfig::default()
        })?;
        sim.load_workload(&workload)?;
        sim.run(&mut reloaded.iter(), reloaded.len())?;
        let ev = sim.events();
        println!(
            "{dirty:<6}: N_ds={} N_ef={} elapsed={:.2}s",
            ev.n_ds,
            ev.n_ef,
            ev.elapsed_seconds()
        );
    }
    println!(
        "\nSame trace, same necessary faults — the differences are pure policy,\n\
         which is exactly what trace-driven methodology buys."
    );
    Ok(())
}
