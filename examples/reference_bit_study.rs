//! The Section 4 reference-bit study in miniature: run one workload at a
//! small memory size under all three policies and watch the trade-off —
//! `REF` buys accuracy with cache flushes, `NOREF` buys zero maintenance
//! with extra page-ins, `MISS` sits in between and wins overall.
//!
//! ```text
//! cargo run --release --example reference_bit_study
//! ```

use spur_core::experiments::refbit::measure_refbit;
use spur_core::experiments::Scale;
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale {
        refs: 6_000_000,
        seed: 11,
        reps: 2,
        dev_refs_per_hour: 0,
    };
    let workload = slc();

    println!(
        "{} under MISS / REF / NOREF ({} references, {} reps each):\n",
        workload.name(),
        scale.refs,
        scale.reps
    );
    println!(
        "{:<6} {:>4} {:>10} {:>12} {:>12}",
        "policy", "MB", "page-ins", "ref faults", "elapsed (s)"
    );
    for mem in [MemSize::MB5, MemSize::MB8] {
        let mut baseline = None;
        for policy in RefPolicy::ALL {
            let row = measure_refbit(&workload, mem, policy, &scale)?;
            let base = *baseline.get_or_insert(row.elapsed_secs);
            println!(
                "{:<6} {:>4} {:>10.0} {:>12.0} {:>9.1} ({:>+.1}%)",
                policy.to_string(),
                mem.megabytes(),
                row.page_ins,
                row.ref_faults,
                row.elapsed_secs,
                100.0 * (row.elapsed_secs - base) / base,
            );
        }
        println!();
    }
    println!(
        "The paper's conclusion holds: the MISS approximation is the best\n\
         overall — REF's flush overhead always exceeds its fault-rate\n\
         benefit, and NOREF's extra page-ins only become tolerable when\n\
         memory is plentiful."
    );
    Ok(())
}
