//! Quickstart: boot a simulated SPUR node, run a slice of the SLC
//! workload, and read the cache controller's performance counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spur_cache::counters::CounterEvent;
use spur_core::dirty::DirtyPolicy;
use spur_core::system::{SimConfig, SpurSystem};
use spur_trace::workloads::slc;
use spur_types::MemSize;
use spur_vm::policy::RefPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The machine: Table 2.1's prototype with 6 MB of memory, running
    // the dirty-bit mechanism SPUR actually built and the MISS
    // reference-bit approximation.
    let mut sim = SpurSystem::new(SimConfig {
        mem: MemSize::MB6,
        dirty: DirtyPolicy::Spur,
        ref_policy: RefPolicy::Miss,
        ..SimConfig::default()
    })?;

    // The workload: the SPUR Lisp compiler, synthesized.
    let workload = slc();
    sim.load_workload(&workload)?;
    println!(
        "running 2M references of {} ({:.1} MB declared footprint) ...",
        workload.name(),
        workload.footprint_mb()
    );

    let mut gen = workload.generator(42);
    sim.run(&mut gen, 2_000_000)?;

    // What the hardware counters saw:
    let c = sim.counters();
    println!("\ncache controller counters:");
    for event in [
        CounterEvent::IFetch,
        CounterEvent::Read,
        CounterEvent::Write,
        CounterEvent::IFetchMiss,
        CounterEvent::ReadMiss,
        CounterEvent::WriteMiss,
        CounterEvent::PteCacheHit,
        CounterEvent::PteCacheMiss,
        CounterEvent::DirtyFault,
        CounterEvent::DirtyBitMiss,
        CounterEvent::RefFault,
        CounterEvent::ZeroFill,
        CounterEvent::PageIn,
        CounterEvent::SoftFault,
    ] {
        println!("  {:<18} {:>10}", event.to_string(), c.total(event));
    }

    let ev = sim.events();
    println!("\npaper metrics for this slice:");
    println!("  miss ratio          {:>9.2}%", 100.0 * ev.miss_ratio());
    println!("  N_ds                {:>10}", ev.n_ds);
    println!("  N_zfod              {:>10}", ev.n_zfod);
    println!("  N_ef = N_dm         {:>10}", ev.n_ef);
    println!(
        "  read-before-write   {:>9.1}%",
        100.0 * ev.read_before_write_fraction()
    );
    println!("  modeled elapsed     {:>9.2}s", ev.elapsed_seconds());
    Ok(())
}
