//! The multiprocessor cost the paper could only argue about: under the
//! `REF` policy, clearing a reference bit must flush the page "from all
//! the caches", and "not only does the flush take a long time, but it
//! disrupts the cache, forcing additional cache misses" (Section 4.1).
//!
//! The prototype was a uniprocessor, so the paper never measured this.
//! Our Berkeley Ownership bus lets us: spread one shared page's blocks
//! across several caches, flush it everywhere, and count the damage.
//!
//! ```text
//! cargo run --release --example multiprocessor_flush
//! ```

use spur_cache::coherence::{Bus, CoherencyState};
use spur_types::{Protection, Vpn};

fn main() {
    for ncpus in [1usize, 2, 4, 8, 12] {
        let mut bus = Bus::new(ncpus);
        let page = Vpn::new(1000);

        // Every CPU reads a shared hot region of the page (clean copies
        // replicate), each works a private stripe, and CPU 0 dirties a
        // few blocks it owns.
        for cpu in 0..ncpus {
            for i in 0..24u64 {
                bus.processor_read(cpu, page.block(i).base_addr(), Protection::ReadWrite, false);
            }
        }
        for i in 24..128u64 {
            let cpu = (i as usize) % ncpus;
            bus.processor_read(cpu, page.block(i).base_addr(), Protection::ReadWrite, false);
        }
        for i in 0..12u64 {
            bus.processor_write(
                0,
                page.block(100 + i).base_addr(),
                Protection::ReadWrite,
                false,
            );
        }
        bus.check_invariants().expect("protocol safety");

        let cached_before: u64 = (0..ncpus)
            .map(|c| bus.cache(c).resident_blocks_of_page(page))
            .sum();

        // The page daemon clears the page's R bit under the REF policy:
        // every cache on the bus must flush the page.
        let flushed = bus.flush_page_all(page);
        let stats = bus.stats();

        println!(
            "{ncpus:>2} CPU(s): {cached_before:>3} blocks cached -> {flushed:>3} flushed, \
             {:>2} write-backs, {:>3} bus ops total",
            stats.write_backs,
            stats.total(),
        );
        for c in 0..ncpus {
            assert_eq!(bus.cache(c).resident_blocks_of_page(page), 0);
            assert_eq!(
                bus.line_state(c, page.block(0).base_addr()),
                CoherencyState::Invalid
            );
        }
    }
    println!(
        "\nEvery cached copy — clean sharers included — must be destroyed on\n\
         every R-bit clear, and each CPU re-misses afterwards. This is why the\n\
         paper judges true reference bits 'especially [expensive] in a\n\
         multiprocessor' and settles on the MISS approximation."
    );
}
